//! # hdhash-simdkernels — runtime-dispatched distance kernels
//!
//! The HD-hash hot path is one operation: XOR two packed `u64` rows and
//! popcount the result (Hamming distance). Every other crate in the
//! workspace is `#![forbid(unsafe_code)]`; this leaf crate is the single,
//! auditable exception, holding the feature-gated SIMD implementations of
//! that kernel behind a safe API.
//!
//! ## The dispatch ladder
//!
//! * **AVX-512** (`x86_64`, requires `avx512f` + `avx512vpopcntdq`) —
//!   512-bit XOR plus the native `vpopcntq` instruction: one popcount per
//!   eight words, no LUT dance;
//! * **AVX2** (`x86_64`) — 256-bit XOR plus the nibble-LUT popcount
//!   (`vpshufb` per-byte counts folded with `vpsadbw`), sixteen words per
//!   iteration;
//! * **scalar** — portable `u64::count_ones` in 16-word blocks, the exact
//!   kernel previously inlined in `hdhash-hdc`, and the behavioural
//!   specification every vector path must match bit-for-bit.
//!
//! Dispatch is resolved once per process and cached in a [`OnceLock`]:
//! the first call probes the CPU (`is_x86_feature_detected!`) and installs
//! function pointers; every later call is an indirect call with no
//! re-detection. Binaries therefore run on any x86-64 — no compile-time
//! `-C target-cpu` requirement — and still use the widest tier the host
//! exposes. The multi-row entry points ([`xor_popcount_rows`],
//! [`xor_popcount_interleaved`]) amortize that indirect call across a
//! whole row block instead of re-entering the dispatcher per row.
//!
//! Steering the ladder (CI portability jobs, A/B benchmarking):
//!
//! * `HDHASH_FORCE_SCALAR=1` (any non-empty value except `0`) — collapse
//!   to the scalar tier, checked once at dispatch time;
//! * `HDHASH_DISABLE_AVX512=1` (same convention) — cap the ladder at
//!   AVX2, the kill switch for the newest tier;
//! * compile time: the `force-scalar` cargo feature.
//!
//! [`kernel_name`] reports which kernel was installed; [`host_isa`]
//! reports what the hardware supports regardless of any kill switch (the
//! machine-capability stamp benchmarks record).
//!
//! ## Exactness
//!
//! All tiers compute the same integers: popcount is exact, so a vector
//! path is not an approximation of the scalar path — it is the same
//! function. `hamming_within_words` checks its abandonment bound at the
//! same 16-word block granularity in every implementation, and its
//! *result* (`Some(d)` iff `d <= limit`) is fully determined by the
//! inputs either way. The property suite in `tests/equivalence.rs` and
//! the in-crate cross-tier tests pin both claims.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

use std::sync::OnceLock;

/// How many words one early-exit block spans (1024 dimensions): large
/// enough that the bound check is off the critical path, small enough that
/// abandonment saves most of a hopeless row.
pub const BLOCK_WORDS: usize = 16;

/// The installed kernel implementations.
struct Kernel {
    name: &'static str,
    distance: fn(&[u64], &[u64]) -> usize,
    within: fn(&[u64], &[u64], usize) -> Option<usize>,
    popcount: fn(&[u64]) -> usize,
    xor_rows: fn(&[u64], &[u64], usize, &mut [u32]),
    xor_interleaved: fn(&[u64], &[u64], usize, &mut [u32]),
}

static KERNEL: OnceLock<Kernel> = OnceLock::new();

fn kernel() -> &'static Kernel {
    KERNEL.get_or_init(|| {
        if scalar_forced() {
            return SCALAR;
        }
        #[cfg(target_arch = "x86_64")]
        {
            if !avx512_disabled()
                && std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512vpopcntdq")
            {
                return Kernel {
                    name: "avx512",
                    distance: avx512::hamming_distance,
                    within: avx512::hamming_within,
                    popcount: avx512::popcount,
                    xor_rows: avx512::xor_popcount_rows,
                    xor_interleaved: avx512::xor_popcount_interleaved,
                };
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                return Kernel {
                    name: "avx2",
                    distance: avx2::hamming_distance,
                    within: avx2::hamming_within,
                    popcount: avx2::popcount,
                    xor_rows: avx2::xor_popcount_rows,
                    xor_interleaved: avx2::xor_popcount_interleaved,
                };
            }
        }
        SCALAR
    })
}

const SCALAR: Kernel = Kernel {
    name: "scalar",
    distance: scalar::hamming_distance_words,
    within: scalar::hamming_within_words,
    popcount: scalar::popcount_words,
    xor_rows: scalar::xor_popcount_rows,
    xor_interleaved: scalar::xor_popcount_interleaved,
};

/// Whether the scalar fallback is forced (feature or environment).
fn scalar_forced() -> bool {
    if cfg!(feature = "force-scalar") {
        return true;
    }
    env_flag("HDHASH_FORCE_SCALAR")
}

/// Whether the AVX-512 tier is disabled by its kill switch (the ladder
/// then caps at AVX2).
#[cfg(target_arch = "x86_64")]
fn avx512_disabled() -> bool {
    env_flag("HDHASH_DISABLE_AVX512")
}

/// `true` iff the variable is set to a non-empty value other than `"0"`.
fn env_flag(name: &str) -> bool {
    match std::env::var_os(name) {
        Some(v) => !v.is_empty() && v != *"0",
        None => false,
    }
}

/// The name of the kernel the dispatcher installed for this process:
/// `"avx512"`, `"avx2"` or `"scalar"`.
#[must_use]
pub fn kernel_name() -> &'static str {
    kernel().name
}

/// The widest tier this *hardware* supports (`"avx512"`, `"avx2"` or
/// `"scalar"`), ignoring every kill switch — the machine-capability stamp
/// benchmark reports carry so a scalar-forced run is distinguishable from
/// a host that genuinely lacks the ISA.
#[must_use]
pub fn host_isa() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512vpopcntdq")
        {
            return "avx512";
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return "avx2";
        }
    }
    "scalar"
}

/// Hamming distance between two equal-length packed word rows
/// (XOR + popcount over every word).
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn hamming_distance_words(a: &[u64], b: &[u64]) -> usize {
    assert_eq!(a.len(), b.len(), "word rows must have equal length");
    (kernel().distance)(a, b)
}

/// Hamming distance with early abandonment: returns `Some(distance)` when
/// `distance <= limit`, `None` as soon as the running count provably
/// exceeds `limit` (checked every [`BLOCK_WORDS`] words).
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn hamming_within_words(a: &[u64], b: &[u64], limit: usize) -> Option<usize> {
    assert_eq!(a.len(), b.len(), "word rows must have equal length");
    (kernel().within)(a, b, limit)
}

/// Total population count of a packed word row (the dispatched kernel
/// behind `Hypervector::count_ones` and the maintenance readouts).
#[must_use]
pub fn popcount_words(words: &[u64]) -> usize {
    (kernel().popcount)(words)
}

/// Fused multi-row distance: `out[r] = popcount(probe ^ rows[r])`, where
/// row `r` starts at `rows[r * row_stride]` and spans `probe.len()`
/// words. One dispatcher entry covers the whole block — the per-row
/// indirect call of [`hamming_distance_words`] is amortized away, and a
/// prefix scan (`probe.len() < row_stride`) expresses its stride to the
/// kernel instead of slicing per row.
///
/// Overwrites `out`; see [`xor_popcount_interleaved`] for the
/// accumulating column-blocked twin.
///
/// # Panics
///
/// Panics if `probe.len() > row_stride` (for non-empty `out`) or `rows`
/// is too short for `out.len()` rows.
pub fn xor_popcount_rows(probe: &[u64], rows: &[u64], row_stride: usize, out: &mut [u32]) {
    let Some(last) = out.len().checked_sub(1) else {
        return;
    };
    assert!(probe.len() <= row_stride, "probe wider than the row stride");
    assert!(
        rows.len() >= last * row_stride + probe.len(),
        "row matrix shorter than out.len() rows"
    );
    (kernel().xor_rows)(probe, rows, row_stride, out);
}

/// Fused column-blocked distance accumulation for the word-interleaved
/// matrix layout: `block` holds `probe.len()` groups of `lanes`
/// consecutive words — group `w` stores word `w` of `lanes` different
/// rows — and the kernel adds `popcount(probe[w] ^ block[w*lanes + l])`
/// into `out[l]` for every word and lane. Because the accumulation walks
/// `block` strictly sequentially, an incremental-prefix scan widening
/// from `k0` to `k1` words passes `probe[k0..k1]` and the matching block
/// segment, never touching a word twice.
///
/// **Accumulates** into `out` (callers zero it for a fresh round);
/// see [`xor_popcount_rows`] for the overwriting row-major twin.
///
/// # Panics
///
/// Panics unless `block.len() == probe.len() * lanes` and
/// `out.len() == lanes`.
pub fn xor_popcount_interleaved(probe: &[u64], block: &[u64], lanes: usize, out: &mut [u32]) {
    assert_eq!(block.len(), probe.len() * lanes, "block must hold probe.len() × lanes words");
    assert_eq!(out.len(), lanes, "one accumulator per lane");
    (kernel().xor_interleaved)(probe, block, lanes, out);
}

/// Best-effort software prefetch of `words[index..]` into L1 (a no-op off
/// x86-64 or out of bounds). Scan loops drop hints a block ahead so the
/// next row block is in flight while the current one is counted.
#[inline]
pub fn prefetch_words(words: &[u64], index: usize) {
    #[cfg(target_arch = "x86_64")]
    if index < words.len() {
        // SAFETY: the pointer is in bounds and PREFETCHT0 has no
        // architectural effect — it cannot fault or write.
        unsafe {
            std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(
                words.as_ptr().add(index).cast::<i8>(),
            );
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (words, index);
    }
}

/// The portable kernels — always available, always correct, and the
/// specification the vector paths are property-tested against.
pub mod scalar {
    use super::BLOCK_WORDS;

    /// Scalar XOR + popcount over every word.
    ///
    /// # Panics
    ///
    /// Debug-asserts equal lengths (the public dispatcher asserts).
    #[must_use]
    pub fn hamming_distance_words(a: &[u64], b: &[u64]) -> usize {
        debug_assert_eq!(a.len(), b.len());
        a.iter().zip(b).map(|(x, y)| (x ^ y).count_ones() as usize).sum()
    }

    /// Scalar early-exit distance: XOR + popcount in [`BLOCK_WORDS`]
    /// blocks, checking the abandonment bound between blocks so the hot
    /// loop stays branch-light and unrollable.
    #[must_use]
    pub fn hamming_within_words(a: &[u64], b: &[u64], limit: usize) -> Option<usize> {
        debug_assert_eq!(a.len(), b.len());
        let mut total = 0usize;
        let mut chunks_a = a.chunks_exact(BLOCK_WORDS);
        let mut chunks_b = b.chunks_exact(BLOCK_WORDS);
        for (ca, cb) in chunks_a.by_ref().zip(chunks_b.by_ref()) {
            let mut block = 0u32;
            for (x, y) in ca.iter().zip(cb) {
                block += (x ^ y).count_ones();
            }
            total += block as usize;
            if total > limit {
                return None;
            }
        }
        for (x, y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
            total += (x ^ y).count_ones() as usize;
        }
        if total <= limit {
            Some(total)
        } else {
            None
        }
    }

    /// Scalar population count of a word row.
    #[must_use]
    pub fn popcount_words(words: &[u64]) -> usize {
        words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Scalar fused multi-row distance (see
    /// [`xor_popcount_rows`](super::xor_popcount_rows)).
    pub fn xor_popcount_rows(probe: &[u64], rows: &[u64], row_stride: usize, out: &mut [u32]) {
        for (r, slot) in out.iter_mut().enumerate() {
            let base = r * row_stride;
            *slot = hamming_distance_words(probe, &rows[base..base + probe.len()]) as u32;
        }
    }

    /// Scalar fused column-blocked accumulation (see
    /// [`xor_popcount_interleaved`](super::xor_popcount_interleaved)).
    pub fn xor_popcount_interleaved(
        probe: &[u64],
        block: &[u64],
        lanes: usize,
        out: &mut [u32],
    ) {
        for (w, &pw) in probe.iter().enumerate() {
            let group = &block[w * lanes..(w + 1) * lanes];
            for (slot, &bw) in out.iter_mut().zip(group) {
                *slot += (pw ^ bw).count_ones();
            }
        }
    }
}

/// The AVX2 kernels (x86-64 only, installed after runtime detection).
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::BLOCK_WORDS;
    use std::arch::x86_64::{
        __m256i, _mm256_add_epi64, _mm256_add_epi8, _mm256_and_si256, _mm256_extract_epi64,
        _mm256_loadu_si256, _mm256_sad_epu8, _mm256_set1_epi64x, _mm256_set1_epi8,
        _mm256_setr_epi8, _mm256_setzero_si256, _mm256_shuffle_epi8, _mm256_srli_epi16,
        _mm256_storeu_si256, _mm256_xor_si256,
    };

    /// Per-64-bit-lane popcount of one 256-bit vector: the classic
    /// nibble-LUT scheme — `vpshufb` maps each nibble to its population
    /// count, `vpsadbw` folds the 32 byte-counts into four u64 lane sums.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn popcount_epi64(v: __m256i) -> __m256i {
        #[rustfmt::skip]
        let lut = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        );
        let low_mask = _mm256_set1_epi8(0x0f);
        let lo = _mm256_and_si256(v, low_mask);
        let hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
        let counts =
            _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
        _mm256_sad_epu8(counts, _mm256_setzero_si256())
    }

    /// XOR + per-lane popcount of one 4-word (256-bit) chunk.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn xor_popcount_chunk(a: &[u64], b: &[u64]) -> __m256i {
        debug_assert_eq!(a.len(), 4);
        debug_assert_eq!(b.len(), 4);
        // SAFETY: both chunks hold exactly four u64s (32 bytes), so the
        // unaligned 256-bit loads stay in bounds.
        let (va, vb) = unsafe {
            (
                _mm256_loadu_si256(a.as_ptr().cast()),
                _mm256_loadu_si256(b.as_ptr().cast()),
            )
        };
        popcount_epi64(_mm256_xor_si256(va, vb))
    }

    /// Horizontal sum of the four u64 lanes of an accumulator.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn horizontal_sum(acc: __m256i) -> u64 {
        (_mm256_extract_epi64(acc, 0) as u64)
            .wrapping_add(_mm256_extract_epi64(acc, 1) as u64)
            .wrapping_add(_mm256_extract_epi64(acc, 2) as u64)
            .wrapping_add(_mm256_extract_epi64(acc, 3) as u64)
    }

    #[target_feature(enable = "avx2")]
    fn distance_impl(a: &[u64], b: &[u64]) -> usize {
        let mut chunks_a = a.chunks_exact(4);
        let mut chunks_b = b.chunks_exact(4);
        let mut acc = _mm256_setzero_si256();
        for (ca, cb) in chunks_a.by_ref().zip(chunks_b.by_ref()) {
            acc = _mm256_add_epi64(acc, xor_popcount_chunk(ca, cb));
        }
        let mut total = horizontal_sum(acc) as usize;
        for (x, y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
            total += (x ^ y).count_ones() as usize;
        }
        total
    }

    #[target_feature(enable = "avx2")]
    fn within_impl(a: &[u64], b: &[u64], limit: usize) -> Option<usize> {
        let mut total = 0usize;
        let mut blocks_a = a.chunks_exact(BLOCK_WORDS);
        let mut blocks_b = b.chunks_exact(BLOCK_WORDS);
        for (ba, bb) in blocks_a.by_ref().zip(blocks_b.by_ref()) {
            let mut acc = _mm256_setzero_si256();
            for (ca, cb) in ba.chunks_exact(4).zip(bb.chunks_exact(4)) {
                acc = _mm256_add_epi64(acc, xor_popcount_chunk(ca, cb));
            }
            total += horizontal_sum(acc) as usize;
            if total > limit {
                return None;
            }
        }
        for (x, y) in blocks_a.remainder().iter().zip(blocks_b.remainder()) {
            total += (x ^ y).count_ones() as usize;
        }
        if total <= limit {
            Some(total)
        } else {
            None
        }
    }

    #[target_feature(enable = "avx2")]
    fn popcount_impl(words: &[u64]) -> usize {
        let mut chunks = words.chunks_exact(4);
        let mut acc = _mm256_setzero_si256();
        for chunk in chunks.by_ref() {
            // SAFETY: the chunk holds exactly four u64s (32 bytes).
            let v = unsafe { _mm256_loadu_si256(chunk.as_ptr().cast()) };
            acc = _mm256_add_epi64(acc, popcount_epi64(v));
        }
        let mut total = horizontal_sum(acc) as usize;
        for w in chunks.remainder() {
            total += w.count_ones() as usize;
        }
        total
    }

    #[target_feature(enable = "avx2")]
    fn xor_rows_impl(probe: &[u64], rows: &[u64], row_stride: usize, out: &mut [u32]) {
        for (r, slot) in out.iter_mut().enumerate() {
            let base = r * row_stride;
            *slot = distance_impl(probe, &rows[base..base + probe.len()]) as u32;
        }
    }

    #[target_feature(enable = "avx2")]
    fn interleaved_impl(probe: &[u64], block: &[u64], lanes: usize, out: &mut [u32]) {
        let mut lane = 0usize;
        // Four lanes per accumulator: word `w` of lanes `l..l+4` sits at
        // `block[w*lanes + l ..][..4]`, one unaligned 256-bit load.
        while lane + 4 <= lanes {
            let mut acc = _mm256_setzero_si256();
            for (w, &pw) in probe.iter().enumerate() {
                let vp = _mm256_set1_epi64x(pw as i64);
                // SAFETY: w*lanes + lane + 4 <= probe.len()*lanes ==
                // block.len(), checked by the public wrapper.
                let vb =
                    unsafe { _mm256_loadu_si256(block.as_ptr().add(w * lanes + lane).cast()) };
                acc = _mm256_add_epi64(acc, popcount_epi64(_mm256_xor_si256(vp, vb)));
            }
            let mut sums = [0u64; 4];
            // SAFETY: `sums` is exactly 32 bytes.
            unsafe { _mm256_storeu_si256(sums.as_mut_ptr().cast(), acc) };
            for (slot, sum) in out[lane..lane + 4].iter_mut().zip(sums) {
                *slot += sum as u32;
            }
            lane += 4;
        }
        for l in lane..lanes {
            let mut sum = 0u32;
            for (w, &pw) in probe.iter().enumerate() {
                sum += (pw ^ block[w * lanes + l]).count_ones();
            }
            out[l] += sum;
        }
    }

    /// Safe entry point: sound only when installed after AVX2 detection,
    /// which the dispatcher guarantees.
    pub fn hamming_distance(a: &[u64], b: &[u64]) -> usize {
        debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
        // SAFETY: the dispatcher only installs this function pointer after
        // `is_x86_feature_detected!("avx2")` returned true for this CPU.
        unsafe { distance_impl(a, b) }
    }

    /// Safe entry point: sound only when installed after AVX2 detection,
    /// which the dispatcher guarantees.
    pub fn hamming_within(a: &[u64], b: &[u64], limit: usize) -> Option<usize> {
        debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
        // SAFETY: as for `hamming_distance`.
        unsafe { within_impl(a, b, limit) }
    }

    /// Safe entry point: sound only when installed after AVX2 detection.
    pub fn popcount(words: &[u64]) -> usize {
        debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
        // SAFETY: as for `hamming_distance`.
        unsafe { popcount_impl(words) }
    }

    /// Safe entry point: sound only when installed after AVX2 detection.
    pub fn xor_popcount_rows(probe: &[u64], rows: &[u64], row_stride: usize, out: &mut [u32]) {
        debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
        // SAFETY: as for `hamming_distance`.
        unsafe { xor_rows_impl(probe, rows, row_stride, out) }
    }

    /// Safe entry point: sound only when installed after AVX2 detection.
    pub fn xor_popcount_interleaved(
        probe: &[u64],
        block: &[u64],
        lanes: usize,
        out: &mut [u32],
    ) {
        debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
        // SAFETY: as for `hamming_distance`.
        unsafe { interleaved_impl(probe, block, lanes, out) }
    }
}

/// The AVX-512 kernels (x86-64 only, installed after runtime detection of
/// `avx512f` **and** `avx512vpopcntdq`). Where AVX2 spends five
/// instructions per 256-bit popcount (the nibble-LUT dance), `vpopcntq`
/// counts a whole 512-bit vector — eight words — in one.
#[cfg(target_arch = "x86_64")]
mod avx512 {
    use super::BLOCK_WORDS;
    use std::arch::x86_64::{
        __m512i, _mm512_add_epi64, _mm512_loadu_si512, _mm512_popcnt_epi64,
        _mm512_reduce_add_epi64, _mm512_set1_epi64, _mm512_setzero_si512, _mm512_storeu_si512,
        _mm512_xor_si512,
    };

    /// Whether both required features are present (the dispatcher's gate,
    /// re-asserted by every safe entry point in debug builds).
    fn detected() -> bool {
        std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512vpopcntdq")
    }

    /// XOR + per-lane popcount of one 8-word (512-bit) chunk.
    #[inline]
    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    fn xor_popcount_chunk(a: &[u64], b: &[u64]) -> __m512i {
        debug_assert_eq!(a.len(), 8);
        debug_assert_eq!(b.len(), 8);
        // SAFETY: both chunks hold exactly eight u64s (64 bytes), so the
        // unaligned 512-bit loads stay in bounds.
        let (va, vb) = unsafe {
            (
                _mm512_loadu_si512(a.as_ptr().cast()),
                _mm512_loadu_si512(b.as_ptr().cast()),
            )
        };
        _mm512_popcnt_epi64(_mm512_xor_si512(va, vb))
    }

    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    fn distance_impl(a: &[u64], b: &[u64]) -> usize {
        let mut chunks_a = a.chunks_exact(8);
        let mut chunks_b = b.chunks_exact(8);
        let mut acc = _mm512_setzero_si512();
        for (ca, cb) in chunks_a.by_ref().zip(chunks_b.by_ref()) {
            acc = _mm512_add_epi64(acc, xor_popcount_chunk(ca, cb));
        }
        let mut total = _mm512_reduce_add_epi64(acc) as usize;
        for (x, y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
            total += (x ^ y).count_ones() as usize;
        }
        total
    }

    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    fn within_impl(a: &[u64], b: &[u64], limit: usize) -> Option<usize> {
        let mut total = 0usize;
        let mut blocks_a = a.chunks_exact(BLOCK_WORDS);
        let mut blocks_b = b.chunks_exact(BLOCK_WORDS);
        for (ba, bb) in blocks_a.by_ref().zip(blocks_b.by_ref()) {
            // One 16-word block is exactly two 512-bit chunks.
            let acc = _mm512_add_epi64(
                xor_popcount_chunk(&ba[..8], &bb[..8]),
                xor_popcount_chunk(&ba[8..], &bb[8..]),
            );
            total += _mm512_reduce_add_epi64(acc) as usize;
            if total > limit {
                return None;
            }
        }
        for (x, y) in blocks_a.remainder().iter().zip(blocks_b.remainder()) {
            total += (x ^ y).count_ones() as usize;
        }
        if total <= limit {
            Some(total)
        } else {
            None
        }
    }

    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    fn popcount_impl(words: &[u64]) -> usize {
        let mut chunks = words.chunks_exact(8);
        let mut acc = _mm512_setzero_si512();
        for chunk in chunks.by_ref() {
            // SAFETY: the chunk holds exactly eight u64s (64 bytes).
            let v = unsafe { _mm512_loadu_si512(chunk.as_ptr().cast()) };
            acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
        }
        let mut total = _mm512_reduce_add_epi64(acc) as usize;
        for w in chunks.remainder() {
            total += w.count_ones() as usize;
        }
        total
    }

    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    fn xor_rows_impl(probe: &[u64], rows: &[u64], row_stride: usize, out: &mut [u32]) {
        for (r, slot) in out.iter_mut().enumerate() {
            let base = r * row_stride;
            *slot = distance_impl(probe, &rows[base..base + probe.len()]) as u32;
        }
    }

    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    fn interleaved_impl(probe: &[u64], block: &[u64], lanes: usize, out: &mut [u32]) {
        let mut lane = 0usize;
        // Eight lanes per accumulator: word `w` of lanes `l..l+8` sits at
        // `block[w*lanes + l ..][..8]`, one unaligned 512-bit load.
        while lane + 8 <= lanes {
            let mut acc = _mm512_setzero_si512();
            for (w, &pw) in probe.iter().enumerate() {
                let vp = _mm512_set1_epi64(pw as i64);
                // SAFETY: w*lanes + lane + 8 <= probe.len()*lanes ==
                // block.len(), checked by the public wrapper.
                let vb =
                    unsafe { _mm512_loadu_si512(block.as_ptr().add(w * lanes + lane).cast()) };
                acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_xor_si512(vp, vb)));
            }
            let mut sums = [0u64; 8];
            // SAFETY: `sums` is exactly 64 bytes.
            unsafe { _mm512_storeu_si512(sums.as_mut_ptr().cast(), acc) };
            for (slot, sum) in out[lane..lane + 8].iter_mut().zip(sums) {
                *slot += sum as u32;
            }
            lane += 8;
        }
        for l in lane..lanes {
            let mut sum = 0u32;
            for (w, &pw) in probe.iter().enumerate() {
                sum += (pw ^ block[w * lanes + l]).count_ones();
            }
            out[l] += sum;
        }
    }

    /// Safe entry point: sound only when installed after AVX-512
    /// detection, which the dispatcher guarantees.
    pub fn hamming_distance(a: &[u64], b: &[u64]) -> usize {
        debug_assert!(detected());
        // SAFETY: the dispatcher only installs this function pointer after
        // `is_x86_feature_detected!` confirmed avx512f + avx512vpopcntdq.
        unsafe { distance_impl(a, b) }
    }

    /// Safe entry point: sound only when installed after AVX-512 detection.
    pub fn hamming_within(a: &[u64], b: &[u64], limit: usize) -> Option<usize> {
        debug_assert!(detected());
        // SAFETY: as for `hamming_distance`.
        unsafe { within_impl(a, b, limit) }
    }

    /// Safe entry point: sound only when installed after AVX-512 detection.
    pub fn popcount(words: &[u64]) -> usize {
        debug_assert!(detected());
        // SAFETY: as for `hamming_distance`.
        unsafe { popcount_impl(words) }
    }

    /// Safe entry point: sound only when installed after AVX-512 detection.
    pub fn xor_popcount_rows(probe: &[u64], rows: &[u64], row_stride: usize, out: &mut [u32]) {
        debug_assert!(detected());
        // SAFETY: as for `hamming_distance`.
        unsafe { xor_rows_impl(probe, rows, row_stride, out) }
    }

    /// Safe entry point: sound only when installed after AVX-512 detection.
    pub fn xor_popcount_interleaved(
        probe: &[u64],
        block: &[u64],
        lanes: usize,
        out: &mut [u32],
    ) {
        debug_assert!(detected());
        // SAFETY: as for `hamming_distance`.
        unsafe { interleaved_impl(probe, block, lanes, out) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic word patterns mixing dense, sparse and boundary
    /// values (no external RNG in this leaf crate).
    fn pattern(len: usize, seed: u64) -> Vec<u64> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        (0..len)
            .map(|i| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                match i % 5 {
                    0 => state,
                    1 => 0,
                    2 => u64::MAX,
                    3 => state & 0x0101_0101_0101_0101,
                    _ => !state,
                }
            })
            .collect()
    }

    /// Builds a word-interleaved block from `lanes` row prefixes.
    fn interleave(rows: &[Vec<u64>], words: usize) -> Vec<u64> {
        let lanes = rows.len();
        let mut block = vec![0u64; words * lanes];
        for (l, row) in rows.iter().enumerate() {
            for w in 0..words {
                block[w * lanes + l] = row[w];
            }
        }
        block
    }

    #[test]
    fn dispatched_distance_matches_scalar() {
        for len in [0usize, 1, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 64, 157, 160] {
            let a = pattern(len, 1);
            let b = pattern(len, 2);
            assert_eq!(
                hamming_distance_words(&a, &b),
                scalar::hamming_distance_words(&a, &b),
                "len={len}"
            );
        }
    }

    #[test]
    fn dispatched_within_matches_scalar_outcome() {
        for len in [0usize, 1, 7, 16, 17, 48, 157, 160] {
            let a = pattern(len, 3);
            let b = pattern(len, 4);
            let exact = scalar::hamming_distance_words(&a, &b);
            for limit in [0usize, exact / 2, exact.saturating_sub(1), exact, exact + 1, len * 64]
            {
                let want = if exact <= limit { Some(exact) } else { None };
                assert_eq!(hamming_within_words(&a, &b, limit), want, "len={len} limit={limit}");
                assert_eq!(
                    scalar::hamming_within_words(&a, &b, limit),
                    want,
                    "scalar len={len} limit={limit}"
                );
            }
        }
    }

    #[test]
    fn dispatched_popcount_matches_scalar() {
        for len in [0usize, 1, 4, 7, 8, 9, 16, 31, 157, 160] {
            let a = pattern(len, 5);
            assert_eq!(popcount_words(&a), scalar::popcount_words(&a), "len={len}");
        }
    }

    #[test]
    fn fused_rows_match_per_row_distances() {
        // Full-width rows (stride == probe width) and prefix scans
        // (stride > probe width) both match per-row dispatch.
        for (rows, stride, probe_words) in
            [(7usize, 160usize, 160usize), (5, 160, 16), (12, 21, 13), (1, 4, 4), (3, 8, 0)]
        {
            let matrix = pattern(rows * stride, 6);
            let probe = pattern(probe_words, 7);
            let mut out = vec![0u32; rows];
            xor_popcount_rows(&probe, &matrix, stride, &mut out);
            for (r, &got) in out.iter().enumerate() {
                let base = r * stride;
                let want =
                    scalar::hamming_distance_words(&probe, &matrix[base..base + probe_words]);
                assert_eq!(got as usize, want, "row {r} stride {stride}");
            }
        }
        // Empty out is a no-op regardless of the other arguments.
        xor_popcount_rows(&pattern(4, 8), &[], 0, &mut []);
    }

    #[test]
    fn fused_interleaved_accumulates_exact_distances() {
        // Lane counts crossing every vector width: below 4, between 4 and
        // 8, at 8/16, and a ragged 13.
        for lanes in [1usize, 3, 4, 5, 8, 13, 16] {
            for words in [0usize, 1, 5, 16, 40] {
                let rows: Vec<Vec<u64>> =
                    (0..lanes).map(|l| pattern(words, 100 + l as u64)).collect();
                let probe = pattern(words, 999);
                let block = interleave(&rows, words);
                // Seed the accumulators to prove the kernel adds rather
                // than overwrites.
                let mut out = vec![7u32; lanes];
                xor_popcount_interleaved(&probe, &block, lanes, &mut out);
                for (l, row) in rows.iter().enumerate() {
                    let want = scalar::hamming_distance_words(&probe, row);
                    assert_eq!(
                        out[l] as usize,
                        want + 7,
                        "lanes={lanes} words={words} lane {l}"
                    );
                }
            }
        }
    }

    #[test]
    fn incremental_interleaved_segments_sum_to_full_distance() {
        // Widening a prefix in segments must equal one full-width pass.
        let (lanes, words) = (8usize, 48usize);
        let rows: Vec<Vec<u64>> = (0..lanes).map(|l| pattern(words, 50 + l as u64)).collect();
        let probe = pattern(words, 51);
        let block = interleave(&rows, words);
        let mut whole = vec![0u32; lanes];
        xor_popcount_interleaved(&probe, &block, lanes, &mut whole);
        let mut staged = vec![0u32; lanes];
        for (from, to) in [(0usize, 4usize), (4, 16), (16, 48)] {
            xor_popcount_interleaved(
                &probe[from..to],
                &block[from * lanes..to * lanes],
                lanes,
                &mut staged,
            );
        }
        assert_eq!(staged, whole);
    }

    /// Every tier the host supports must agree with the scalar
    /// specification on every entry point — regardless of which tier the
    /// dispatcher installed for this process.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn all_supported_tiers_match_scalar_spec() {
        type Tier = (
            &'static str,
            fn(&[u64], &[u64]) -> usize,
            fn(&[u64], &[u64], usize) -> Option<usize>,
            fn(&[u64]) -> usize,
            fn(&[u64], &[u64], usize, &mut [u32]),
            fn(&[u64], &[u64], usize, &mut [u32]),
        );
        let mut tiers: Vec<Tier> = Vec::new();
        if std::arch::is_x86_feature_detected!("avx2") {
            tiers.push((
                "avx2",
                avx2::hamming_distance,
                avx2::hamming_within,
                avx2::popcount,
                avx2::xor_popcount_rows,
                avx2::xor_popcount_interleaved,
            ));
        }
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512vpopcntdq")
        {
            tiers.push((
                "avx512",
                avx512::hamming_distance,
                avx512::hamming_within,
                avx512::popcount,
                avx512::xor_popcount_rows,
                avx512::xor_popcount_interleaved,
            ));
        }
        for (name, distance, within, popcount, xor_rows, xor_inter) in tiers {
            for len in [0usize, 1, 5, 8, 9, 16, 17, 31, 157, 160] {
                let a = pattern(len, 11);
                let b = pattern(len, 12);
                let exact = scalar::hamming_distance_words(&a, &b);
                assert_eq!(distance(&a, &b), exact, "{name} distance len={len}");
                assert_eq!(popcount(&a), scalar::popcount_words(&a), "{name} popcount");
                for limit in [0usize, exact.saturating_sub(1), exact, exact + 1] {
                    assert_eq!(
                        within(&a, &b, limit),
                        scalar::hamming_within_words(&a, &b, limit),
                        "{name} within len={len} limit={limit}"
                    );
                }
            }
            let (n, stride, k) = (9usize, 37usize, 21usize);
            let matrix = pattern(n * stride, 13);
            let probe = pattern(k, 14);
            let (mut got, mut want) = (vec![0u32; n], vec![0u32; n]);
            xor_rows(&probe, &matrix, stride, &mut got);
            scalar::xor_popcount_rows(&probe, &matrix, stride, &mut want);
            assert_eq!(got, want, "{name} xor_popcount_rows");
            for lanes in [3usize, 8, 13, 16] {
                let words = 19usize;
                let block = pattern(words * lanes, 15);
                let probe = pattern(words, 16);
                let (mut got, mut want) = (vec![1u32; lanes], vec![1u32; lanes]);
                xor_inter(&probe, &block, lanes, &mut got);
                scalar::xor_popcount_interleaved(&probe, &block, lanes, &mut want);
                assert_eq!(got, want, "{name} interleaved lanes={lanes}");
            }
        }
    }

    #[test]
    fn identical_rows_have_zero_distance() {
        let a = pattern(160, 9);
        assert_eq!(hamming_distance_words(&a, &a), 0);
        assert_eq!(hamming_within_words(&a, &a, 0), Some(0));
    }

    #[test]
    fn kernel_name_is_known() {
        let name = kernel_name();
        assert!(
            name == "avx512" || name == "avx2" || name == "scalar",
            "unexpected kernel {name}"
        );
        if std::env::var_os("HDHASH_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != *"0")
            || cfg!(feature = "force-scalar")
        {
            assert_eq!(name, "scalar", "forced scalar must win the dispatch");
        }
    }

    #[test]
    fn host_isa_is_at_least_the_installed_kernel() {
        let isa = host_isa();
        assert!(isa == "avx512" || isa == "avx2" || isa == "scalar", "unexpected isa {isa}");
        // The installed kernel never exceeds what the hardware supports.
        let rank = |t: &str| match t {
            "avx512" => 2,
            "avx2" => 1,
            _ => 0,
        };
        assert!(rank(kernel_name()) <= rank(isa), "installed kernel above hardware tier");
    }

    #[test]
    fn prefetch_is_a_safe_no_op() {
        let words = pattern(32, 20);
        prefetch_words(&words, 0);
        prefetch_words(&words, 31);
        prefetch_words(&words, 32); // out of bounds: silently skipped
        prefetch_words(&[], 0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn length_mismatch_panics() {
        let _ = hamming_distance_words(&[0], &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "row matrix shorter")]
    fn short_row_matrix_panics() {
        let mut out = [0u32; 3];
        xor_popcount_rows(&[1, 2], &[0u64; 5], 2, &mut out);
    }

    #[test]
    #[should_panic(expected = "probe.len() × lanes")]
    fn interleaved_shape_mismatch_panics() {
        let mut out = [0u32; 2];
        xor_popcount_interleaved(&[1, 2], &[0u64; 3], 2, &mut out);
    }
}
