//! `HDHASH_FORCE_SCALAR` must defeat **every** SIMD tier — AVX2 and
//! AVX-512 alike — before the `OnceLock` dispatcher first resolves.
//!
//! This lives in its own test binary on purpose: the dispatcher caches its
//! choice per process, so the env var has to be set before any kernel call
//! in this process, and no other test may share the binary. A single
//! `#[test]` keeps the harness from racing a second test past the set-up.

#[test]
fn force_scalar_env_defeats_every_tier() {
    // Safe to set: nothing in this process has touched the dispatcher yet,
    // and this is the only test in the binary.
    std::env::set_var("HDHASH_FORCE_SCALAR", "1");

    assert_eq!(
        hdhash_simdkernels::kernel_name(),
        "scalar",
        "forced-scalar dispatch must pick the portable tier on any host"
    );

    // The dispatched entry points must behave exactly like the scalar
    // reference module they now route to.
    let a: Vec<u64> = (0..96u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect();
    let b: Vec<u64> = (0..96u64).map(|i| !i.wrapping_mul(0xC2B2_AE3D_27D4_EB4F)).collect();
    assert_eq!(
        hdhash_simdkernels::hamming_distance_words(&a, &b),
        hdhash_simdkernels::scalar::hamming_distance_words(&a, &b)
    );
    for limit in [0usize, 100, 3000, 96 * 64] {
        assert_eq!(
            hdhash_simdkernels::hamming_within_words(&a, &b, limit),
            hdhash_simdkernels::scalar::hamming_within_words(&a, &b, limit),
            "limit {limit}"
        );
    }
    assert_eq!(
        hdhash_simdkernels::popcount_words(&a),
        hdhash_simdkernels::scalar::popcount_words(&a)
    );

    let probe = &a[..32];
    let (mut got, mut want) = (vec![0u32; 2], vec![0u32; 2]);
    hdhash_simdkernels::xor_popcount_rows(probe, &b, 48, &mut got);
    hdhash_simdkernels::scalar::xor_popcount_rows(probe, &b, 48, &mut want);
    assert_eq!(got, want);

    let (mut got, mut want) = (vec![5u32; 8], vec![5u32; 8]);
    hdhash_simdkernels::xor_popcount_interleaved(&a[..12], &b[..96], 8, &mut got);
    hdhash_simdkernels::scalar::xor_popcount_interleaved(&a[..12], &b[..96], 8, &mut want);
    assert_eq!(got, want);

    // The hardware capability report ignores the kill switch: it stamps
    // benchmarks with what the machine *could* run.
    let isa = hdhash_simdkernels::host_isa();
    assert!(["scalar", "avx2", "avx512"].contains(&isa), "unexpected isa {isa}");
}
