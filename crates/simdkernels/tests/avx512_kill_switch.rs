//! `HDHASH_DISABLE_AVX512` must cap the dispatch ladder at AVX2 while
//! leaving results bit-identical to the scalar reference.
//!
//! Own test binary, single test: the dispatcher resolves once per process,
//! so the env var has to win the race against every other kernel call.

#[test]
fn avx512_kill_switch_caps_the_ladder() {
    std::env::set_var("HDHASH_DISABLE_AVX512", "1");

    let name = hdhash_simdkernels::kernel_name();
    assert_ne!(name, "avx512", "disabled tier must never be dispatched");
    assert!(["scalar", "avx2"].contains(&name), "unexpected tier {name}");

    let a: Vec<u64> = (0..80u64).map(|i| i.wrapping_mul(0xA076_1D64_78BD_642F)).collect();
    let b: Vec<u64> = (0..80u64).map(|i| i.rotate_left(17) ^ 0x0F0F_F0F0_AAAA_5555).collect();
    assert_eq!(
        hdhash_simdkernels::hamming_distance_words(&a, &b),
        hdhash_simdkernels::scalar::hamming_distance_words(&a, &b)
    );
    assert_eq!(
        hdhash_simdkernels::popcount_words(&b),
        hdhash_simdkernels::scalar::popcount_words(&b)
    );
}
