//! Membership-churn equivalence for the HD tables: after any interleaving
//! of joins and leaves, the incrementally maintained membership signature
//! must be **byte-identical** to the one a freshly built table computes
//! for the same final membership (the fresh build *is* from-scratch
//! re-bundling, one add at a time from empty), and lookups must agree
//! with the fresh table's.

use hdhash_core::{HdConfig, HdHashTable, HierarchicalHdTable, WeightedHdTable};
use hdhash_table::{DynamicHashTable, RequestKey, ServerId};
use proptest::prelude::*;

fn config() -> HdConfig {
    HdConfig::builder()
        .dimension(2048)
        .codebook_size(64)
        .seed(33)
        .build_config()
        .expect("valid config")
}

/// Applies a join/leave script over a small server-id space; returns the
/// surviving membership in join order.
fn apply_script<T: DynamicHashTable>(table: &mut T, script: &[(u8, bool)]) -> Vec<ServerId> {
    let mut live: Vec<ServerId> = Vec::new();
    for &(id, remove) in script {
        let server = ServerId::new(u64::from(id));
        if remove {
            if table.leave(server).is_ok() {
                live.retain(|&s| s != server);
            }
        } else if table.join(server).is_ok() {
            live.push(server);
        }
    }
    live
}

fn scripts() -> impl Strategy<Value = Vec<(u8, bool)>> {
    prop::collection::vec((0u8..12, any::<bool>()), 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Plain HD table: churned signature == fresh-build signature, and
    /// every lookup agrees with the fresh table.
    #[test]
    fn hd_table_churn_equals_fresh_build(script in scripts()) {
        let mut churned = HdHashTable::with_config(config());
        let live = apply_script(&mut churned, &script);
        let mut fresh = HdHashTable::with_config(config());
        for &s in &live {
            fresh.join(s).expect("fresh join");
        }
        prop_assert_eq!(
            churned.membership_signature().to_bytes(),
            fresh.membership_signature().to_bytes()
        );
        for k in 0..50u64 {
            prop_assert_eq!(
                churned.lookup(RequestKey::new(k)),
                fresh.lookup(RequestKey::new(k))
            );
        }
    }

    /// Weighted table: replica-weighted churn, same equivalence. Weights
    /// derive deterministically from the id so fresh and churned agree.
    #[test]
    fn weighted_table_churn_equals_fresh_build(script in scripts()) {
        let weight_of = |s: ServerId| (s.get() % 3 + 1) as u32;
        let mut churned = WeightedHdTable::with_config(config());
        let mut live: Vec<ServerId> = Vec::new();
        for &(id, remove) in &script {
            let server = ServerId::new(u64::from(id));
            if remove {
                if churned.leave(server).is_ok() {
                    live.retain(|&s| s != server);
                }
            } else if churned.join_weighted(server, weight_of(server)).is_ok() {
                live.push(server);
            }
        }
        let mut fresh = WeightedHdTable::with_config(config());
        for &s in &live {
            fresh.join_weighted(s, weight_of(s)).expect("fresh join");
        }
        prop_assert_eq!(churned.replica_count(), fresh.replica_count());
        prop_assert_eq!(
            churned.membership_signature().to_bytes(),
            fresh.membership_signature().to_bytes()
        );
        for k in 0..50u64 {
            prop_assert_eq!(
                churned.lookup(RequestKey::new(k)),
                fresh.lookup(RequestKey::new(k))
            );
        }
    }

    /// Hierarchical table: churn across groups, same equivalence.
    #[test]
    fn hierarchical_table_churn_equals_fresh_build(script in scripts()) {
        let mut churned = HierarchicalHdTable::new(config(), 4);
        let live = apply_script(&mut churned, &script);
        let mut fresh = HierarchicalHdTable::new(config(), 4);
        for &s in &live {
            fresh.join(s).expect("fresh join");
        }
        prop_assert_eq!(churned.server_count(), fresh.server_count());
        prop_assert_eq!(
            churned.membership_signature().to_bytes(),
            fresh.membership_signature().to_bytes()
        );
        for k in 0..50u64 {
            prop_assert_eq!(
                churned.lookup(RequestKey::new(k)),
                fresh.lookup(RequestKey::new(k))
            );
        }
    }
}

/// Signatures distinguish memberships (with overwhelming probability) and
/// track churn direction: equal membership ⇒ identical bits, different
/// membership ⇒ far-apart bits.
#[test]
fn signatures_fingerprint_membership() {
    let mut a = HdHashTable::with_config(config());
    let mut b = HdHashTable::with_config(config());
    for id in 0..10u64 {
        a.join(ServerId::new(id)).expect("fresh");
        b.join(ServerId::new(id)).expect("fresh");
    }
    assert_eq!(a.membership_signature(), b.membership_signature());
    // Divergence (one extra member) moves the signature measurably.
    b.join(ServerId::new(99)).expect("fresh");
    let d = a.membership_signature().hamming_distance(&b.membership_signature());
    assert!(d > 0, "extra member must perturb the signature");
    // Healing the divergence restores bit-exact agreement.
    b.leave(ServerId::new(99)).expect("present");
    assert_eq!(a.membership_signature(), b.membership_signature());
}
