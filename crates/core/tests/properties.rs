//! Property-based tests for the HD hashing core — including the
//! robustness theorem.

use hdhash_core::HdHashTable;
use hdhash_table::{DynamicHashTable, NoisyTable, RequestKey, ServerId};
use proptest::prelude::*;

fn table_with(servers: &[u64], seed: u64) -> HdHashTable {
    let mut t = HdHashTable::builder()
        .dimension(4096)
        .codebook_size(128) // quantum c = 32: tolerates 15 flips/vector
        .seed(seed)
        .build()
        .expect("valid config");
    for &id in servers {
        t.join(ServerId::new(id)).expect("distinct ids within capacity");
    }
    t
}

proptest! {
    /// The geometric contract of Eq. 2: the winner is always at minimal
    /// circular distance from the request's slot.
    #[test]
    fn winner_is_circularly_nearest(
        ids in proptest::collection::hash_set(0u64..100_000, 1..32),
        keys in proptest::collection::vec(any::<u64>(), 1..24),
        seed in any::<u64>(),
    ) {
        let ids: Vec<u64> = ids.into_iter().collect();
        let table = table_with(&ids, seed);
        for &k in &keys {
            let request = RequestKey::new(k);
            let winner = table.lookup(request).expect("non-empty");
            let r_slot = table.slot_of_request(request);
            let w_dist = table
                .codebook()
                .circular_distance(r_slot, table.slot_of_server(winner).expect("joined"));
            let min_dist = table
                .servers()
                .into_iter()
                .map(|s| {
                    table
                        .codebook()
                        .circular_distance(r_slot, table.slot_of_server(s).expect("joined"))
                })
                .min()
                .expect("non-empty");
            prop_assert_eq!(w_dist, min_dist);
        }
    }

    /// The robustness theorem: ANY pattern of up to 15 bit flips (the
    /// quantum bound) leaves every assignment unchanged — arbitrary pool,
    /// seed and flip seed.
    #[test]
    fn quantized_robustness_theorem(
        ids in proptest::collection::hash_set(0u64..100_000, 1..32),
        seed in any::<u64>(),
        noise_seed in any::<u64>(),
        flips in 1usize..=15,
    ) {
        let ids: Vec<u64> = ids.into_iter().collect();
        let mut table = table_with(&ids, seed);
        let keys: Vec<RequestKey> = (0..100).map(RequestKey::new).collect();
        let before: Vec<ServerId> =
            keys.iter().map(|&k| table.lookup(k).expect("non-empty")).collect();
        // All flips land on ONE stored vector in the worst case; even then
        // the quantum (32/2 = 16 > 15) protects every comparison.
        table.inject_bit_flips(flips, noise_seed);
        let after: Vec<ServerId> =
            keys.iter().map(|&k| table.lookup(k).expect("non-empty")).collect();
        prop_assert_eq!(before, after);
    }

    /// Bursts within the quantum bound are equally harmless.
    #[test]
    fn burst_robustness_theorem(
        ids in proptest::collection::hash_set(0u64..100_000, 2..24),
        seed in any::<u64>(),
        noise_seed in any::<u64>(),
        length in 1usize..=15,
    ) {
        let ids: Vec<u64> = ids.into_iter().collect();
        let mut table = table_with(&ids, seed);
        let keys: Vec<RequestKey> = (0..100).map(RequestKey::new).collect();
        let before: Vec<ServerId> =
            keys.iter().map(|&k| table.lookup(k).expect("non-empty")).collect();
        table.inject_burst(length, noise_seed);
        let after: Vec<ServerId> =
            keys.iter().map(|&k| table.lookup(k).expect("non-empty")).collect();
        prop_assert_eq!(before, after);
    }

    /// Join/leave of the same server is an exact no-op on assignments.
    #[test]
    fn leave_rejoin_identity(
        ids in proptest::collection::hash_set(0u64..100_000, 2..24),
        seed in any::<u64>(),
    ) {
        let ids: Vec<u64> = ids.into_iter().collect();
        let victim = ids[0];
        let mut table = table_with(&ids, seed);
        let keys: Vec<RequestKey> = (0..150).map(RequestKey::new).collect();
        let before: Vec<ServerId> =
            keys.iter().map(|&k| table.lookup(k).expect("non-empty")).collect();
        table.leave(ServerId::new(victim)).expect("present");
        table.join(ServerId::new(victim)).expect("fresh again");
        let after: Vec<ServerId> =
            keys.iter().map(|&k| table.lookup(k).expect("non-empty")).collect();
        prop_assert_eq!(before, after);
    }

    /// The config builder's padding invariant: dimension is always a
    /// multiple of 2·codebook and the quantum is consistent.
    #[test]
    fn config_padding_invariant(d in 1usize..100_000, n_exp in 1u32..10) {
        let n = 2usize.pow(n_exp);
        let config = hdhash_core::HdConfig::builder()
            .dimension(d)
            .codebook_size(n)
            .build_config()
            .expect("valid");
        prop_assert_eq!(config.dimension() % (2 * n), 0);
        prop_assert!(config.dimension() >= d);
        prop_assert!(config.dimension() < d + 2 * n);
        prop_assert_eq!(config.quantum(), config.dimension() / n);
    }
}
