//! The circular-hypervector codebook and the `Enc` function (Eq. 1).

use std::sync::Arc;

use hdhash_hashfn::{Hasher64, XxHash64};
use hdhash_hdc::basis::{CircularBasis, FlipStrategy};
use hdhash_hdc::{Hypervector, Rng};

/// The set `C = {c₁, …, cₙ}` of circular-hypervectors together with the
/// conventional hash `h(·)`, implementing `Enc(x) = C[h(x) mod n]`.
///
/// Both servers and requests are encoded through the same codebook, so two
/// inputs whose hashes land on nearby circle nodes receive similar
/// hypervectors — the geometric foundation of HD hashing.
///
/// The basis and hash function are immutable once generated and shared
/// behind [`Arc`]s, so cloning a codebook — and therefore cloning a whole
/// [`HdHashTable`](crate::HdHashTable), as the serving layer's
/// epoch-snapshot publication does per reconfiguration — never copies the
/// `n × d`-bit basis, only bumps two reference counts.
///
/// # Examples
///
/// ```
/// use hdhash_core::Codebook;
///
/// let codebook = Codebook::generate(64, 4096, 7);
/// let (slot, hv) = codebook.encode(b"server-1");
/// assert!(slot < 64);
/// assert_eq!(hv.dimension(), 4096);
/// ```
#[derive(Clone)]
pub struct Codebook {
    basis: Arc<CircularBasis>,
    hasher: Arc<dyn Hasher64>,
}

impl core::fmt::Debug for Codebook {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Codebook")
            .field("n", &self.basis.len())
            .field("d", &self.basis.dimension())
            .field("hash", &self.hasher.kind())
            .finish()
    }
}

impl Codebook {
    /// Generates a codebook of `n` circular-hypervectors of dimension `d`
    /// using the default construction and hash function, seeded by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the circular basis parameters are invalid (`n < 2` or
    /// `d < 2·n`); construct via [`HdConfig`](crate::HdConfig) for
    /// validated building.
    #[must_use]
    pub fn generate(n: usize, d: usize, seed: u64) -> Self {
        Self::generate_with(n, d, FlipStrategy::Partition, Box::new(XxHash64::with_seed(0)), seed)
    }

    /// Generates a codebook with explicit strategy and hash function.
    ///
    /// # Panics
    ///
    /// Panics if the circular basis parameters are invalid.
    #[must_use]
    pub fn generate_with(
        n: usize,
        d: usize,
        strategy: FlipStrategy,
        hasher: Box<dyn Hasher64>,
        seed: u64,
    ) -> Self {
        let mut rng = Rng::new(seed);
        let basis = CircularBasis::generate_with_strategy(n, d, strategy, &mut rng)
            .expect("validated codebook parameters");
        Self { basis: Arc::new(basis), hasher: Arc::from(hasher) }
    }

    /// Codebook cardinality `n`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.basis.len()
    }

    /// Whether the codebook is empty (never true once constructed).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.basis.is_empty()
    }

    /// Hypervector dimensionality `d`.
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.basis.dimension()
    }

    /// The circle slot an input hashes to: `h(x) mod n`.
    #[must_use]
    pub fn slot_of(&self, bytes: &[u8]) -> usize {
        (self.hasher.hash_bytes(bytes) % self.len() as u64) as usize
    }

    /// `Enc(x)`: the slot and its hypervector (Eq. 1).
    #[must_use]
    pub fn encode(&self, bytes: &[u8]) -> (usize, &Hypervector) {
        let slot = self.slot_of(bytes);
        (slot, &self.basis[slot])
    }

    /// The hypervector at a specific slot.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= n`.
    #[must_use]
    pub fn hypervector(&self, slot: usize) -> &Hypervector {
        &self.basis[slot]
    }

    /// Circular distance between two slots.
    #[must_use]
    pub fn circular_distance(&self, a: usize, b: usize) -> usize {
        self.basis.circular_distance(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdhash_hdc::similarity::cosine;

    #[test]
    fn encode_is_deterministic_and_in_range() {
        let cb = Codebook::generate(32, 2048, 3);
        assert_eq!(cb.len(), 32);
        assert!(!cb.is_empty());
        assert_eq!(cb.dimension(), 2048);
        for key in 0..200u64 {
            let (s1, h1) = cb.encode(&key.to_le_bytes());
            let (s2, h2) = cb.encode(&key.to_le_bytes());
            assert_eq!(s1, s2);
            assert_eq!(h1, h2);
            assert!(s1 < 32);
        }
    }

    #[test]
    fn nearby_slots_are_similar() {
        let cb = Codebook::generate(64, 8192, 4);
        for slot in 0..64 {
            let here = cb.hypervector(slot);
            let next = cb.hypervector((slot + 1) % 64);
            let far = cb.hypervector((slot + 32) % 64);
            assert!(cosine(here, next) > cosine(here, far));
        }
    }

    #[test]
    fn slots_cover_range_uniformly() {
        let cb = Codebook::generate(16, 1024, 5);
        let mut counts = [0usize; 16];
        for key in 0..16_000u64 {
            counts[cb.slot_of(&key.to_le_bytes())] += 1;
        }
        for (slot, &c) in counts.iter().enumerate() {
            assert!((800..1200).contains(&c), "slot {slot} count {c}");
        }
    }

    #[test]
    fn same_seed_same_codebook() {
        let a = Codebook::generate(8, 512, 42);
        let b = Codebook::generate(8, 512, 42);
        for slot in 0..8 {
            assert_eq!(a.hypervector(slot), b.hypervector(slot));
        }
    }

    #[test]
    fn different_seed_different_codebook() {
        let a = Codebook::generate(8, 512, 1);
        let b = Codebook::generate(8, 512, 2);
        assert_ne!(a.hypervector(0), b.hypervector(0));
    }

    #[test]
    fn clone_shares_basis_storage() {
        let a = Codebook::generate(16, 1024, 9);
        let b = a.clone();
        // The clone answers identically…
        for key in 0..100u64 {
            assert_eq!(a.slot_of(&key.to_le_bytes()), b.slot_of(&key.to_le_bytes()));
        }
        for slot in 0..16 {
            assert_eq!(a.hypervector(slot), b.hypervector(slot));
        }
        // …without duplicating the n × d basis (Arc-shared).
        assert!(std::sync::Arc::ptr_eq(&a.basis, &b.basis));
    }

    #[test]
    fn circular_distance_delegates() {
        let cb = Codebook::generate(10, 512, 6);
        assert_eq!(cb.circular_distance(0, 9), 1);
        assert_eq!(cb.circular_distance(0, 5), 5);
    }
}
