//! Weighted HD hashing: heterogeneous server capacities through replicas.
//!
//! Real pools are rarely homogeneous — a deployment mixes instance sizes,
//! and load balancers weight servers by capacity. Consistent hashing
//! solves this with *virtual nodes* (each server occupies several ring
//! positions); the same idea transfers directly to HD hashing: a server
//! of weight `w` is encoded `w` times, at slots `h(s ‖ 0), …, h(s ‖ w−1)`,
//! and the arg-max of Eq. 2 runs over all stored *replicas*. A request is
//! served by whichever server owns the winning replica, so expected load
//! is proportional to replica count — i.e. to weight.
//!
//! Replicas also serve homogeneous pools: more replicas per server means
//! more, shorter arcs on the circle and a tighter load distribution (the
//! same reason consistent-hashing deployments run tens of virtual nodes
//! per server). The `ablation` bench quantifies this for both algorithms.
//!
//! The robustness story is unchanged: stored state is hypervectors on the
//! quantum grid, and the quantized arg-max tolerates any corruption below
//! half a quantum per replica, exactly as in [`crate::HdHashTable`].

use hdhash_hdc::{noise, AssociativeMemory, Hypervector, MembershipCentroid, Rng};
use hdhash_table::{DynamicHashTable, NoisyTable, RequestKey, ServerId, TableError};

use crate::codebook::Codebook;
use crate::config::HdConfig;

/// One stored replica: which server owns it and its replica index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Replica {
    server: ServerId,
    index: u32,
    slot: usize,
}

/// A weighted HD hash table.
///
/// [`DynamicHashTable::join`] adds a server with weight 1;
/// [`WeightedHdTable::join_weighted`] chooses the weight. All other
/// behaviour (quantized robustness, noise surface, batch lookups through
/// the shared trait) matches [`crate::HdHashTable`].
///
/// # Examples
///
/// ```
/// use hdhash_core::WeightedHdTable;
/// use hdhash_table::{DynamicHashTable, RequestKey, ServerId};
///
/// let mut table = WeightedHdTable::builder().dimension(4096).codebook_size(256).build_config()
///     .map(WeightedHdTable::with_config)?;
/// table.join_weighted(ServerId::new(0), 1)?;
/// table.join_weighted(ServerId::new(1), 3)?; // 3x the capacity
/// let owner = table.lookup(RequestKey::new(42))?;
/// assert!(table.contains(owner));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct WeightedHdTable {
    config: HdConfig,
    codebook: Codebook,
    /// Stored replica encodings — the noise surface.
    memory: AssociativeMemory<(ServerId, u32)>,
    /// Clean replica records, in join order.
    replicas: Vec<Replica>,
    /// Per-server weights, in join order.
    weights: Vec<(ServerId, u32)>,
    /// Incremental majority centroid over the clean replica encodings:
    /// the weighted pool's membership fingerprint, updated in
    /// `O(words · log n)` per replica on join/leave instead of
    /// re-bundling the full replica set.
    signature: MembershipCentroid,
}

impl WeightedHdTable {
    /// Starts a configuration builder (same parameters as
    /// [`crate::HdHashTable`]).
    #[must_use]
    pub fn builder() -> crate::config::HdConfigBuilder {
        HdConfig::builder()
    }

    /// Creates a table from a validated configuration.
    #[must_use]
    pub fn with_config(config: HdConfig) -> Self {
        let codebook = Codebook::generate_with(
            config.codebook_size,
            config.dimension,
            config.flip_strategy,
            Box::new(hdhash_hashfn::XxHash64::with_seed(0)),
            config.seed,
        );
        let memory = AssociativeMemory::with_engine_options(config.dimension, config.engine)
            .with_metric(config.metric)
            .with_strategy(config.search);
        let signature = MembershipCentroid::new(config.dimension);
        Self {
            config,
            codebook,
            memory,
            replicas: Vec::new(),
            weights: Vec::new(),
            signature,
        }
    }

    /// Creates a table with the default configuration.
    #[must_use]
    pub fn new() -> Self {
        Self::with_config(HdConfig::default())
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &HdConfig {
        &self.config
    }

    /// The weight a server joined with, if present.
    #[must_use]
    pub fn weight_of(&self, server: ServerId) -> Option<u32> {
        self.weights.iter().find(|&&(s, _)| s == server).map(|&(_, w)| w)
    }

    /// Total replicas currently stored.
    #[must_use]
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Adds a server holding `weight` replicas.
    ///
    /// # Errors
    ///
    /// * [`TableError::ZeroWeight`] if `weight == 0`;
    /// * [`TableError::ServerAlreadyPresent`] if the server already joined;
    /// * [`TableError::CapacityExhausted`] if the added replicas would
    ///   fill the codebook (the `n > k` requirement counts replicas here).
    pub fn join_weighted(&mut self, server: ServerId, weight: u32) -> Result<(), TableError> {
        if weight == 0 {
            return Err(TableError::ZeroWeight(server));
        }
        if self.weights.iter().any(|&(s, _)| s == server) {
            return Err(TableError::ServerAlreadyPresent(server));
        }
        if self.replicas.len() + weight as usize >= self.codebook.len() {
            return Err(TableError::CapacityExhausted {
                servers: self.replicas.len(),
                capacity: self.codebook.len() - 1,
            });
        }
        for index in 0..weight {
            let bytes = Self::replica_bytes(server, index);
            let (slot, hv) = self.codebook.encode(&bytes);
            let hv = hv.clone();
            self.replicas.push(Replica { server, index, slot });
            self.signature.add(&hv).expect("codebook dimension matches signature");
            self.memory
                .insert((server, index), hv)
                .expect("codebook dimension matches memory");
        }
        self.weights.push((server, weight));
        Ok(())
    }

    /// The weighted pool's **membership signature**: the majority
    /// centroid of the clean replica encodings, maintained incrementally
    /// across joins and leaves. A pure function of the replica multiset —
    /// see [`crate::HdHashTable::membership_signature`] for the replica-
    /// sync use case.
    #[must_use]
    pub fn membership_signature(&self) -> Hypervector {
        self.signature.read()
    }

    /// The codebook slots a server's replicas occupy, if joined.
    #[must_use]
    pub fn slots_of_server(&self, server: ServerId) -> Option<Vec<usize>> {
        if !self.weights.iter().any(|&(s, _)| s == server) {
            return None;
        }
        Some(
            self.replicas
                .iter()
                .filter(|r| r.server == server)
                .map(|r| r.slot)
                .collect(),
        )
    }

    fn replica_bytes(server: ServerId, index: u32) -> Vec<u8> {
        let mut bytes = server.to_bytes().to_vec();
        bytes.extend_from_slice(&index.to_le_bytes());
        bytes
    }

    /// Resolves one request over all replicas (Eq. 2).
    fn resolve(&self, request: RequestKey) -> Result<ServerId, TableError> {
        let (_, probe) = self.codebook.encode(&request.to_bytes());
        if self.memory.is_empty() {
            return Err(TableError::EmptyPool);
        }
        match self.config.flip_strategy {
            hdhash_hdc::basis::FlipStrategy::Partition => {
                // Quantized arg-max with a deterministic tie-break on
                // (server, replica) — see HdHashTable::resolve.
                let c = self.config.quantum();
                self.memory
                    .iter()
                    .map(|(&(server, index), hv)| {
                        ((probe.hamming_distance(hv) + c / 2) / c, server, index)
                    })
                    .min_by_key(|&(q, server, index)| (q, server.get(), index))
                    .map(|(_, server, _)| server)
                    .ok_or(TableError::EmptyPool)
            }
            hdhash_hdc::basis::FlipStrategy::Independent { .. } => {
                self.memory.nearest(probe).map(|m| m.key.0).ok_or(TableError::EmptyPool)
            }
        }
    }

    fn rebuild_memory(&mut self) {
        let mut memory =
            AssociativeMemory::with_engine_options(self.config.dimension, self.config.engine)
                .with_metric(self.config.metric)
                .with_strategy(self.config.search);
        for replica in &self.replicas {
            memory
                .insert(
                    (replica.server, replica.index),
                    self.codebook.hypervector(replica.slot).clone(),
                )
                .expect("codebook dimension matches memory");
        }
        self.memory = memory;
    }
}

impl Default for WeightedHdTable {
    fn default() -> Self {
        Self::new()
    }
}

impl DynamicHashTable for WeightedHdTable {
    fn join(&mut self, server: ServerId) -> Result<(), TableError> {
        self.join_weighted(server, 1)
    }

    fn leave(&mut self, server: ServerId) -> Result<(), TableError> {
        let idx = self
            .weights
            .iter()
            .position(|&(s, _)| s == server)
            .ok_or(TableError::ServerNotFound(server))?;
        self.weights.remove(idx);
        for replica in self.replicas.iter().filter(|r| r.server == server) {
            self.signature
                .remove(self.codebook.hypervector(replica.slot))
                .expect("replica encodings were added at join");
        }
        self.replicas.retain(|r| r.server != server);
        self.memory.remove_where(|&(s, _)| s == server);
        Ok(())
    }

    fn lookup(&self, request: RequestKey) -> Result<ServerId, TableError> {
        self.resolve(request)
    }

    fn server_count(&self) -> usize {
        self.weights.len()
    }

    fn servers(&self) -> Vec<ServerId> {
        self.weights.iter().map(|&(s, _)| s).collect()
    }

    fn algorithm_name(&self) -> &'static str {
        "hd-weighted"
    }
}

impl NoisyTable for WeightedHdTable {
    fn inject_bit_flips(&mut self, count: usize, seed: u64) -> usize {
        let mut rng = Rng::new(seed);
        noise::flip_random_bits(&mut self.memory, count, &mut rng)
    }

    fn inject_burst(&mut self, length: usize, seed: u64) -> usize {
        let mut rng = Rng::new(seed);
        noise::flip_burst(&mut self.memory, length, &mut rng)
    }

    fn clear_noise(&mut self) {
        self.rebuild_memory();
    }

    fn noise_surface_bits(&self) -> usize {
        self.memory.len() * self.config.dimension
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdhash_table::{remap_fraction, Assignment};

    fn table() -> WeightedHdTable {
        WeightedHdTable::with_config(
            WeightedHdTable::builder()
                .dimension(8192)
                .codebook_size(512)
                .seed(21)
                .build_config()
                .expect("valid config"),
        )
    }

    fn keys(n: u64) -> Vec<RequestKey> {
        (0..n).map(RequestKey::new).collect()
    }

    #[test]
    fn weight_lifecycle_and_errors() {
        let mut t = table();
        assert_eq!(t.join_weighted(ServerId::new(1), 0), Err(TableError::ZeroWeight(ServerId::new(1))));
        t.join_weighted(ServerId::new(1), 3).expect("fresh");
        assert_eq!(t.weight_of(ServerId::new(1)), Some(3));
        assert_eq!(t.replica_count(), 3);
        assert_eq!(t.server_count(), 1);
        assert_eq!(
            t.join_weighted(ServerId::new(1), 1),
            Err(TableError::ServerAlreadyPresent(ServerId::new(1)))
        );
        t.leave(ServerId::new(1)).expect("present");
        assert_eq!(t.replica_count(), 0);
        assert_eq!(t.weight_of(ServerId::new(1)), None);
        assert_eq!(t.lookup(RequestKey::new(0)), Err(TableError::EmptyPool));
    }

    #[test]
    fn default_join_is_weight_one() {
        let mut t = table();
        t.join(ServerId::new(7)).expect("fresh");
        assert_eq!(t.weight_of(ServerId::new(7)), Some(1));
        assert_eq!(t.algorithm_name(), "hd-weighted");
        assert_eq!(t.slots_of_server(ServerId::new(7)).expect("joined").len(), 1);
        assert!(t.slots_of_server(ServerId::new(8)).is_none());
    }

    #[test]
    fn load_tracks_weight() {
        // Eight weight-1 servers and eight weight-4 servers: the heavy
        // group holds 32 of 40 replicas, so its aggregate share of the
        // stream must approach 32/40 = 0.8. (Aggregating over a group
        // averages out the high variance of individual arc lengths.)
        let mut t = table();
        for id in 0..8u64 {
            t.join_weighted(ServerId::new(id), 1).expect("fresh");
        }
        for id in 8..16u64 {
            t.join_weighted(ServerId::new(id), 4).expect("fresh");
        }
        let loads =
            Assignment::capture(&t, keys(20_000)).expect("non-empty").load_by_server();
        let light: usize =
            (0..8u64).map(|id| *loads.get(&ServerId::new(id)).unwrap_or(&0)).sum();
        let heavy: usize =
            (8..16u64).map(|id| *loads.get(&ServerId::new(id)).unwrap_or(&0)).sum();
        let share = heavy as f64 / (light + heavy) as f64;
        assert!((0.65..0.92).contains(&share), "heavy-group share {share:.3}");
    }

    #[test]
    fn equal_weights_split_roughly_evenly() {
        let mut t = table();
        for id in 0..8u64 {
            t.join_weighted(ServerId::new(id), 8).expect("fresh");
        }
        let loads =
            Assignment::capture(&t, keys(32_000)).expect("non-empty").load_by_server();
        for id in 0..8u64 {
            let share = *loads.get(&ServerId::new(id)).unwrap_or(&0) as f64 / 32_000.0;
            // Fair share is 1/8 = 0.125; 8 replicas each tighten the arcs.
            assert!((0.04..0.25).contains(&share), "server {id} share {share:.3}");
        }
    }

    #[test]
    fn replicas_improve_uniformity() {
        // The virtual-node effect: more replicas per server pull the load
        // distribution toward uniform. Measured by max/min load ratio.
        let spread = |weight: u32| {
            let mut t = table();
            for id in 0..8u64 {
                t.join_weighted(ServerId::new(id), weight).expect("fresh");
            }
            let loads =
                Assignment::capture(&t, keys(24_000)).expect("non-empty").load_by_server();
            let max = loads.values().copied().max().unwrap_or(0) as f64;
            let min = loads.values().copied().min().unwrap_or(0).max(1) as f64;
            max / min
        };
        let coarse = spread(1);
        let fine = spread(16);
        assert!(
            fine < coarse,
            "16 replicas should beat 1 replica on balance: {fine:.2} vs {coarse:.2}"
        );
    }

    #[test]
    fn robustness_holds_with_replicas() {
        let mut t = table();
        for id in 0..6u64 {
            t.join_weighted(ServerId::new(id), 4).expect("fresh");
        }
        let reference = Assignment::capture(&t, keys(2000)).expect("non-empty");
        for flips in [1usize, 5, 10] {
            t.inject_bit_flips(flips, flips as u64 + 7);
            let noisy = Assignment::capture(&t, keys(2000)).expect("non-empty");
            assert_eq!(remap_fraction(&reference, &noisy), 0.0, "{flips} flips mismatched");
        }
        t.clear_noise();
        let restored = Assignment::capture(&t, keys(2000)).expect("non-empty");
        assert_eq!(remap_fraction(&reference, &restored), 0.0);
    }

    #[test]
    fn leave_moves_only_the_leavers_requests() {
        let mut t = table();
        for id in 0..8u64 {
            t.join_weighted(ServerId::new(id), 3).expect("fresh");
        }
        let before = Assignment::capture(&t, keys(4000)).expect("non-empty");
        let victim = ServerId::new(3);
        t.leave(victim).expect("present");
        let after = Assignment::capture(&t, keys(4000)).expect("non-empty");
        for (r, s_before) in before.iter() {
            if s_before != victim {
                assert_eq!(after.server_of(r), Some(s_before), "{r} moved without cause");
            }
        }
    }

    #[test]
    fn capacity_counts_replicas() {
        let mut t = WeightedHdTable::with_config(
            WeightedHdTable::builder()
                .dimension(64)
                .codebook_size(8)
                .build_config()
                .expect("valid config"),
        );
        t.join_weighted(ServerId::new(0), 5).expect("fits");
        assert_eq!(
            t.join_weighted(ServerId::new(1), 3),
            Err(TableError::CapacityExhausted { servers: 5, capacity: 7 })
        );
        // A smaller weight still fits.
        t.join_weighted(ServerId::new(1), 2).expect("fits");
        assert_eq!(t.replica_count(), 7);
    }

    #[test]
    fn noise_surface_counts_replica_bits() {
        let mut t = table();
        t.join_weighted(ServerId::new(0), 5).expect("fresh");
        assert_eq!(t.noise_surface_bits(), 5 * t.config().dimension());
    }

    #[test]
    fn deterministic_across_instances() {
        let build = || {
            let mut t = table();
            for id in 0..5u64 {
                t.join_weighted(ServerId::new(id), (id % 3 + 1) as u32).expect("fresh");
            }
            t
        };
        let a = build();
        let b = build();
        for k in 0..300u64 {
            assert_eq!(
                a.lookup(RequestKey::new(k)).expect("non-empty"),
                b.lookup(RequestKey::new(k)).expect("non-empty")
            );
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            /// Replica bookkeeping is exact for any weight assignment,
            /// and every lookup lands on a joined server.
            #[test]
            fn bookkeeping_and_membership_hold(
                weights in prop::collection::vec(1u32..6, 1..12),
                probes in prop::collection::vec(any::<u64>(), 1..40),
            ) {
                let mut t = table();
                let mut expected_replicas = 0usize;
                for (id, &w) in weights.iter().enumerate() {
                    t.join_weighted(ServerId::new(id as u64), w).expect("within capacity");
                    expected_replicas += w as usize;
                }
                prop_assert_eq!(t.replica_count(), expected_replicas);
                prop_assert_eq!(t.server_count(), weights.len());
                prop_assert_eq!(
                    t.noise_surface_bits(),
                    expected_replicas * t.config().dimension()
                );
                let servers = t.servers();
                for &p in &probes {
                    let owner = t.lookup(RequestKey::new(p)).expect("non-empty pool");
                    prop_assert!(servers.contains(&owner));
                }
            }

            /// Leaving any one server never moves another server's keys.
            #[test]
            fn leave_is_minimally_disruptive(
                weights in prop::collection::vec(1u32..4, 2..8),
                victim_index in 0usize..8,
            ) {
                let mut t = table();
                for (id, &w) in weights.iter().enumerate() {
                    t.join_weighted(ServerId::new(id as u64), w).expect("within capacity");
                }
                let victim = ServerId::new((victim_index % weights.len()) as u64);
                let keys: Vec<RequestKey> = (0..500).map(RequestKey::new).collect();
                let before = Assignment::capture(&t, keys.iter().copied()).expect("non-empty");
                t.leave(victim).expect("present");
                if t.server_count() == 0 {
                    return Ok(());
                }
                let after = Assignment::capture(&t, keys.iter().copied()).expect("non-empty");
                for (r, s) in before.iter() {
                    if s != victim {
                        prop_assert_eq!(after.server_of(r), Some(s));
                    }
                }
            }
        }
    }
}
