//! Configuration for HD hash tables.

use hdhash_hdc::basis::FlipStrategy;
use hdhash_hdc::{EngineOptions, SearchStrategy, SimilarityMetric};

/// Validated configuration for an [`HdHashTable`](crate::HdHashTable).
///
/// Obtained through [`HdConfig::builder`]. The defaults reproduce the
/// paper's setup: ~10 000 dimensions, a codebook of `n = 512`
/// circular-hypervectors (room for 511 servers, honouring `n > k`),
/// inverse-Hamming similarity and serial search.
///
/// ## Dimension padding and the robustness quantum
///
/// The requested dimension is rounded **up** to the next multiple of
/// `2 · n`. With the default partitioned circular construction the
/// similarity profile then advances in *exact* steps of the quantum
/// `c = d / n` bits per circle node, and the table's quantized arg-max
/// (see [`HdHashTable`](crate::HdHashTable)) is provably unaffected by any
/// corruption of fewer than `c / 2` bits per stored hypervector — the
/// structural form of the paper's robustness result. The default
/// `d = 10_000` therefore becomes `10_240` with `n = 512` (`c = 20`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HdConfig {
    pub(crate) dimension: usize,
    pub(crate) codebook_size: usize,
    pub(crate) metric: SimilarityMetric,
    pub(crate) search: SearchStrategy,
    pub(crate) flip_strategy: FlipStrategy,
    pub(crate) seed: u64,
    pub(crate) engine: EngineOptions,
}

impl HdConfig {
    /// Starts building a configuration from the paper's defaults.
    #[must_use]
    pub fn builder() -> HdConfigBuilder {
        HdConfigBuilder::default()
    }

    /// Hypervector dimensionality `d`.
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.dimension
    }

    /// Codebook cardinality `n` (the number of circle nodes).
    #[must_use]
    pub fn codebook_size(&self) -> usize {
        self.codebook_size
    }

    /// The similarity metric `δ` of Eq. 2.
    #[must_use]
    pub fn metric(&self) -> SimilarityMetric {
        self.metric
    }

    /// The associative-memory search strategy.
    #[must_use]
    pub fn search(&self) -> SearchStrategy {
        self.search
    }

    /// The circular-hypervector construction strategy.
    #[must_use]
    pub fn flip_strategy(&self) -> FlipStrategy {
        self.flip_strategy
    }

    /// The seed all randomness derives from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The lookup-engine construction options (matrix layout and scan
    /// block size). Unset fields are autotuned per dimension when the
    /// associative memory is built.
    #[must_use]
    pub fn engine_options(&self) -> EngineOptions {
        self.engine
    }

    /// The robustness quantum `c = d / n`: the exact Hamming-distance step
    /// between adjacent circle nodes. Assignments tolerate any corruption
    /// below `c / 2` bits per stored hypervector.
    #[must_use]
    pub fn quantum(&self) -> usize {
        self.dimension / self.codebook_size
    }
}

impl Default for HdConfig {
    fn default() -> Self {
        HdConfig::builder().build_config().expect("defaults are valid")
    }
}

/// Builder for [`HdConfig`].
///
/// # Examples
///
/// ```
/// use hdhash_core::HdConfig;
/// use hdhash_hdc::SimilarityMetric;
///
/// let config = HdConfig::builder()
///     .dimension(4096)
///     .codebook_size(256)
///     .metric(SimilarityMetric::Cosine)
///     .seed(7)
///     .build_config()?;
/// assert_eq!(config.dimension(), 4096);
/// # Ok::<(), hdhash_core::HdConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HdConfigBuilder {
    dimension: usize,
    codebook_size: usize,
    metric: SimilarityMetric,
    search: SearchStrategy,
    flip_strategy: Option<FlipStrategy>,
    seed: u64,
    engine: EngineOptions,
}

impl Default for HdConfigBuilder {
    fn default() -> Self {
        Self {
            dimension: 10_000,
            codebook_size: 512,
            metric: SimilarityMetric::InverseHamming,
            search: SearchStrategy::Serial,
            flip_strategy: None,
            seed: 0x4844_4153_4821, // "HDHASH!"
            engine: EngineOptions::default(),
        }
    }
}

impl HdConfigBuilder {
    /// Sets the *minimum* hypervector dimensionality `d` (paper default:
    /// 10 000). The built configuration rounds this up to the next multiple
    /// of `2 · n` so that circle steps are exact quanta; see
    /// [`HdConfig::quantum`].
    #[must_use]
    pub fn dimension(mut self, d: usize) -> Self {
        self.dimension = d;
        self
    }

    /// Sets the codebook cardinality `n`. Must exceed the number of
    /// servers that will ever be live at once (`n > k`).
    #[must_use]
    pub fn codebook_size(mut self, n: usize) -> Self {
        self.codebook_size = n;
        self
    }

    /// Sets the similarity metric `δ`.
    #[must_use]
    pub fn metric(mut self, metric: SimilarityMetric) -> Self {
        self.metric = metric;
        self
    }

    /// Sets the associative-memory search strategy.
    #[must_use]
    pub fn search(mut self, search: SearchStrategy) -> Self {
        self.search = search;
        self
    }

    /// Overrides the circular-basis construction strategy (default:
    /// [`FlipStrategy::Partition`]).
    #[must_use]
    pub fn flip_strategy(mut self, strategy: FlipStrategy) -> Self {
        self.flip_strategy = Some(strategy);
        self
    }

    /// Sets the deterministic seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the lookup-engine construction options (matrix layout
    /// and/or scan block size). Fields left unset keep the per-dimension
    /// autotuned defaults; see [`EngineOptions`].
    #[must_use]
    pub fn engine_options(mut self, options: EngineOptions) -> Self {
        self.engine = options;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// The dimension is rounded up to the next multiple of `2 · n`
    /// (at least `2 · n`), guaranteeing equal circle steps.
    ///
    /// # Errors
    ///
    /// [`HdConfigError::CodebookTooSmall`] if `n < 2`.
    pub fn build_config(self) -> Result<HdConfig, HdConfigError> {
        if self.codebook_size < 2 {
            return Err(HdConfigError::CodebookTooSmall { requested: self.codebook_size });
        }
        let step = 2 * self.codebook_size;
        let padded = self.dimension.div_ceil(step).max(1) * step;
        Ok(HdConfig {
            dimension: padded,
            codebook_size: self.codebook_size,
            metric: self.metric,
            search: self.search,
            flip_strategy: self.flip_strategy.unwrap_or(FlipStrategy::Partition),
            seed: self.seed,
            engine: self.engine,
        })
    }

    /// Validates the configuration and builds a ready
    /// [`HdHashTable`](crate::HdHashTable) in one step.
    ///
    /// # Errors
    ///
    /// Same as [`build_config`](HdConfigBuilder::build_config).
    pub fn build(self) -> Result<crate::HdHashTable, HdConfigError> {
        Ok(crate::HdHashTable::with_config(self.build_config()?))
    }
}

/// Invalid [`HdConfig`] parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum HdConfigError {
    /// The codebook must contain at least two hypervectors.
    CodebookTooSmall {
        /// Requested codebook size.
        requested: usize,
    },
}

impl core::fmt::Display for HdConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            HdConfigError::CodebookTooSmall { requested } => {
                write!(f, "codebook size {requested} below minimum 2")
            }
        }
    }
}

impl std::error::Error for HdConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = HdConfig::default();
        // 10_000 padded up to the next multiple of 2·512.
        assert_eq!(c.dimension(), 10_240);
        assert_eq!(c.codebook_size(), 512);
        assert_eq!(c.quantum(), 20);
        assert_eq!(c.metric(), SimilarityMetric::InverseHamming);
        assert_eq!(c.search(), SearchStrategy::Serial);
        assert_eq!(c.flip_strategy(), FlipStrategy::Partition);
    }

    #[test]
    fn builder_sets_everything() {
        let c = HdConfig::builder()
            .dimension(8192)
            .codebook_size(128)
            .metric(SimilarityMetric::Cosine)
            .search(SearchStrategy::Parallel { threads: 4 })
            .flip_strategy(FlipStrategy::Independent { flips_per_step: 10 })
            .seed(99)
            .build_config()
            .expect("valid");
        assert_eq!(c.dimension(), 8192); // already a multiple of 256
        assert_eq!(c.codebook_size(), 128);
        assert_eq!(c.quantum(), 64);
        assert_eq!(c.metric(), SimilarityMetric::Cosine);
        assert_eq!(c.search(), SearchStrategy::Parallel { threads: 4 });
        assert_eq!(c.flip_strategy(), FlipStrategy::Independent { flips_per_step: 10 });
        assert_eq!(c.seed(), 99);
    }

    #[test]
    fn dimension_pads_up_to_quantum_grid() {
        let c = HdConfig::builder()
            .dimension(100)
            .codebook_size(64)
            .build_config()
            .expect("valid");
        assert_eq!(c.dimension(), 128);
        assert_eq!(c.quantum(), 2);
        // Zero rounds up to the minimum viable dimension.
        let c = HdConfig::builder().dimension(0).codebook_size(8).build_config().expect("valid");
        assert_eq!(c.dimension(), 16);
    }

    #[test]
    fn engine_options_flow_through_the_builder() {
        use hdhash_hdc::MatrixLayout;
        let c = HdConfig::default();
        assert_eq!(c.engine_options(), EngineOptions::default());
        let options =
            EngineOptions::default().with_layout(MatrixLayout::Interleaved).with_row_block(8);
        let c = HdConfig::builder().engine_options(options).build_config().expect("valid");
        assert_eq!(c.engine_options(), options);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert_eq!(
            HdConfig::builder().codebook_size(1).build_config(),
            Err(HdConfigError::CodebookTooSmall { requested: 1 })
        );
    }

    #[test]
    fn error_display() {
        assert!(HdConfigError::CodebookTooSmall { requested: 1 }
            .to_string()
            .contains("below minimum"));
    }
}
