//! HD hashing with bounded loads (the paper's reference \[13\] transferred
//! to hyperspace).
//!
//! Plain HD hashing, like the classic ring, can overload a server whose
//! circle neighbourhood happens to be sparse. Mirrokni, Thorup &
//! Zadimoghaddam's bounded-loads refinement caps every server at
//! `⌈(1 + ε) · average⌉` items; `hdhash-ring` implements it for the ring
//! (`hdhash_ring::BoundedLoadTable`). This module transfers the idea to
//! HD hashing: a request walks the *similarity ranking* of Eq. 2 — most
//! similar server first — past full servers until one has spare capacity.
//! Because the ranking is computed from the same quantized hypervector
//! distances as the plain table, the robustness guarantee carries over:
//! sub-quantum corruption cannot reorder the ranking, so placements are
//! bit-stable under the paper's entire noise sweep.
//!
//! Like its ring counterpart, this is a *stateful* assignment structure
//! (an overflowed item must keep resolving where it was parked), so it
//! exposes `assign`/`release` rather than the read-only lookup trait.

use std::collections::HashMap;

use hdhash_table::{RequestKey, ServerId, TableError};

use crate::config::HdConfig;
use crate::table::HdHashTable;
use hdhash_table::DynamicHashTable;

/// An HD hash table assigning stateful items under a load cap of
/// `⌈(1 + epsilon) · items / servers⌉` per server.
///
/// # Examples
///
/// ```
/// use hdhash_core::BoundedHdTable;
/// use hdhash_table::{RequestKey, ServerId};
///
/// let mut table = BoundedHdTable::new(0.25);
/// for id in 0..4 {
///     table.join(ServerId::new(id))?;
/// }
/// for k in 0..100 {
///     table.assign(RequestKey::new(k))?;
/// }
/// // No server exceeds the cap ⌈1.25 · 100 / 4⌉ = 32.
/// assert!(table.loads().values().all(|&l| l <= 32));
/// # Ok::<(), hdhash_table::TableError>(())
/// ```
#[derive(Debug)]
pub struct BoundedHdTable {
    inner: HdHashTable,
    epsilon: f64,
    placements: HashMap<RequestKey, ServerId>,
    loads: HashMap<ServerId, usize>,
}

impl BoundedHdTable {
    /// Creates an empty table with load slack `epsilon` and the default
    /// HD configuration.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not finite and positive.
    #[must_use]
    pub fn new(epsilon: f64) -> Self {
        Self::with_config(HdConfig::default(), epsilon)
    }

    /// Creates an empty table from a validated HD configuration.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not finite and positive.
    #[must_use]
    pub fn with_config(config: HdConfig, epsilon: f64) -> Self {
        assert!(epsilon.is_finite() && epsilon > 0.0, "epsilon must be positive");
        Self {
            inner: HdHashTable::with_config(config),
            epsilon,
            placements: HashMap::new(),
            loads: HashMap::new(),
        }
    }

    /// The load slack `ε`.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Current per-server item counts.
    #[must_use]
    pub fn loads(&self) -> &HashMap<ServerId, usize> {
        &self.loads
    }

    /// Items currently placed.
    #[must_use]
    pub fn item_count(&self) -> usize {
        self.placements.len()
    }

    /// Live servers.
    #[must_use]
    pub fn server_count(&self) -> usize {
        self.inner.server_count()
    }

    /// The pool's **membership signature** (see
    /// [`HdHashTable::membership_signature`]): maintained incrementally
    /// by the inner table across joins and leaves, so bounded-load
    /// deployments get the same cheap replica-sync fingerprint without
    /// re-bundling on churn.
    #[must_use]
    pub fn membership_signature(&self) -> hdhash_hdc::Hypervector {
        self.inner.membership_signature()
    }

    /// The cap that would apply if one more item were assigned now.
    #[must_use]
    pub fn capacity_per_server(&self) -> usize {
        let servers = self.inner.server_count().max(1);
        let average = (self.placements.len() + 1) as f64 / servers as f64;
        ((1.0 + self.epsilon) * average).ceil() as usize
    }

    /// Adds a server.
    ///
    /// # Errors
    ///
    /// Propagates [`TableError::ServerAlreadyPresent`] and
    /// [`TableError::CapacityExhausted`] from the HD table.
    pub fn join(&mut self, server: ServerId) -> Result<(), TableError> {
        self.inner.join(server)?;
        self.loads.entry(server).or_insert(0);
        Ok(())
    }

    /// Removes a server; its items are re-assigned under the cap.
    ///
    /// # Errors
    ///
    /// Propagates [`TableError::ServerNotFound`].
    pub fn leave(&mut self, server: ServerId) -> Result<(), TableError> {
        self.inner.leave(server)?;
        self.loads.remove(&server);
        let orphans: Vec<RequestKey> = self
            .placements
            .iter()
            .filter(|&(_, &s)| s == server)
            .map(|(&r, _)| r)
            .collect();
        for r in &orphans {
            self.placements.remove(r);
        }
        for r in orphans {
            // Pool may be empty now; drop the item in that case.
            let _ = self.assign(r);
        }
        Ok(())
    }

    /// Places an item: the most similar server with spare capacity, per
    /// the quantized ranking of Eq. 2. Re-assigning a placed item returns
    /// its existing placement.
    ///
    /// # Errors
    ///
    /// [`TableError::EmptyPool`] if no servers are live.
    pub fn assign(&mut self, request: RequestKey) -> Result<ServerId, TableError> {
        if let Some(&placed) = self.placements.get(&request) {
            return Ok(placed);
        }
        let cap = self.capacity_per_server();
        let ranking = self.ranking(request)?;
        // Every ranking position is checked; with cap ≥ ⌈(items+1)/servers⌉
        // at least one server must have room.
        let server = ranking
            .into_iter()
            .find(|s| self.loads.get(s).copied().unwrap_or(0) < cap)
            .expect("cap exceeds the average load, so some server has room");
        self.placements.insert(request, server);
        *self.loads.entry(server).or_insert(0) += 1;
        Ok(server)
    }

    /// Removes an item; returns where it was placed, if it was.
    ///
    /// Like the ring variant, releases do not rebalance: a server's load
    /// may exceed the *instantaneous* cap after the pool of items shrinks,
    /// but never the cap that was in force when its items were placed.
    pub fn release(&mut self, request: RequestKey) -> Option<ServerId> {
        let server = self.placements.remove(&request)?;
        if let Some(load) = self.loads.get_mut(&server) {
            *load = load.saturating_sub(1);
        }
        Some(server)
    }

    /// Where an item is currently placed.
    #[must_use]
    pub fn placement_of(&self, request: RequestKey) -> Option<ServerId> {
        self.placements.get(&request).copied()
    }

    /// All live servers ordered by the quantized similarity ranking for
    /// `request` (Eq. 2's arg-max, extended to a full ordering).
    ///
    /// # Errors
    ///
    /// [`TableError::EmptyPool`] if no servers are live.
    pub fn ranking(&self, request: RequestKey) -> Result<Vec<ServerId>, TableError> {
        let servers = self.inner.servers();
        if servers.is_empty() {
            return Err(TableError::EmptyPool);
        }
        let r_slot = self.inner.slot_of_request(request);
        let mut ranked: Vec<(usize, ServerId)> = servers
            .into_iter()
            .map(|s| {
                let s_slot = self.inner.slot_of_server(s).expect("listed server is joined");
                // With the partitioned codebook the quantized hypervector
                // distance is exactly `quantum · circular_distance`, so
                // ordering by slot distance is ordering by Eq. 2 — no
                // hypervector scan needed for the full ranking.
                (self.inner.codebook().circular_distance(r_slot, s_slot), s)
            })
            .collect();
        ranked.sort_by_key(|&(d, s)| (d, s.get()));
        Ok(ranked.into_iter().map(|(_, s)| s).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(servers: u64, epsilon: f64) -> BoundedHdTable {
        let config = HdConfig::builder()
            .dimension(4096)
            .codebook_size(256)
            .seed(61)
            .build_config()
            .expect("valid config");
        let mut t = BoundedHdTable::with_config(config, epsilon);
        for id in 0..servers {
            t.join(ServerId::new(id)).expect("fresh server");
        }
        t
    }

    #[test]
    fn cap_is_never_exceeded() {
        let mut t = table(8, 0.25);
        for k in 0..800u64 {
            t.assign(RequestKey::new(k)).expect("non-empty pool");
        }
        let cap = (1.25f64 * 800.0 / 8.0).ceil() as usize + 1;
        assert!(
            t.loads().values().all(|&l| l <= cap),
            "cap {cap} exceeded: {:?}",
            t.loads()
        );
        assert_eq!(t.item_count(), 800);
        assert_eq!(t.loads().values().sum::<usize>(), 800);
    }

    #[test]
    fn tighter_epsilon_flattens_loads() {
        let spread = |epsilon: f64| {
            let mut t = table(8, epsilon);
            for k in 0..2000u64 {
                t.assign(RequestKey::new(k)).expect("non-empty pool");
            }
            let max = *t.loads().values().max().expect("servers joined");
            let min = *t.loads().values().min().expect("servers joined");
            max - min
        };
        assert!(spread(0.01) <= spread(10.0), "tight caps must flatten the distribution");
        // Near-zero slack bounds the spread by the cap's growth during the
        // arrival sequence: max ≤ ⌈1.01·250⌉ = 253, min ≥ 2000 − 7·253.
        assert!(spread(0.01) <= 24, "spread {}", spread(0.01));
    }

    #[test]
    fn assignment_is_sticky() {
        let mut t = table(4, 0.5);
        let first = t.assign(RequestKey::new(7)).expect("non-empty pool");
        for k in 0..200u64 {
            t.assign(RequestKey::new(1000 + k)).expect("non-empty pool");
        }
        assert_eq!(t.assign(RequestKey::new(7)).expect("non-empty pool"), first);
        assert_eq!(t.placement_of(RequestKey::new(7)), Some(first));
    }

    #[test]
    fn release_frees_capacity() {
        let mut t = table(2, 0.5);
        let placed = t.assign(RequestKey::new(1)).expect("non-empty pool");
        assert_eq!(t.release(RequestKey::new(1)), Some(placed));
        assert_eq!(t.release(RequestKey::new(1)), None);
        assert_eq!(t.item_count(), 0);
        assert_eq!(t.loads()[&placed], 0);
    }

    #[test]
    fn leave_reassigns_orphans_under_cap() {
        let mut t = table(6, 0.25);
        for k in 0..600u64 {
            t.assign(RequestKey::new(k)).expect("non-empty pool");
        }
        let victim = ServerId::new(2);
        let moved_items: Vec<RequestKey> = (0..600u64)
            .map(RequestKey::new)
            .filter(|&r| t.placement_of(r) == Some(victim))
            .collect();
        t.leave(victim).expect("present");
        assert_eq!(t.item_count(), 600, "orphans must be re-placed");
        let cap = (1.25f64 * 600.0 / 5.0).ceil() as usize + 1;
        assert!(t.loads().values().all(|&l| l <= cap));
        // Non-orphaned items did not move.
        for k in 0..600u64 {
            let r = RequestKey::new(k);
            if !moved_items.contains(&r) {
                assert_ne!(t.placement_of(r), Some(victim));
            }
        }
    }

    #[test]
    fn empty_pool_errors() {
        let mut t = BoundedHdTable::new(0.5);
        assert_eq!(t.assign(RequestKey::new(1)), Err(TableError::EmptyPool));
        assert_eq!(t.ranking(RequestKey::new(1)), Err(TableError::EmptyPool));
    }

    #[test]
    fn ranking_starts_at_the_plain_tables_winner() {
        // Without load pressure the bounded table's first choice is the
        // plain HD table's arg-max.
        let t = table(16, 5.0);
        let mut plain = HdHashTable::with_config(
            HdConfig::builder()
                .dimension(4096)
                .codebook_size(256)
                .seed(61)
                .build_config()
                .expect("valid config"),
        );
        for id in 0..16 {
            plain.join(ServerId::new(id)).expect("fresh server");
        }
        for k in 0..300u64 {
            let r = RequestKey::new(k);
            assert_eq!(
                t.ranking(r).expect("non-empty pool")[0],
                plain.lookup(r).expect("non-empty pool"),
                "ranking head diverged at request {k}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn zero_epsilon_panics() {
        let _ = BoundedHdTable::new(0.0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            /// The cap invariant survives any interleaving of assigns and
            /// releases, and load accounting stays exact. Releases do not
            /// rebalance, so the binding cap is the largest one in force
            /// at any assignment, not the instantaneous one.
            #[test]
            fn cap_invariant_under_arbitrary_operations(
                ops in prop::collection::vec((any::<u64>(), any::<bool>()), 1..200),
                epsilon in 0.05f64..4.0,
            ) {
                let mut t = table(6, epsilon);
                let mut live = std::collections::HashSet::new();
                let mut binding_cap = 0usize;
                for &(key, release) in &ops {
                    let key = RequestKey::new(key % 64); // force reuse
                    if release {
                        let released = t.release(key);
                        prop_assert_eq!(released.is_some(), live.remove(&key));
                    } else {
                        binding_cap = binding_cap.max(t.capacity_per_server());
                        t.assign(key).expect("non-empty pool");
                        live.insert(key);
                    }
                }
                prop_assert_eq!(t.item_count(), live.len());
                prop_assert_eq!(t.loads().values().sum::<usize>(), live.len());
                for (&server, &load) in t.loads() {
                    prop_assert!(
                        load <= binding_cap,
                        "{server} at {load} > binding cap {binding_cap}"
                    );
                }
                // Every placed item still resolves to where it was put.
                for &key in &live {
                    prop_assert!(t.placement_of(key).is_some());
                }
            }

            /// Rankings are permutations of the live pool for any request.
            #[test]
            fn ranking_is_a_permutation(key in any::<u64>()) {
                let t = table(10, 1.0);
                let ranking = t.ranking(RequestKey::new(key)).expect("non-empty pool");
                prop_assert_eq!(ranking.len(), 10);
                let unique: std::collections::HashSet<_> = ranking.iter().collect();
                prop_assert_eq!(unique.len(), 10);
            }
        }
    }
}
