//! The HD hash table (paper Section 3).

use hdhash_hdc::{noise, AssociativeMemory, Hypervector, MembershipCentroid, Rng};
use hdhash_table::{DynamicHashTable, NoisyTable, RequestKey, ServerId, TableError};

use crate::codebook::Codebook;
use crate::config::HdConfig;

/// The hyperdimensional dynamic hash table.
///
/// Joining a server encodes it through the codebook (Eq. 1) and stores the
/// resulting hypervector in an associative memory; looking up a request
/// encodes the request the same way and returns the server whose stored
/// hypervector is most similar (Eq. 2). Geometrically, every request is
/// routed to the server on the *nearest circle node* — like consistent
/// hashing, but without a preferred direction of rotation (see the paper's
/// Figure 1), and executed as an HDC inference.
///
/// ## Noise model and the robustness guarantee
///
/// The vulnerable state surface is the stored server hypervectors — the
/// memory a deployment actually keeps per server (`k · d` bits). With the
/// default partitioned circular codebook every clean request↔server
/// distance is an exact multiple of the quantum `c = d / n`
/// ([`HdConfig::quantum`]), and the arg-max compares distances *rounded to
/// that grid* (the thresholded associative-memory discipline of the
/// HDC-hardware literature the paper builds on — Schmuck et al. \[18\]).
/// Corrupting fewer than `c / 2` bits of any stored hypervector therefore
/// cannot change a single quantized comparison, so every assignment is
/// **provably identical** to the clean table's: the structural form of the
/// paper's Figure 5 result (0% mismatches for HD hashing). With the
/// defaults (`c = 20`) the table tolerates nine flipped bits per stored
/// vector — covering the paper's entire 0–10 flip sweep, since flips are
/// spread over the whole memory.
///
/// With the literal Algorithm 1 construction
/// ([`FlipStrategy::Independent`](hdhash_hdc::basis::FlipStrategy)) clean
/// distances are not grid-aligned and the table falls back to the raw
/// arg-max of Eq. 2, which is robust with overwhelming probability but not
/// by construction.
///
/// ## Collisions
///
/// Two servers whose hashes land on the same codebook slot receive
/// identical encodings; the arg-max then resolves ties toward the smaller
/// server identifier (membership-order independent). Keeping `n ≫ k`
/// makes collisions rare, mirroring the paper's `n > k` requirement.
///
/// # Examples
///
/// ```
/// use hdhash_core::HdHashTable;
/// use hdhash_table::{DynamicHashTable, NoisyTable, RequestKey, ServerId};
///
/// let mut table = HdHashTable::builder().dimension(4096).codebook_size(128).build()?;
/// for id in 0..16 {
///     table.join(ServerId::new(id))?;
/// }
/// let before = table.lookup(RequestKey::new(77))?;
/// // Ten bit errors in stored state: assignment is unaffected.
/// table.inject_bit_flips(10, 1);
/// assert_eq!(table.lookup(RequestKey::new(77))?, before);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct HdHashTable {
    config: HdConfig,
    codebook: Codebook,
    /// Stored server encodings — the noise surface.
    memory: AssociativeMemory<ServerId>,
    /// Clean membership with each server's codebook slot, in join order.
    members: Vec<(ServerId, usize)>,
    /// Incrementally maintained majority centroid over the clean member
    /// encodings — the pool's membership fingerprint. Join and leave are
    /// `O(words · log n)` counter-plane updates, never a re-bundle of the
    /// remaining membership.
    signature: MembershipCentroid,
}

impl HdHashTable {
    /// Starts a builder with the paper's default parameters.
    #[must_use]
    pub fn builder() -> crate::config::HdConfigBuilder {
        HdConfig::builder()
    }

    /// Creates a table from a validated configuration.
    #[must_use]
    pub fn with_config(config: HdConfig) -> Self {
        let codebook =
            Codebook::generate_with(
                config.codebook_size,
                config.dimension,
                config.flip_strategy,
                Box::new(hdhash_hashfn::XxHash64::with_seed(0)),
                config.seed,
            );
        let memory = AssociativeMemory::with_engine_options(config.dimension, config.engine)
            .with_metric(config.metric)
            .with_strategy(config.search);
        let signature = MembershipCentroid::new(config.dimension);
        Self { config, codebook, memory, members: Vec::new(), signature }
    }

    /// Creates a table with the default configuration (`d = 10_240`,
    /// `n = 512`; see [`HdConfig`]).
    #[must_use]
    pub fn new() -> Self {
        Self::with_config(HdConfig::default())
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &HdConfig {
        &self.config
    }

    /// The codebook backing `Enc`.
    #[must_use]
    pub fn codebook(&self) -> &Codebook {
        &self.codebook
    }

    /// The codebook slot a server occupies, if joined.
    #[must_use]
    pub fn slot_of_server(&self, server: ServerId) -> Option<usize> {
        self.members.iter().find(|&&(s, _)| s == server).map(|&(_, slot)| slot)
    }

    /// The codebook slot a request encodes to.
    #[must_use]
    pub fn slot_of_request(&self, request: RequestKey) -> usize {
        self.codebook.slot_of(&request.to_bytes())
    }

    /// The pool's **membership signature**: the majority centroid of the
    /// clean member encodings, maintained incrementally across joins and
    /// leaves (`O(words · log n)` counter-plane updates per change).
    ///
    /// The signature is a pure function of the member *encoding
    /// multiset* — two tables that reached the same membership through
    /// any interleaving of joins and leaves read identical signatures,
    /// byte for byte (`crates/core/tests/churn_equivalence.rs`).
    /// Deployments use it as a cheap first-pass divergence check between
    /// replicas of a table: compare `d` bits, and exchange member lists
    /// only on mismatch. It fingerprints *encodings*, not server ids:
    /// distinct servers whose hashes collide on one codebook slot
    /// contribute identical vectors, so a signature match means the
    /// slot-level routing state agrees (identical arg-max geometry), not
    /// necessarily the id lists — the mismatch direction is what carries
    /// the signal. Noise injection never perturbs it (it tracks clean
    /// codebook encodings), so it also serves as the reference point for
    /// scrub-and-repair.
    #[must_use]
    pub fn membership_signature(&self) -> Hypervector {
        self.signature.read()
    }

    /// The live member ids, **sorted** — the canonical set representation
    /// replica reconciliation exchanges and compares (join order, which
    /// [`DynamicHashTable::servers`] preserves, is replica-local and must
    /// not leak into cross-replica comparisons).
    #[must_use]
    pub fn member_ids(&self) -> Vec<ServerId> {
        let mut ids: Vec<ServerId> = self.members.iter().map(|&(s, _)| s).collect();
        ids.sort_unstable();
        ids
    }

    /// Drives this table's membership to exactly `target`: members absent
    /// from `target` leave, members present only in `target` join. The
    /// anti-entropy delta-application hook — each move rides the
    /// incremental counter-plane path, so reconciliation costs
    /// `O(moves · words · log n)`, never a rebuild.
    ///
    /// Duplicate ids in `target` are ignored (a membership is a set).
    /// Returns `(joined, left)` move counts; `(0, 0)` means the table
    /// already matched.
    ///
    /// # Errors
    ///
    /// Returns the first failing move (only
    /// [`TableError::CapacityExhausted`] is reachable: the departures and
    /// arrivals are computed from live state, and departures run first to
    /// free slots). Moves already applied stay applied; re-running with
    /// the same target resumes where it failed.
    pub fn reconcile_members(&mut self, target: &[ServerId]) -> Result<(usize, usize), TableError> {
        let want: std::collections::BTreeSet<ServerId> = target.iter().copied().collect();
        let have: std::collections::BTreeSet<ServerId> =
            self.members.iter().map(|&(s, _)| s).collect();
        let mut left = 0;
        for &server in have.difference(&want) {
            self.leave(server)?;
            left += 1;
        }
        let mut joined = 0;
        for &server in want.difference(&have) {
            self.join(server)?;
            joined += 1;
        }
        Ok((joined, left))
    }

    /// Resolves one request (Eq. 2).
    fn resolve(&self, request: RequestKey) -> Result<ServerId, TableError> {
        self.resolve_slot(self.codebook.slot_of(&request.to_bytes()))
    }

    /// Resolves a codebook slot — the unit every lookup reduces to, since
    /// `Enc` factors through the slot. Batched lookups dedup on this.
    fn resolve_slot(&self, slot: usize) -> Result<ServerId, TableError> {
        let probe = self.codebook.hypervector(slot);
        if self.memory.is_empty() {
            return Err(TableError::EmptyPool);
        }
        match self.config.flip_strategy {
            hdhash_hdc::basis::FlipStrategy::Partition => {
                // Quantized arg-max: distances are rounded to the grid
                // c = d/n on which all clean distances sit exactly, with a
                // deterministic, membership-order-independent tie-break on
                // the server identifier (so leave + rejoin is an exact
                // no-op). See the type-level docs for the robustness
                // guarantee. The scan runs on the associative memory's
                // contiguous-matrix engine with early abandonment.
                let c = self.config.quantum();
                self.memory
                    .nearest_quantized_by(probe, c, |server| server.get())
                    .ok_or(TableError::EmptyPool)
            }
            hdhash_hdc::basis::FlipStrategy::Independent { .. } => {
                // Raw Eq. 2 arg-max for the literal Algorithm 1 codebook.
                self.memory.nearest(probe).map(|m| m.key).ok_or(TableError::EmptyPool)
            }
        }
    }

    fn rebuild_memory(&mut self) {
        let mut memory =
            AssociativeMemory::with_engine_options(self.config.dimension, self.config.engine)
                .with_metric(self.config.metric)
                .with_strategy(self.config.search);
        for &(server, slot) in &self.members {
            memory
                .insert(server, self.codebook.hypervector(slot).clone())
                .expect("codebook dimension matches memory");
        }
        self.memory = memory;
    }
}

impl Default for HdHashTable {
    fn default() -> Self {
        Self::new()
    }
}

impl DynamicHashTable for HdHashTable {
    fn join(&mut self, server: ServerId) -> Result<(), TableError> {
        if self.members.iter().any(|&(s, _)| s == server) {
            return Err(TableError::ServerAlreadyPresent(server));
        }
        // The paper requires n > k: reject joins that would fill the circle.
        if self.members.len() + 1 >= self.codebook.len() {
            return Err(TableError::CapacityExhausted {
                servers: self.members.len(),
                capacity: self.codebook.len() - 1,
            });
        }
        let (slot, hv) = self.codebook.encode(&server.to_bytes());
        let hv = hv.clone();
        self.members.push((server, slot));
        self.signature.add(&hv).expect("codebook dimension matches signature");
        self.memory.insert(server, hv).expect("codebook dimension matches memory");
        Ok(())
    }

    fn leave(&mut self, server: ServerId) -> Result<(), TableError> {
        let idx = self
            .members
            .iter()
            .position(|&(s, _)| s == server)
            .ok_or(TableError::ServerNotFound(server))?;
        let (_, slot) = self.members.remove(idx);
        self.signature
            .remove(self.codebook.hypervector(slot))
            .expect("member encodings were added at join");
        self.memory.remove_where(|&s| s == server);
        Ok(())
    }

    fn lookup(&self, request: RequestKey) -> Result<ServerId, TableError> {
        self.resolve(request)
    }

    fn lookup_batch(&self, requests: &[RequestKey]) -> Vec<Result<ServerId, TableError>> {
        // The paper reduces its GPU's dispatch overhead by mapping requests
        // in batches of 256. On the CPU the decisive batching lever is that
        // `Enc` factors through the codebook slot: a batch of thousands of
        // requests touches at most `n` distinct slots (far fewer under
        // skewed traffic), so each distinct slot is resolved once against
        // the associative memory and the verdict is shared across the
        // batch. Slot resolutions use the memory engine's batched
        // contiguous-matrix scan.
        let slots: Vec<usize> =
            requests.iter().map(|r| self.codebook.slot_of(&r.to_bytes())).collect();
        let mut verdicts: std::collections::HashMap<usize, Result<ServerId, TableError>> =
            std::collections::HashMap::new();
        let mut distinct: Vec<usize> = Vec::new();
        for &slot in &slots {
            if let std::collections::hash_map::Entry::Vacant(e) = verdicts.entry(slot) {
                e.insert(Err(TableError::EmptyPool));
                distinct.push(slot);
            }
        }
        if !self.memory.is_empty() {
            let probes: Vec<&hdhash_hdc::Hypervector> =
                distinct.iter().map(|&s| self.codebook.hypervector(s)).collect();
            match self.config.flip_strategy {
                hdhash_hdc::basis::FlipStrategy::Partition => {
                    // Quantized arg-max over all distinct probes in one
                    // batched call (one thread scope per batch under the
                    // parallel strategy, not one per slot).
                    let c = self.config.quantum();
                    let keys = self
                        .memory
                        .nearest_quantized_batch_by(&probes, c, |server| server.get());
                    for (slot, key) in distinct.iter().zip(keys) {
                        verdicts.insert(*slot, key.ok_or(TableError::EmptyPool));
                    }
                }
                hdhash_hdc::basis::FlipStrategy::Independent { .. } => {
                    // Raw arg-max path: the cache-blocked multi-probe
                    // kernel in one sweep.
                    for (slot, matched) in
                        distinct.iter().zip(self.memory.nearest_batch(&probes))
                    {
                        verdicts
                            .insert(*slot, matched.map(|m| m.key).ok_or(TableError::EmptyPool));
                    }
                }
            }
        }
        slots.into_iter().map(|slot| verdicts[&slot]).collect()
    }

    fn server_count(&self) -> usize {
        self.members.len()
    }

    fn servers(&self) -> Vec<ServerId> {
        self.members.iter().map(|&(s, _)| s).collect()
    }

    fn algorithm_name(&self) -> &'static str {
        "hd"
    }
}

impl NoisyTable for HdHashTable {
    fn inject_bit_flips(&mut self, count: usize, seed: u64) -> usize {
        let mut rng = Rng::new(seed);
        noise::flip_random_bits(&mut self.memory, count, &mut rng)
    }

    fn inject_burst(&mut self, length: usize, seed: u64) -> usize {
        let mut rng = Rng::new(seed);
        noise::flip_burst(&mut self.memory, length, &mut rng)
    }

    fn clear_noise(&mut self) {
        self.rebuild_memory();
    }

    fn noise_surface_bits(&self) -> usize {
        self.memory.len() * self.config.dimension
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdhash_table::{remap_fraction, Assignment};

    fn small_table(servers: u64) -> HdHashTable {
        // d = 4096, n = 128: quantum c = 32, so assignments provably
        // tolerate up to 15 corrupted bits per stored hypervector.
        let mut t = HdHashTable::builder()
            .dimension(4096)
            .codebook_size(128)
            .seed(11)
            .build()
            .expect("valid config");
        for i in 0..servers {
            t.join(ServerId::new(i)).expect("fresh server");
        }
        t
    }

    fn keys(n: u64) -> Vec<RequestKey> {
        (0..n).map(RequestKey::new).collect()
    }

    #[test]
    fn lifecycle_and_errors() {
        let mut t = small_table(0);
        assert_eq!(t.lookup(RequestKey::new(0)), Err(TableError::EmptyPool));
        t.join(ServerId::new(9)).expect("fresh");
        assert_eq!(
            t.join(ServerId::new(9)),
            Err(TableError::ServerAlreadyPresent(ServerId::new(9)))
        );
        assert_eq!(t.lookup(RequestKey::new(0)).expect("non-empty"), ServerId::new(9));
        t.leave(ServerId::new(9)).expect("present");
        assert_eq!(t.leave(ServerId::new(9)), Err(TableError::ServerNotFound(ServerId::new(9))));
    }

    #[test]
    fn lookup_routes_to_nearest_circle_node() {
        // The geometric contract: the winning server is one whose codebook
        // slot minimizes circular distance to the request's slot.
        let t = small_table(24);
        for k in 0..500u64 {
            let request = RequestKey::new(k);
            let winner = t.lookup(request).expect("non-empty");
            let r_slot = t.slot_of_request(request);
            let w_slot = t.slot_of_server(winner).expect("winner joined");
            let w_dist = t.codebook().circular_distance(r_slot, w_slot);
            let min_dist = t
                .servers()
                .into_iter()
                .map(|s| {
                    t.codebook()
                        .circular_distance(r_slot, t.slot_of_server(s).expect("joined"))
                })
                .min()
                .expect("non-empty");
            assert_eq!(w_dist, min_dist, "request {k} routed past a nearer server");
        }
    }

    #[test]
    fn headline_robustness_no_mismatch_under_bit_errors() {
        // The paper's central claim (Fig. 5): bit errors leave HD hashing
        // unaffected. Exercise well past the paper's 10-flip range.
        let mut t = small_table(64);
        let reference = Assignment::capture(&t, keys(2000)).expect("non-empty");
        for flips in [1usize, 5, 10, 50, 100] {
            t.inject_bit_flips(flips, flips as u64 + 1000);
            let noisy = Assignment::capture(&t, keys(2000)).expect("non-empty");
            assert_eq!(
                remap_fraction(&reference, &noisy),
                0.0,
                "HD mismatched under {flips} accumulated flips"
            );
        }
        t.clear_noise();
        let restored = Assignment::capture(&t, keys(2000)).expect("non-empty");
        assert_eq!(remap_fraction(&reference, &restored), 0.0);
    }

    #[test]
    fn burst_robustness() {
        let mut t = small_table(64);
        let reference = Assignment::capture(&t, keys(1000)).expect("non-empty");
        for seed in 0..4u64 {
            t.inject_burst(10, seed);
        }
        let noisy = Assignment::capture(&t, keys(1000)).expect("non-empty");
        assert_eq!(remap_fraction(&reference, &noisy), 0.0, "10-bit MCUs must not mismatch");
    }

    #[test]
    fn minimal_disruption_on_join() {
        let mut t = small_table(32);
        let before = Assignment::capture(&t, keys(4000)).expect("non-empty");
        t.join(ServerId::new(555)).expect("fresh");
        let after = Assignment::capture(&t, keys(4000)).expect("non-empty");
        for (r, s_before) in before.iter() {
            let s_after = after.server_of(r).expect("captured");
            assert!(
                s_after == s_before || s_after == ServerId::new(555),
                "{r} moved between elder servers"
            );
        }
        assert!(remap_fraction(&before, &after) < 0.2);
    }

    #[test]
    fn minimal_disruption_on_leave() {
        let mut t = small_table(32);
        let before = Assignment::capture(&t, keys(4000)).expect("non-empty");
        let victim = ServerId::new(5);
        t.leave(victim).expect("present");
        let after = Assignment::capture(&t, keys(4000)).expect("non-empty");
        for (r, s_before) in before.iter() {
            if s_before != victim {
                assert_eq!(after.server_of(r), Some(s_before), "{r} moved without cause");
            }
        }
    }

    #[test]
    fn distribution_roughly_uniform() {
        let t = small_table(16);
        let loads = Assignment::capture(&t, keys(16_000)).expect("non-empty").load_by_server();
        // Load shares follow arc lengths between occupied slots — not
        // perfectly even, but every server must get meaningful traffic.
        assert_eq!(loads.values().sum::<usize>(), 16_000);
        assert!(loads.len() >= 14, "most servers should win some requests");
    }

    #[test]
    fn capacity_is_enforced() {
        let mut t = HdHashTable::builder()
            .dimension(64)
            .codebook_size(4)
            .build()
            .expect("valid config");
        t.join(ServerId::new(0)).expect("fresh");
        t.join(ServerId::new(1)).expect("fresh");
        t.join(ServerId::new(2)).expect("fresh");
        assert_eq!(
            t.join(ServerId::new(3)),
            Err(TableError::CapacityExhausted { servers: 3, capacity: 3 })
        );
    }

    #[test]
    fn deterministic_across_instances() {
        let a = small_table(20);
        let b = small_table(20);
        for k in 0..300u64 {
            assert_eq!(
                a.lookup(RequestKey::new(k)).expect("non-empty"),
                b.lookup(RequestKey::new(k)).expect("non-empty")
            );
        }
    }

    #[test]
    fn lookup_batch_matches_individual_lookups() {
        let t = small_table(24);
        let requests = keys(2000);
        let batched = t.lookup_batch(&requests);
        assert_eq!(batched.len(), requests.len());
        for (&r, batch_result) in requests.iter().zip(&batched) {
            assert_eq!(*batch_result, t.lookup(r), "request {r} diverged in batch");
        }
        // Empty pool: every slot fails identically.
        let empty = small_table(0);
        for result in empty.lookup_batch(&keys(10)) {
            assert_eq!(result, Err(TableError::EmptyPool));
        }
        // The parallel strategy batches through one thread scope and must
        // agree with the serial table exactly.
        let mut parallel = HdHashTable::builder()
            .dimension(4096)
            .codebook_size(128)
            .seed(11)
            .search(hdhash_hdc::SearchStrategy::Parallel { threads: 4 })
            .build()
            .expect("valid config");
        for i in 0..24 {
            parallel.join(ServerId::new(i)).expect("fresh server");
        }
        assert_eq!(parallel.lookup_batch(&requests), batched);
    }

    #[test]
    fn lookup_batch_matches_for_literal_codebook() {
        // The Independent strategy takes the multi-probe engine path.
        let mut t = HdHashTable::builder()
            .dimension(4096)
            .codebook_size(128)
            .seed(13)
            .flip_strategy(hdhash_hdc::basis::FlipStrategy::Independent {
                flips_per_step: 32,
            })
            .build()
            .expect("valid config");
        for i in 0..24 {
            t.join(ServerId::new(i)).expect("fresh server");
        }
        let requests = keys(600);
        for (&r, batch_result) in requests.iter().zip(t.lookup_batch(&requests)) {
            assert_eq!(batch_result, t.lookup(r));
        }
    }

    #[test]
    fn parallel_search_matches_serial() {
        let serial = small_table(48);
        let mut parallel = HdHashTable::builder()
            .dimension(4096)
            .codebook_size(128)
            .seed(11)
            .search(hdhash_hdc::SearchStrategy::Parallel { threads: 4 })
            .build()
            .expect("valid config");
        for i in 0..48 {
            parallel.join(ServerId::new(i)).expect("fresh");
        }
        for k in 0..500u64 {
            assert_eq!(
                serial.lookup(RequestKey::new(k)).expect("non-empty"),
                parallel.lookup(RequestKey::new(k)).expect("non-empty")
            );
        }
    }

    #[test]
    fn collision_tie_breaks_to_first_joiner() {
        // Force a collision with a tiny codebook.
        let mut t = HdHashTable::builder()
            .dimension(64)
            .codebook_size(2)
            .build()
            .expect("valid config");
        t.join(ServerId::new(0)).expect("fresh");
        // Any further join would fill the circle (n must stay > k), so the
        // collision scenario is exercised through capacity here.
        assert!(t.join(ServerId::new(1)).is_err());
        assert_eq!(t.server_count(), 1);
    }

    #[test]
    fn clone_is_an_independent_snapshot() {
        // The serving layer publishes epoch snapshots by cloning the
        // shadow table: the clone must answer identically at the moment of
        // the clone and stay frozen while the original keeps churning.
        let mut t = small_table(16);
        let snapshot = t.clone();
        let frozen: Vec<ServerId> =
            keys(200).iter().map(|&k| snapshot.lookup(k).expect("non-empty")).collect();
        t.join(ServerId::new(900)).expect("fresh");
        t.leave(ServerId::new(3)).expect("present");
        t.inject_bit_flips(50, 77);
        assert_eq!(snapshot.server_count(), 16);
        assert_eq!(t.server_count(), 16);
        for (&k, &want) in keys(200).iter().zip(&frozen) {
            assert_eq!(snapshot.lookup(k).expect("non-empty"), want);
        }
        assert_eq!(
            snapshot.membership_signature(),
            small_table(16).membership_signature(),
            "snapshot signature must match an identically built table"
        );
    }

    #[test]
    fn member_ids_are_sorted_and_join_order_free() {
        let mut a = small_table(0);
        let mut b = small_table(0);
        for id in [5u64, 1, 9, 3] {
            a.join(ServerId::new(id)).expect("fresh");
        }
        for id in [3u64, 9, 1, 5] {
            b.join(ServerId::new(id)).expect("fresh");
        }
        let want: Vec<ServerId> = [1u64, 3, 5, 9].into_iter().map(ServerId::new).collect();
        assert_eq!(a.member_ids(), want);
        assert_eq!(a.member_ids(), b.member_ids());
        assert_eq!(a.membership_signature(), b.membership_signature());
    }

    #[test]
    fn reconcile_members_converges_to_target() {
        let mut t = small_table(6); // members 0..6
        let target: Vec<ServerId> =
            [2u64, 4, 5, 40, 41].into_iter().map(ServerId::new).collect();
        let (joined, left) = t.reconcile_members(&target).expect("capacity fits");
        assert_eq!((joined, left), (2, 3)); // +{40,41}, -{0,1,3}
        assert_eq!(t.member_ids(), target);
        // Fixed point: reconciling again moves nothing and burns nothing.
        let sig = t.membership_signature();
        assert_eq!(t.reconcile_members(&target).expect("no-op"), (0, 0));
        assert_eq!(t.membership_signature(), sig);
        // The reconciled table is byte-identical to one built directly.
        let mut direct = small_table(0);
        for &s in &target {
            direct.join(s).expect("fresh");
        }
        assert_eq!(t.membership_signature(), direct.membership_signature());
        for k in 0..200u64 {
            assert_eq!(t.lookup(RequestKey::new(k)), direct.lookup(RequestKey::new(k)));
        }
    }

    #[test]
    fn reconcile_members_ignores_duplicate_targets() {
        let mut t = small_table(2);
        let target: Vec<ServerId> =
            [7u64, 7, 0].into_iter().map(ServerId::new).collect();
        assert_eq!(t.reconcile_members(&target).expect("fits"), (1, 1));
        assert_eq!(t.member_ids(), vec![ServerId::new(0), ServerId::new(7)]);
    }

    #[test]
    fn noise_surface_scales_with_membership() {
        let t = small_table(8);
        assert_eq!(t.noise_surface_bits(), 8 * 4096);
        assert_eq!(t.algorithm_name(), "hd");
        assert_eq!(t.config().codebook_size(), 128);
        assert_eq!(t.config().quantum(), 32);
    }
}
