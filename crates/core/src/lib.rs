//! # hdhash-core — Hyperdimensional (HD) hashing
//!
//! The primary contribution of *"Hyperdimensional Hashing: A Robust and
//! Efficient Dynamic Hash Table"* (Heddes et al., DAC 2022): a dynamic hash
//! table built on Hyperdimensional Computing.
//!
//! ## The algorithm (paper Section 3)
//!
//! Let `S` be the servers, `R` the requests and `C = {c₁, …, cₙ}` a set of
//! `n > k` **circular-hypervectors**. With a conventional hash function
//! `h(·)`, every server and request is *encoded* onto the circle:
//!
//! ```text
//! Enc(x) = C[h(x) mod n]                                   (Eq. 1)
//! ```
//!
//! and each request `rᵢ` is mapped to the server
//!
//! ```text
//! sⱼ = argmax_{s ∈ S} δ(Enc(s), Enc(rᵢ))                   (Eq. 2)
//! ```
//!
//! where `δ` is a hypervector similarity metric (inverse Hamming or
//! cosine). Because circular-hypervector similarity decays with circular
//! distance, Eq. 2 assigns each request to the server at the *nearest
//! circle node* — like consistent hashing, but direction-insensitive, and
//! computed as an HDC associative-memory inference that special hardware
//! can execute in `O(1)`.
//!
//! Crucially, the stored state is hypervectors: flipping a handful of the
//! ~`10⁴` bits of an encoding barely changes any similarity, so the arg-max
//! — and therefore every assignment — is unaffected. This is the paper's
//! robustness result (Figure 5: 0% mismatches for HD hashing).
//!
//! ## Quick start
//!
//! ```
//! use hdhash_core::HdHashTable;
//! use hdhash_table::{DynamicHashTable, RequestKey, ServerId};
//!
//! let mut table = HdHashTable::builder().dimension(10_000).codebook_size(64).build()?;
//! for id in 0..8 {
//!     table.join(ServerId::new(id))?;
//! }
//! let owner = table.lookup(RequestKey::new(1234))?;
//! assert!(table.contains(owner));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounded;
pub mod codebook;
pub mod config;
pub mod hierarchical;
pub mod table;
pub mod weighted;

pub use bounded::BoundedHdTable;
pub use codebook::Codebook;
pub use config::{HdConfig, HdConfigBuilder, HdConfigError};
pub use hdhash_hdc::{EngineOptions, MatrixLayout};
pub use hierarchical::HierarchicalHdTable;
pub use table::HdHashTable;
pub use weighted::WeightedHdTable;
