//! Hierarchical HD hashing.
//!
//! The paper notes (Section 5.1) that HD hashing "can scale to much larger
//! clusters, and even be used hierarchically (standard way to scale such
//! hashing systems) to handle extremely high numbers of servers". This
//! module provides that extension: a two-level table where the first level
//! routes a request to a *group* and the second level routes it within the
//! group. Lookup cost drops from one arg-max over `k` servers to two
//! arg-maxes over `≈ √k` entries each, and groups can be scaled
//! independently (e.g. one group per rack or availability zone).

use hdhash_hdc::{Hypervector, MembershipCentroid};
use hdhash_table::{DynamicHashTable, RequestKey, ServerId, TableError};

use crate::config::HdConfig;
use crate::table::HdHashTable;

/// Identifier of a server group (first hierarchy level).
type GroupId = u64;

/// A two-level hierarchical HD hash table.
///
/// # Examples
///
/// ```
/// use hdhash_core::{HdConfig, HierarchicalHdTable};
/// use hdhash_table::{DynamicHashTable, RequestKey, ServerId};
///
/// let config = HdConfig::builder().dimension(2048).codebook_size(64).build_config()?;
/// let mut table = HierarchicalHdTable::new(config, 4);
/// for id in 0..32 {
///     table.join(ServerId::new(id))?;
/// }
/// let owner = table.lookup(RequestKey::new(5))?;
/// assert!(table.contains(owner));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct HierarchicalHdTable {
    config: HdConfig,
    group_count: u64,
    /// First level: routes requests to groups. Group `g` joins as the
    /// pseudo-server with identifier `g`.
    router: HdHashTable,
    /// Second level: one HD table per group, created lazily.
    groups: Vec<Option<HdHashTable>>,
    /// Incremental majority centroid over every member's (group-local)
    /// encoding, across all groups: the hierarchy-wide membership
    /// fingerprint, updated in `O(words · log n)` per join/leave.
    signature: MembershipCentroid,
}

impl HierarchicalHdTable {
    /// Creates a hierarchy with `group_count` groups, each level using
    /// (derived copies of) `config`.
    ///
    /// # Panics
    ///
    /// Panics if `group_count == 0` or exceeds the codebook capacity of the
    /// router level.
    #[must_use]
    pub fn new(config: HdConfig, group_count: u64) -> Self {
        assert!(group_count > 0, "at least one group is required");
        assert!(
            (group_count as usize) < config.codebook_size(),
            "group count must stay below the codebook size (n > k)"
        );
        let mut router = HdHashTable::with_config(config);
        for g in 0..group_count {
            router.join(ServerId::new(g)).expect("router capacity checked above");
        }
        Self {
            config,
            group_count,
            router,
            groups: (0..group_count).map(|_| None).collect(),
            signature: MembershipCentroid::new(config.dimension()),
        }
    }

    /// The hierarchy-wide **membership signature**: the majority centroid
    /// of every member's group-local encoding, maintained incrementally
    /// across joins and leaves. A pure function of the membership
    /// multiset — see [`HdHashTable::membership_signature`] for the
    /// replica-sync use case.
    #[must_use]
    pub fn membership_signature(&self) -> Hypervector {
        self.signature.read()
    }

    /// Number of groups at the first level.
    #[must_use]
    pub fn group_count(&self) -> u64 {
        self.group_count
    }

    /// The group a server belongs to (by identity hash, so membership is
    /// stable across joins and leaves).
    #[must_use]
    pub fn group_of_server(&self, server: ServerId) -> GroupId {
        hdhash_hashfn::mix64(server.get()) % self.group_count
    }

    /// The group a request routes to through the first-level HD table.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::EmptyPool`] only if the router is empty,
    /// which cannot happen after construction.
    pub fn group_of_request(&self, request: RequestKey) -> Result<GroupId, TableError> {
        Ok(self.router.lookup(request)?.get())
    }

    fn group_table(&mut self, group: GroupId) -> &mut HdHashTable {
        let slot = &mut self.groups[group as usize];
        slot.get_or_insert_with(|| {
            // Derive a distinct seed per group so codebooks differ.
            let seed = self.config.seed() ^ hdhash_hashfn::mix64(group + 1);
            let config = HdConfig::builder()
                .dimension(self.config.dimension())
                .codebook_size(self.config.codebook_size())
                .metric(self.config.metric())
                .search(self.config.search())
                .seed(seed)
                .build_config()
                .expect("copied config remains valid");
            HdHashTable::with_config(config)
        })
    }
}

impl DynamicHashTable for HierarchicalHdTable {
    fn join(&mut self, server: ServerId) -> Result<(), TableError> {
        let group = self.group_of_server(server);
        let table = self.group_table(group);
        table.join(server)?;
        let slot = table.slot_of_server(server).expect("server joined just above");
        let encoding = table.codebook().hypervector(slot).clone();
        self.signature.add(&encoding).expect("group dimension matches signature");
        Ok(())
    }

    fn leave(&mut self, server: ServerId) -> Result<(), TableError> {
        let group = self.group_of_server(server);
        match &mut self.groups[group as usize] {
            Some(table) => {
                let slot =
                    table.slot_of_server(server).ok_or(TableError::ServerNotFound(server))?;
                let encoding = table.codebook().hypervector(slot).clone();
                table.leave(server)?;
                self.signature
                    .remove(&encoding)
                    .expect("member encodings were added at join");
                Ok(())
            }
            None => Err(TableError::ServerNotFound(server)),
        }
    }

    fn lookup(&self, request: RequestKey) -> Result<ServerId, TableError> {
        // Level 1: route to a group; if that group has no servers, fall
        // through the groups clockwise (deterministic failover).
        let primary = self.router.lookup(request)?.get();
        for offset in 0..self.group_count {
            let group = (primary + offset) % self.group_count;
            if let Some(table) = &self.groups[group as usize] {
                if table.server_count() > 0 {
                    return table.lookup(request);
                }
            }
        }
        Err(TableError::EmptyPool)
    }

    fn server_count(&self) -> usize {
        self.groups.iter().flatten().map(HdHashTable::server_count).sum()
    }

    fn servers(&self) -> Vec<ServerId> {
        self.groups.iter().flatten().flat_map(HdHashTable::servers).collect()
    }

    fn algorithm_name(&self) -> &'static str {
        "hd-hierarchical"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> HdConfig {
        HdConfig::builder()
            .dimension(2048)
            .codebook_size(64)
            .seed(21)
            .build_config()
            .expect("valid config")
    }

    fn filled(servers: u64, groups: u64) -> HierarchicalHdTable {
        let mut t = HierarchicalHdTable::new(config(), groups);
        for i in 0..servers {
            t.join(ServerId::new(i)).expect("fresh server");
        }
        t
    }

    #[test]
    fn joins_distribute_over_groups() {
        let t = filled(64, 4);
        assert_eq!(t.server_count(), 64);
        assert_eq!(t.group_count(), 4);
        // Every group should have received some servers.
        let mut per_group = [0usize; 4];
        for s in t.servers() {
            per_group[t.group_of_server(s) as usize] += 1;
        }
        assert!(per_group.iter().all(|&c| c > 0), "empty group: {per_group:?}");
    }

    #[test]
    fn lookup_lands_in_routed_group() {
        let t = filled(64, 4);
        for k in 0..500u64 {
            let request = RequestKey::new(k);
            let owner = t.lookup(request).expect("non-empty");
            let routed = t.group_of_request(request).expect("router non-empty");
            assert_eq!(
                t.group_of_server(owner),
                routed,
                "request {k} answered by a foreign group"
            );
        }
    }

    #[test]
    fn failover_when_group_is_empty() {
        let mut t = HierarchicalHdTable::new(config(), 4);
        // Put servers in only one group by joining until that group has
        // members and removing the rest.
        for i in 0..16u64 {
            t.join(ServerId::new(i)).expect("fresh");
        }
        let keep_group = t.group_of_server(ServerId::new(0));
        let victims: Vec<ServerId> =
            t.servers().into_iter().filter(|&s| t.group_of_server(s) != keep_group).collect();
        for s in victims {
            t.leave(s).expect("present");
        }
        // All requests must still resolve (failover through empty groups).
        for k in 0..200u64 {
            let owner = t.lookup(RequestKey::new(k)).expect("non-empty pool");
            assert_eq!(t.group_of_server(owner), keep_group);
        }
    }

    #[test]
    fn empty_hierarchy_errors() {
        let t = HierarchicalHdTable::new(config(), 2);
        assert_eq!(t.lookup(RequestKey::new(1)), Err(TableError::EmptyPool));
        assert_eq!(t.server_count(), 0);
    }

    #[test]
    fn leave_unknown_server_errors() {
        let mut t = filled(8, 2);
        assert_eq!(
            t.leave(ServerId::new(10_000)),
            Err(TableError::ServerNotFound(ServerId::new(10_000)))
        );
    }

    #[test]
    fn deterministic_lookups() {
        let a = filled(32, 4);
        let b = filled(32, 4);
        for k in 0..200u64 {
            assert_eq!(
                a.lookup(RequestKey::new(k)).expect("non-empty"),
                b.lookup(RequestKey::new(k)).expect("non-empty")
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one group")]
    fn zero_groups_panics() {
        let _ = HierarchicalHdTable::new(config(), 0);
    }
}
