//! An arena-allocated treap: the ring's `O(log n)` search structure.
//!
//! Consistent hashing's `O(log n)` lookup (paper §2.1) is classically
//! served by a balanced binary search tree over the ring positions
//! (`std::map` in the original LKH/Chord-era implementations). This module
//! provides that structure from scratch as a *treap* — a BST ordered by
//! key whose heap priorities are derived by hashing the key, making the
//! tree shape **history independent**: the same key set always yields the
//! same tree, regardless of insertion order.
//!
//! ## Why a tree and not a sorted array
//!
//! Faithfulness of the robustness experiments. The tree stores, per node,
//! a 64-bit ring position and two 32-bit child indices ("pointers"). A
//! memory error that hits a position relocates one virtual node (small,
//! local damage); an error that hits a *child index* detaches or misroutes
//! an entire subtree — queries that should descend into it resolve to a
//! wrong successor. This pointer amplification is what degrades consistent
//! hashing so sharply in the paper's Figure 5, and it simply does not
//! exist for rendezvous hashing (no pointers) or HD hashing (holographic
//! encodings).
//!
//! Search under corruption is hardened the way real systems are: child
//! indices are bounds-checked (out-of-range reads as a null link) and
//! walks carry a step budget against cycles.

use hdhash_table::ServerId;

/// Null link sentinel.
const NIL: u32 = u32::MAX;

/// One treap node. The noise surface of a node is its `position` (64
/// bits) followed by `left` and `right` (32 bits each): 128 bits total.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Node {
    position: u64,
    left: u32,
    right: u32,
    /// Heap priority, derived from the key; not part of the noise surface
    /// (it is only consulted during rebuilds).
    priority: u64,
    /// The owning server; identifiers live in the membership table, not
    /// the search structure, so they are not part of the noise surface.
    server: ServerId,
}

/// Number of noise-surface bits per node.
pub const NODE_SURFACE_BITS: usize = 128;

/// A treap keyed by `(position, server)` pairs.
#[derive(Debug, Clone, Default)]
pub struct Treap {
    nodes: Vec<Node>,
    root: u32,
}

impl Treap {
    /// Creates an empty treap.
    #[must_use]
    pub fn new() -> Self {
        Self { nodes: Vec::new(), root: NIL }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the treap is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total noise-surface bits.
    #[must_use]
    pub fn surface_bits(&self) -> usize {
        self.nodes.len() * NODE_SURFACE_BITS
    }

    fn priority_of(position: u64, server: ServerId) -> u64 {
        hdhash_hashfn::mix64(position ^ hdhash_hashfn::rrmxmx(server.get()))
    }

    /// Key comparison: positions first, server id as tie-break.
    fn key_less(a_pos: u64, a_srv: ServerId, b_pos: u64, b_srv: ServerId) -> bool {
        (a_pos, a_srv.get()) < (b_pos, b_srv.get())
    }

    /// Inserts a `(position, server)` point.
    pub fn insert(&mut self, position: u64, server: ServerId) {
        let index = self.nodes.len() as u32;
        self.nodes.push(Node {
            position,
            left: NIL,
            right: NIL,
            priority: Self::priority_of(position, server),
            server,
        });
        self.root = self.insert_at(self.root, index);
    }

    fn insert_at(&mut self, at: u32, index: u32) -> u32 {
        if at == NIL {
            return index;
        }
        let (at_pos, at_srv, at_prio) = {
            let n = &self.nodes[at as usize];
            (n.position, n.server, n.priority)
        };
        let (new_pos, new_srv, new_prio) = {
            let n = &self.nodes[index as usize];
            (n.position, n.server, n.priority)
        };
        if Self::key_less(new_pos, new_srv, at_pos, at_srv) {
            let child = self.insert_at(self.nodes[at as usize].left, index);
            self.nodes[at as usize].left = child;
            if self.nodes[child as usize].priority > at_prio {
                return self.rotate_right(at);
            }
        } else {
            let child = self.insert_at(self.nodes[at as usize].right, index);
            self.nodes[at as usize].right = child;
            if self.nodes[child as usize].priority > at_prio {
                return self.rotate_left(at);
            }
        }
        let _ = new_prio;
        at
    }

    fn rotate_right(&mut self, at: u32) -> u32 {
        let left = self.nodes[at as usize].left;
        self.nodes[at as usize].left = self.nodes[left as usize].right;
        self.nodes[left as usize].right = at;
        left
    }

    fn rotate_left(&mut self, at: u32) -> u32 {
        let right = self.nodes[at as usize].right;
        self.nodes[at as usize].right = self.nodes[right as usize].left;
        self.nodes[right as usize].left = at;
        right
    }

    /// Bounds-checked child read: corrupted out-of-range indices read as
    /// null links.
    fn link(&self, index: u32) -> Option<usize> {
        let i = index as usize;
        (i < self.nodes.len()).then_some(i)
    }

    /// The clockwise successor of `point`: the node with the smallest
    /// `position >= point`, wrapping to the globally smallest position.
    ///
    /// The walk carries a step budget so corrupted links (including
    /// cycles) terminate deterministically; `None` is returned only for an
    /// empty treap or a walk that found no candidate within budget.
    #[must_use]
    pub fn successor(&self, point: u64) -> Option<ServerId> {
        if self.nodes.is_empty() {
            return None;
        }
        let budget = Self::step_budget(self.nodes.len());
        let mut best: Option<usize> = None;
        let mut cursor = self.link(self.root);
        let mut steps = 0;
        while let Some(i) = cursor {
            if steps >= budget {
                break;
            }
            steps += 1;
            let node = &self.nodes[i];
            if node.position >= point {
                best = Some(i);
                cursor = self.link(node.left);
            } else {
                cursor = self.link(node.right);
            }
        }
        if let Some(i) = best {
            return Some(self.nodes[i].server);
        }
        // Wrap around: the globally smallest position.
        self.minimum()
    }

    /// The server at the globally smallest position (step-budgeted walk).
    #[must_use]
    pub fn minimum(&self) -> Option<ServerId> {
        let budget = Self::step_budget(self.nodes.len());
        let mut cursor = self.link(self.root)?;
        let mut steps = 0;
        loop {
            let node = &self.nodes[cursor];
            match self.link(node.left) {
                Some(next) if steps < budget => {
                    cursor = next;
                    steps += 1;
                }
                _ => return Some(node.server),
            }
        }
    }

    fn step_budget(n: usize) -> usize {
        // Generous for a treap (expected depth ~1.39·log2 n), tight enough
        // to terminate cycles quickly.
        4 * (usize::BITS - n.leading_zeros()) as usize + 16
    }

    /// All `(position, server)` pairs in key order (clean traversal used
    /// by rebuilds and tests; assumes an uncorrupted tree).
    #[must_use]
    pub fn entries_in_order(&self) -> Vec<(u64, ServerId)> {
        let mut out = Vec::with_capacity(self.nodes.len());
        self.in_order(self.root, &mut out, 0);
        out
    }

    fn in_order(&self, at: u32, out: &mut Vec<(u64, ServerId)>, depth: usize) {
        if depth > self.nodes.len() {
            return; // cycle guard for corrupted trees
        }
        if let Some(i) = self.link(at) {
            let node = self.nodes[i];
            self.in_order(node.left, out, depth + 1);
            out.push((node.position, node.server));
            self.in_order(node.right, out, depth + 1);
        }
    }

    /// Flips one bit of the noise surface. Bit `b` addresses node
    /// `b / 128`; within a node, bits `0..64` hit the position, `64..96`
    /// the left child index and `96..128` the right child index.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= surface_bits()`.
    pub fn flip_surface_bit(&mut self, bit: usize) {
        assert!(bit < self.surface_bits(), "surface bit {bit} out of range");
        let node = &mut self.nodes[bit / NODE_SURFACE_BITS];
        match bit % NODE_SURFACE_BITS {
            b @ 0..=63 => node.position ^= 1u64 << b,
            b @ 64..=95 => node.left ^= 1u32 << (b - 64),
            b => node.right ^= 1u32 << (b - 96),
        }
    }

    /// Structural health check for tests: every node reachable exactly
    /// once, keys in order, priorities heap-ordered.
    #[must_use]
    pub fn is_well_formed(&self) -> bool {
        if self.nodes.is_empty() {
            return self.root == NIL;
        }
        let entries = self.entries_in_order();
        if entries.len() != self.nodes.len() {
            return false;
        }
        if !entries.windows(2).all(|w| (w[0].0, w[0].1.get()) < (w[1].0, w[1].1.get())) {
            return false;
        }
        self.heap_ok(self.root)
    }

    fn heap_ok(&self, at: u32) -> bool {
        let Some(i) = self.link(at) else { return true };
        let node = self.nodes[i];
        for child in [node.left, node.right] {
            if let Some(c) = self.link(child) {
                if self.nodes[c].priority > node.priority {
                    return false;
                }
            }
        }
        self.heap_ok(node.left) && self.heap_ok(node.right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdhash_hashfn::SplitMix64;

    fn filled(n: u64, seed: u64) -> Treap {
        let mut rng = SplitMix64::new(seed);
        let mut t = Treap::new();
        for i in 0..n {
            t.insert(rng.next_u64(), ServerId::new(i));
        }
        t
    }

    #[test]
    fn insert_produces_well_formed_tree() {
        for n in [0u64, 1, 2, 3, 10, 100, 1000] {
            let t = filled(n, 7);
            assert_eq!(t.len(), n as usize);
            assert!(t.is_well_formed(), "broken at n={n}");
        }
    }

    #[test]
    fn history_independence() {
        // Same key set, different insertion orders → identical in-order
        // AND identical shape (successor on every probe agrees).
        let keys: Vec<(u64, ServerId)> =
            (0..50u64).map(|i| (hdhash_hashfn::mix64(i), ServerId::new(i))).collect();
        let mut forward = Treap::new();
        for &(p, s) in &keys {
            forward.insert(p, s);
        }
        let mut backward = Treap::new();
        for &(p, s) in keys.iter().rev() {
            backward.insert(p, s);
        }
        assert_eq!(forward.entries_in_order(), backward.entries_in_order());
        let mut rng = SplitMix64::new(3);
        for _ in 0..500 {
            let q = rng.next_u64();
            assert_eq!(forward.successor(q), backward.successor(q));
        }
    }

    #[test]
    fn successor_matches_linear_reference() {
        let t = filled(64, 9);
        let entries = t.entries_in_order();
        let mut rng = SplitMix64::new(4);
        for _ in 0..2000 {
            let q = rng.next_u64();
            let reference = entries
                .iter()
                .find(|&&(p, _)| p >= q)
                .or_else(|| entries.first())
                .map(|&(_, s)| s);
            assert_eq!(t.successor(q), reference);
        }
    }

    #[test]
    fn wraparound_hits_minimum() {
        let mut t = Treap::new();
        t.insert(100, ServerId::new(1));
        t.insert(200, ServerId::new(2));
        assert_eq!(t.successor(u64::MAX), Some(ServerId::new(1)));
        assert_eq!(t.successor(150), Some(ServerId::new(2)));
        assert_eq!(t.successor(0), Some(ServerId::new(1)));
        assert_eq!(t.minimum(), Some(ServerId::new(1)));
    }

    #[test]
    fn empty_treap_has_no_successor() {
        let t = Treap::new();
        assert_eq!(t.successor(5), None);
        assert_eq!(t.minimum(), None);
        assert!(t.is_well_formed());
        assert_eq!(t.surface_bits(), 0);
    }

    #[test]
    fn expected_logarithmic_depth() {
        // Step budget must comfortably exceed the realized depth.
        let t = filled(4096, 11);
        let entries = t.entries_in_order();
        assert_eq!(entries.len(), 4096);
        // Probe many keys; all must resolve (i.e. within budget).
        let mut rng = SplitMix64::new(5);
        for _ in 0..1000 {
            assert!(t.successor(rng.next_u64()).is_some());
        }
    }

    #[test]
    fn surface_bit_flips_hit_documented_fields() {
        let mut t = Treap::new();
        t.insert(0b1000, ServerId::new(1));
        let before = t.nodes[0];
        t.flip_surface_bit(3);
        assert_eq!(t.nodes[0].position, before.position ^ 0b1000);
        t.flip_surface_bit(64);
        assert_eq!(t.nodes[0].left, before.left ^ 1);
        t.flip_surface_bit(96);
        assert_eq!(t.nodes[0].right, before.right ^ 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn surface_bit_out_of_range_panics() {
        let mut t = Treap::new();
        t.insert(1, ServerId::new(1));
        t.flip_surface_bit(128);
    }

    #[test]
    fn corrupted_pointers_degrade_but_terminate() {
        let mut t = filled(256, 13);
        let mut rng = SplitMix64::new(6);
        // Hammer the pointer region of many nodes.
        for _ in 0..50 {
            let node = rng.next_below(256) as usize;
            let bit = 64 + rng.next_below(64) as usize;
            t.flip_surface_bit(node * NODE_SURFACE_BITS + bit);
        }
        // Lookups still terminate and return *some* server.
        for _ in 0..2000 {
            let _ = t.successor(rng.next_u64());
        }
    }

    #[test]
    fn single_pointer_flip_misroutes_many_queries() {
        // The amplification at the heart of Figure 5: one corrupted child
        // index can move a whole subtree's worth of queries.
        let clean = filled(512, 17);
        let mut rng = SplitMix64::new(8);
        let queries: Vec<u64> = (0..4000).map(|_| rng.next_u64()).collect();
        let reference: Vec<_> = queries.iter().map(|&q| clean.successor(q)).collect();

        let mut worst = 0usize;
        for seed in 0..20u64 {
            let mut noisy = clean.clone();
            let mut nrng = SplitMix64::new(seed);
            let node = nrng.next_below(512) as usize;
            let bit = 64 + nrng.next_below(64) as usize;
            noisy.flip_surface_bit(node * NODE_SURFACE_BITS + bit);
            let moved = queries
                .iter()
                .zip(&reference)
                .filter(|&(&q, r)| noisy.successor(q) != *r)
                .count();
            worst = worst.max(moved);
        }
        assert!(
            worst > 40,
            "a pointer flip should be able to misroute ≫ one arc: worst {worst} of 4000"
        );
    }
}
