//! Jump consistent hash (Lamping & Veach, 2014).
//!
//! A zero-memory consistent hash: `jump_hash(key, n)` computes the bucket
//! in `0..n` directly from the key with `O(log n)` arithmetic and *no
//! stored state at all*. When the pool grows from `n` to `n + 1`, exactly
//! `1/(n+1)` of keys move — optimal minimal disruption — but buckets can
//! only be added or removed **at the end**, so it suits storage shards
//! more than arbitrary-churn server pools.
//!
//! Included as the extreme point of the robustness spectrum: with no
//! stored bytes, there is nothing for a memory error to corrupt. The
//! [`JumpTable`] adapter keeps only the bucket→server array (its noise
//! surface), isolating exactly how much *state* costs under faults.

use hdhash_hashfn::{Hasher64, SplitMix64, XxHash64};
use hdhash_table::{DynamicHashTable, NoisyTable, RequestKey, ServerId, TableError};

/// The stateless jump consistent hash function: maps `key` to a bucket in
/// `0..buckets`.
///
/// # Panics
///
/// Panics if `buckets == 0`.
///
/// # Examples
///
/// ```
/// use hdhash_ring::jump::jump_hash;
///
/// let bucket = jump_hash(12345, 10);
/// assert!(bucket < 10);
/// // Growing the pool moves only ~1/11 of the keys.
/// let moved = (0..10_000u64)
///     .filter(|&k| jump_hash(k, 10) != jump_hash(k, 11))
///     .count();
/// assert!((700..1200).contains(&moved));
/// ```
#[must_use]
pub fn jump_hash(key: u64, buckets: u32) -> u32 {
    assert!(buckets > 0, "jump hash needs at least one bucket");
    // The original LCG-based formulation from the paper.
    let mut k = key;
    let mut b: i64 = -1;
    let mut j: i64 = 0;
    while j < i64::from(buckets) {
        b = j;
        k = k.wrapping_mul(2_862_933_555_777_941_757).wrapping_add(1);
        j = (((b.wrapping_add(1)) as f64) * ((1i64 << 31) as f64 / ((k >> 33).wrapping_add(1) as f64)))
            as i64;
    }
    b as u32
}

/// A dynamic hash table over jump consistent hashing.
///
/// Buckets map to servers through a stored array (join appends, leave
/// swaps the last bucket in — the only removal jump hashing supports
/// without global remapping). That array is the vulnerable noise surface;
/// the jump function itself is stateless.
///
/// # Examples
///
/// ```
/// use hdhash_ring::JumpTable;
/// use hdhash_table::{DynamicHashTable, RequestKey, ServerId};
///
/// let mut table = JumpTable::new();
/// table.join(ServerId::new(10))?;
/// table.join(ServerId::new(20))?;
/// let owner = table.lookup(RequestKey::new(5))?;
/// assert!(table.contains(owner));
/// # Ok::<(), hdhash_table::TableError>(())
/// ```
pub struct JumpTable {
    hasher: Box<dyn Hasher64>,
    /// Bucket → server array, in join order; the noise surface.
    buckets: Vec<u64>,
    /// Clean shadow of the bucket array, used to restore after noise
    /// (the counterpart of the other tables' rebuilds from membership).
    clean: Vec<u64>,
}

impl JumpTable {
    /// Creates an empty table with the default hash function (XXH64).
    #[must_use]
    pub fn new() -> Self {
        Self { hasher: Box::new(XxHash64::with_seed(0)), buckets: Vec::new(), clean: Vec::new() }
    }
}

impl Default for JumpTable {
    fn default() -> Self {
        Self::new()
    }
}

impl core::fmt::Debug for JumpTable {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("JumpTable").field("servers", &self.buckets.len()).finish()
    }
}

impl DynamicHashTable for JumpTable {
    fn join(&mut self, server: ServerId) -> Result<(), TableError> {
        if self.clean.contains(&server.get()) {
            return Err(TableError::ServerAlreadyPresent(server));
        }
        self.clean.push(server.get());
        self.buckets.push(server.get());
        Ok(())
    }

    fn leave(&mut self, server: ServerId) -> Result<(), TableError> {
        let idx = self
            .clean
            .iter()
            .position(|&s| s == server.get())
            .ok_or(TableError::ServerNotFound(server))?;
        // Jump hashing only shrinks from the end: move the last server
        // into the vacated bucket (its keys remap to the moved server, and
        // the final bucket's keys redistribute — the documented trade).
        self.clean.swap_remove(idx);
        self.buckets = self.clean.clone();
        Ok(())
    }

    fn lookup(&self, request: RequestKey) -> Result<ServerId, TableError> {
        if self.buckets.is_empty() {
            return Err(TableError::EmptyPool);
        }
        let key = self.hasher.hash_bytes(&request.to_bytes());
        let bucket = jump_hash(key, self.buckets.len() as u32) as usize;
        Ok(ServerId::new(self.buckets[bucket]))
    }

    fn server_count(&self) -> usize {
        self.clean.len()
    }

    fn servers(&self) -> Vec<ServerId> {
        self.clean.iter().map(|&s| ServerId::new(s)).collect()
    }

    fn algorithm_name(&self) -> &'static str {
        "jump"
    }
}

impl NoisyTable for JumpTable {
    fn inject_bit_flips(&mut self, count: usize, seed: u64) -> usize {
        if self.buckets.is_empty() {
            return 0;
        }
        let mut rng = SplitMix64::new(seed);
        let surface = self.noise_surface_bits() as u64;
        for _ in 0..count {
            let bit = rng.next_below(surface) as usize;
            self.buckets[bit / 64] ^= 1u64 << (bit % 64);
        }
        count
    }

    fn inject_burst(&mut self, length: usize, seed: u64) -> usize {
        if self.buckets.is_empty() || length == 0 {
            return 0;
        }
        let mut rng = SplitMix64::new(seed);
        let surface = self.noise_surface_bits();
        let start = rng.next_below(surface as u64) as usize;
        let end = (start + length).min(surface);
        for bit in start..end {
            self.buckets[bit / 64] ^= 1u64 << (bit % 64);
        }
        end - start
    }

    fn clear_noise(&mut self) {
        self.buckets = self.clean.clone();
    }

    fn noise_surface_bits(&self) -> usize {
        self.buckets.len() * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jump_hash_matches_reference_vectors() {
        // Reference values from the Lamping–Veach paper's reference
        // implementation (widely mirrored in library test suites).
        assert_eq!(jump_hash(0, 1), 0);
        assert_eq!(jump_hash(0, 60), 0);
        assert_eq!(jump_hash(1, 1), 0);
        assert!(jump_hash(1, 60) < 60);
        // Stability: bucket never changes when later buckets are added
        // unless the key moves to the new bucket.
        for key in 0..500u64 {
            for n in 1..40u32 {
                let a = jump_hash(key, n);
                let b = jump_hash(key, n + 1);
                assert!(a == b || b == n, "key {key}: {a} -> {b} at n={n}");
            }
        }
    }

    #[test]
    fn minimal_disruption_is_optimal() {
        let moved = (0..20_000u64)
            .filter(|&k| jump_hash(k, 16) != jump_hash(k, 17))
            .count();
        let fraction = moved as f64 / 20_000.0;
        assert!((fraction - 1.0 / 17.0).abs() < 0.01, "moved {fraction}");
    }

    #[test]
    fn distribution_is_uniform() {
        let mut counts = [0usize; 16];
        for k in 0..32_000u64 {
            counts[jump_hash(hdhash_hashfn::mix64(k), 16) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((1_700..2_300).contains(&c), "bucket {i}: {c}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_panics() {
        let _ = jump_hash(1, 0);
    }

    #[test]
    fn table_lifecycle() {
        let mut t = JumpTable::new();
        assert_eq!(t.lookup(RequestKey::new(1)), Err(TableError::EmptyPool));
        t.join(ServerId::new(1)).expect("fresh");
        t.join(ServerId::new(2)).expect("fresh");
        assert_eq!(t.join(ServerId::new(1)), Err(TableError::ServerAlreadyPresent(ServerId::new(1))));
        assert!(t.contains(t.lookup(RequestKey::new(9)).expect("non-empty")));
        t.leave(ServerId::new(1)).expect("present");
        assert_eq!(t.leave(ServerId::new(1)), Err(TableError::ServerNotFound(ServerId::new(1))));
        assert_eq!(t.server_count(), 1);
        assert!(format!("{t:?}").contains("servers: 1"));
    }

    #[test]
    fn noise_corrupts_bucket_array() {
        let mut t = JumpTable::new();
        for i in 0..32 {
            t.join(ServerId::new(i)).expect("fresh");
        }
        let before: Vec<ServerId> =
            (0..2000).map(|k| t.lookup(RequestKey::new(k)).expect("non-empty")).collect();
        t.inject_bit_flips(10, 3);
        let after: Vec<ServerId> =
            (0..2000).map(|k| t.lookup(RequestKey::new(k)).expect("non-empty")).collect();
        assert_ne!(before, after, "bucket-array corruption must surface");
        assert_eq!(t.noise_surface_bits(), 32 * 64);
        t.clear_noise();
        let restored: Vec<ServerId> =
            (0..2000).map(|k| t.lookup(RequestKey::new(k)).expect("non-empty")).collect();
        assert_eq!(before, restored, "clear_noise must restore");
    }
}
