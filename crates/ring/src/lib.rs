//! # hdhash-ring — consistent hashing on the unit circle
//!
//! Consistent hashing (Karger et al., STOC 1997) maps both servers and
//! requests onto a circular interval; each request is assigned to the first
//! server that succeeds it clockwise. Joins and leaves each move only the
//! keys of one arc — the "minimal disruption" property that made the
//! algorithm the backbone of Akamai, Dynamo and Maglev-style systems.
//!
//! This crate provides:
//!
//! * [`ConsistentTable`] — the classic sorted-ring implementation with
//!   `O(log n)` binary-search lookups and optional virtual nodes;
//! * [`BoundedLoadTable`] — the "consistent hashing with bounded loads"
//!   refinement (Mirrokni et al., SODA 2018), used by the uniformity
//!   ablations;
//! * [`Treap`] — the from-scratch `O(log n)` search tree
//!   the ring is stored in;
//! * a [`NoisyTable`](hdhash_table::NoisyTable) implementation whose
//!   vulnerable state surface is the search structure itself (positions
//!   *and* child links). One corrupted child link misroutes an entire
//!   subtree — the amplification behind consistent hashing's poor showing
//!   in the paper's Figure 5.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounded;
pub mod jump;
pub mod ring;
pub mod treap;

pub use bounded::BoundedLoadTable;
pub use jump::JumpTable;
pub use ring::ConsistentTable;
pub use treap::Treap;
