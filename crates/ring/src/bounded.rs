//! Consistent hashing with bounded loads (Mirrokni, Thorup & Zadimoghaddam,
//! SODA 2018).
//!
//! The classic ring can overload a server whose predecessor arc happens to
//! be long. The bounded-loads refinement caps every server at
//! `⌈(1 + ε) · average⌉` assignments: a request walks clockwise past full
//! servers until it finds one with spare capacity. The paper cites this
//! line of work (\[13\]) when discussing request distribution; we implement
//! it as the uniformity ablation baseline (`ablation_vnodes` bench).

use std::collections::HashMap;

use hdhash_table::{DynamicHashTable, RequestKey, ServerId, TableError};

use crate::ring::ConsistentTable;

/// A consistent hashing table that assigns *stateful* items under a load
/// cap of `⌈(1 + epsilon) · items / servers⌉` per server.
///
/// Unlike the stateless [`ConsistentTable`] lookups, bounded-loads
/// assignment must remember placements (an item parked on an overflow
/// server must keep resolving there), so this type exposes
/// [`assign`](BoundedLoadTable::assign) / [`release`](BoundedLoadTable::release)
/// rather than implementing the read-only lookup trait.
///
/// # Examples
///
/// ```
/// use hdhash_ring::BoundedLoadTable;
/// use hdhash_table::{RequestKey, ServerId};
///
/// let mut table = BoundedLoadTable::new(0.25);
/// for id in 0..4 {
///     table.join(ServerId::new(id))?;
/// }
/// for k in 0..100 {
///     table.assign(RequestKey::new(k))?;
/// }
/// // No server exceeds the cap ⌈1.25 · 100 / 4⌉ = 32.
/// assert!(table.loads().values().all(|&l| l <= 32));
/// # Ok::<(), hdhash_table::TableError>(())
/// ```
#[derive(Debug)]
pub struct BoundedLoadTable {
    ring: ConsistentTable,
    epsilon: f64,
    placements: HashMap<RequestKey, ServerId>,
    loads: HashMap<ServerId, usize>,
}

impl BoundedLoadTable {
    /// Creates an empty table with load slack `epsilon` (must be > 0).
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not finite and positive.
    #[must_use]
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon.is_finite() && epsilon > 0.0, "epsilon must be positive");
        Self {
            ring: ConsistentTable::new(),
            epsilon,
            placements: HashMap::new(),
            loads: HashMap::new(),
        }
    }

    /// Adds a server.
    ///
    /// # Errors
    ///
    /// Propagates [`TableError::ServerAlreadyPresent`].
    pub fn join(&mut self, server: ServerId) -> Result<(), TableError> {
        self.ring.join(server)?;
        self.loads.entry(server).or_insert(0);
        Ok(())
    }

    /// Removes a server; its items are re-assigned under the cap.
    ///
    /// # Errors
    ///
    /// Propagates [`TableError::ServerNotFound`].
    pub fn leave(&mut self, server: ServerId) -> Result<(), TableError> {
        self.ring.leave(server)?;
        self.loads.remove(&server);
        let orphans: Vec<RequestKey> = self
            .placements
            .iter()
            .filter(|&(_, &s)| s == server)
            .map(|(&r, _)| r)
            .collect();
        for r in &orphans {
            self.placements.remove(r);
        }
        for r in orphans {
            // Pool may be empty now; drop the item in that case.
            let _ = self.assign(r);
        }
        Ok(())
    }

    /// The current per-server load cap.
    #[must_use]
    pub fn capacity(&self) -> usize {
        let servers = self.ring.server_count();
        if servers == 0 {
            return 0;
        }
        // Cap for the state *after* this assignment is made.
        let items = self.placements.len() + 1;
        (((items as f64) * (1.0 + self.epsilon)) / servers as f64).ceil() as usize
    }

    /// Assigns (or re-resolves) an item to a server under the load cap.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::EmptyPool`] when no servers have joined.
    pub fn assign(&mut self, request: RequestKey) -> Result<ServerId, TableError> {
        if let Some(&placed) = self.placements.get(&request) {
            return Ok(placed);
        }
        if self.ring.server_count() == 0 {
            return Err(TableError::EmptyPool);
        }
        let cap = self.capacity();
        // Start at the natural successor, then walk clockwise over the
        // *distinct servers* of the ring until one has spare capacity.
        let natural = self.ring.lookup(request)?;
        let order = self.clockwise_servers_from(natural);
        let target = order
            .into_iter()
            .find(|s| self.loads.get(s).copied().unwrap_or(0) < cap)
            .ok_or(TableError::CapacityExhausted {
                servers: self.ring.server_count(),
                capacity: cap,
            })?;
        self.placements.insert(request, target);
        *self.loads.entry(target).or_insert(0) += 1;
        Ok(target)
    }

    /// Releases a previously assigned item; returns its server if present.
    pub fn release(&mut self, request: RequestKey) -> Option<ServerId> {
        let server = self.placements.remove(&request)?;
        if let Some(load) = self.loads.get_mut(&server) {
            *load = load.saturating_sub(1);
        }
        Some(server)
    }

    /// Current per-server loads.
    #[must_use]
    pub fn loads(&self) -> &HashMap<ServerId, usize> {
        &self.loads
    }

    /// Number of live servers.
    #[must_use]
    pub fn server_count(&self) -> usize {
        self.ring.server_count()
    }

    /// Number of placed items.
    #[must_use]
    pub fn item_count(&self) -> usize {
        self.placements.len()
    }

    /// Distinct servers in clockwise ring order starting from `from`.
    fn clockwise_servers_from(&self, from: ServerId) -> Vec<ServerId> {
        let mut servers = self.ring.servers();
        // Order servers by their first ring position.
        let mut keyed: Vec<(u64, ServerId)> = servers
            .drain(..)
            .map(|s| {
                let mut buf = [0u8; 16];
                buf[..8].copy_from_slice(&s.to_bytes());
                // replica 0 position, matching ConsistentTable::server_points.
                (hdhash_hashfn::Hasher64::hash_bytes(&hdhash_hashfn::XxHash64::with_seed(0), &buf), s)
            })
            .collect();
        keyed.sort_unstable_by_key(|&(p, s)| (p, s.get()));
        let start = keyed.iter().position(|&(_, s)| s == from).unwrap_or(0);
        keyed.rotate_left(start);
        keyed.into_iter().map(|(_, s)| s).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(servers: u64, epsilon: f64) -> BoundedLoadTable {
        let mut t = BoundedLoadTable::new(epsilon);
        for i in 0..servers {
            t.join(ServerId::new(i)).expect("fresh server");
        }
        t
    }

    #[test]
    fn cap_is_never_exceeded() {
        let mut t = filled(8, 0.25);
        for k in 0..1000u64 {
            t.assign(RequestKey::new(k)).expect("capacity available");
        }
        let cap = (((1000f64) * 1.25) / 8.0).ceil() as usize + 1;
        for (&s, &load) in t.loads() {
            assert!(load <= cap, "{s} overloaded: {load} > {cap}");
        }
        assert_eq!(t.loads().values().sum::<usize>(), 1000);
        assert_eq!(t.item_count(), 1000);
    }

    #[test]
    fn bounded_is_tighter_than_plain_ring() {
        // Compare max loads: the cap must beat the plain ring's worst arc.
        let mut bounded = filled(8, 0.25);
        let mut plain = ConsistentTable::new();
        for i in 0..8 {
            plain.join(ServerId::new(i)).expect("fresh");
        }
        let mut plain_loads: HashMap<ServerId, usize> = HashMap::new();
        for k in 0..2000u64 {
            bounded.assign(RequestKey::new(k)).expect("capacity");
            *plain_loads
                .entry(plain.lookup(RequestKey::new(k)).expect("non-empty"))
                .or_insert(0) += 1;
        }
        let bounded_max = *bounded.loads().values().max().expect("non-empty");
        let plain_max = *plain_loads.values().max().expect("non-empty");
        assert!(
            bounded_max <= plain_max,
            "bounded {bounded_max} should not exceed plain {plain_max}"
        );
        assert!(bounded_max <= ((2000.0f64 * 1.25) / 8.0).ceil() as usize);
    }

    #[test]
    fn assignment_is_sticky() {
        let mut t = filled(4, 0.5);
        let first = t.assign(RequestKey::new(7)).expect("capacity");
        for _ in 0..10 {
            assert_eq!(t.assign(RequestKey::new(7)).expect("capacity"), first);
        }
        assert_eq!(t.item_count(), 1);
    }

    #[test]
    fn release_frees_capacity() {
        let mut t = filled(2, 0.01);
        for k in 0..100u64 {
            t.assign(RequestKey::new(k)).expect("capacity");
        }
        let server = t.release(RequestKey::new(0)).expect("was placed");
        assert!(t.loads()[&server] < 100);
        assert_eq!(t.release(RequestKey::new(0)), None);
        assert_eq!(t.item_count(), 99);
    }

    #[test]
    fn leave_reassigns_orphans() {
        let mut t = filled(4, 0.5);
        for k in 0..200u64 {
            t.assign(RequestKey::new(k)).expect("capacity");
        }
        t.leave(ServerId::new(2)).expect("present");
        assert_eq!(t.server_count(), 3);
        assert_eq!(t.item_count(), 200, "all items must survive a leave");
        assert!(t.loads().values().sum::<usize>() == 200);
        assert!(!t.loads().contains_key(&ServerId::new(2)));
    }

    #[test]
    fn empty_pool_errors() {
        let mut t = BoundedLoadTable::new(0.5);
        assert_eq!(t.assign(RequestKey::new(1)), Err(TableError::EmptyPool));
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn non_positive_epsilon_panics() {
        let _ = BoundedLoadTable::new(0.0);
    }
}
