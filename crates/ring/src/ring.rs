//! The consistent hashing table over a treap-backed ring.

use hdhash_hashfn::{Hasher64, SplitMix64, XxHash64};
use hdhash_table::{DynamicHashTable, NoisyTable, RequestKey, ServerId, TableError};

use crate::treap::Treap;

/// Consistent hashing on the `u64` circle with `O(log n)` lookups.
///
/// Servers are hashed to points on the circle (the fixed-point analogue of
/// the paper's unit interval `[0, 1]`); a request is assigned to the first
/// server position that succeeds its own hash clockwise. The ring is
/// stored as a balanced search tree ([`Treap`]) — the classical `std::map`
/// style implementation behind the paper's `O(log n)` lookup bound.
///
/// ## Virtual nodes
///
/// With `vnodes > 1`, each server owns several ring positions (derived by
/// re-hashing `(server, replica)`), which tightens the load distribution
/// at the cost of a larger ring. The paper's setup corresponds to one node
/// per server (the default); the `ablation_vnodes` bench explores the
/// trade-off.
///
/// ## Noise model
///
/// The vulnerable state surface is the search structure itself: per ring
/// node, the stored 64-bit position and the two 32-bit child links. A
/// corrupted *position* relocates one virtual node (local damage, like
/// rendezvous hashing); a corrupted *child link* detaches or misroutes an
/// entire subtree, so a single bit error can move ~`2·ln n / n` of all
/// requests. This pointer amplification is why consistent hashing degrades
/// far faster than rendezvous hashing in the paper's Figure 5.
///
/// # Examples
///
/// ```
/// use hdhash_ring::ConsistentTable;
/// use hdhash_table::{DynamicHashTable, RequestKey, ServerId};
///
/// let mut ring = ConsistentTable::new();
/// for id in 0..4 {
///     ring.join(ServerId::new(id))?;
/// }
/// let owner = ring.lookup(RequestKey::new(123))?;
/// assert!(ring.contains(owner));
/// # Ok::<(), hdhash_table::TableError>(())
/// ```
pub struct ConsistentTable {
    hasher: Box<dyn Hasher64>,
    vnodes: usize,
    /// Clean membership in join order.
    members: Vec<ServerId>,
    /// The stored ring: a treap over `(position, server)`; its node bits
    /// are what noise corrupts.
    ring: Treap,
}

impl ConsistentTable {
    /// Creates an empty ring with the default hash function (XXH64) and a
    /// single node per server, matching the paper's setup.
    #[must_use]
    pub fn new() -> Self {
        Self::with_hasher(Box::new(XxHash64::with_seed(0)))
    }

    /// Creates an empty ring with an explicit hash function.
    #[must_use]
    pub fn with_hasher(hasher: Box<dyn Hasher64>) -> Self {
        Self { hasher, vnodes: 1, members: Vec::new(), ring: Treap::new() }
    }

    /// Creates an empty ring with `vnodes` virtual nodes per server.
    ///
    /// # Panics
    ///
    /// Panics if `vnodes == 0`.
    #[must_use]
    pub fn with_vnodes(vnodes: usize) -> Self {
        assert!(vnodes > 0, "at least one virtual node per server is required");
        let mut t = Self::new();
        t.vnodes = vnodes;
        t
    }

    /// Number of virtual nodes per server.
    #[must_use]
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// The ring position of a request's hash.
    pub(crate) fn request_point(&self, request: RequestKey) -> u64 {
        self.hasher.hash_bytes(&request.to_bytes())
    }

    /// The ring positions of a server's virtual nodes.
    pub(crate) fn server_points(&self, server: ServerId) -> Vec<u64> {
        (0..self.vnodes)
            .map(|replica| {
                let mut buf = [0u8; 16];
                buf[..8].copy_from_slice(&server.to_bytes());
                buf[8..].copy_from_slice(&(replica as u64).to_le_bytes());
                self.hasher.hash_bytes(&buf)
            })
            .collect()
    }

    /// All clean `(position, server)` points, sorted (test/ablation aid).
    #[must_use]
    pub fn clean_points(&self) -> Vec<(u64, ServerId)> {
        let mut points: Vec<(u64, ServerId)> = self
            .members
            .iter()
            .flat_map(|&s| self.server_points(s).into_iter().map(move |p| (p, s)))
            .collect();
        points.sort_unstable_by_key(|&(p, s)| (p, s.get()));
        points
    }

    fn rebuild(&mut self) {
        let mut ring = Treap::new();
        for &server in &self.members {
            for p in self.server_points(server) {
                ring.insert(p, server);
            }
        }
        self.ring = ring;
    }
}

impl Default for ConsistentTable {
    fn default() -> Self {
        Self::new()
    }
}

impl core::fmt::Debug for ConsistentTable {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ConsistentTable")
            .field("servers", &self.members.len())
            .field("vnodes", &self.vnodes)
            .field("ring_points", &self.ring.len())
            .finish()
    }
}

impl DynamicHashTable for ConsistentTable {
    fn join(&mut self, server: ServerId) -> Result<(), TableError> {
        if self.members.contains(&server) {
            return Err(TableError::ServerAlreadyPresent(server));
        }
        self.members.push(server);
        // The treap is history independent, so incremental inserts yield
        // exactly the rebuild's tree.
        for p in self.server_points(server) {
            self.ring.insert(p, server);
        }
        Ok(())
    }

    fn leave(&mut self, server: ServerId) -> Result<(), TableError> {
        let idx = self
            .members
            .iter()
            .position(|&s| s == server)
            .ok_or(TableError::ServerNotFound(server))?;
        self.members.remove(idx);
        self.rebuild();
        Ok(())
    }

    fn lookup(&self, request: RequestKey) -> Result<ServerId, TableError> {
        self.ring.successor(self.request_point(request)).ok_or(TableError::EmptyPool)
    }

    fn server_count(&self) -> usize {
        self.members.len()
    }

    fn servers(&self) -> Vec<ServerId> {
        self.members.clone()
    }

    fn algorithm_name(&self) -> &'static str {
        "consistent"
    }
}

impl NoisyTable for ConsistentTable {
    fn inject_bit_flips(&mut self, count: usize, seed: u64) -> usize {
        if self.ring.is_empty() {
            return 0;
        }
        let mut rng = SplitMix64::new(seed);
        let surface = self.ring.surface_bits() as u64;
        for _ in 0..count {
            self.ring.flip_surface_bit(rng.next_below(surface) as usize);
        }
        count
    }

    fn inject_burst(&mut self, length: usize, seed: u64) -> usize {
        if self.ring.is_empty() || length == 0 {
            return 0;
        }
        let mut rng = SplitMix64::new(seed);
        let surface = self.ring.surface_bits();
        let start = rng.next_below(surface as u64) as usize;
        let end = (start + length).min(surface);
        for bit in start..end {
            self.ring.flip_surface_bit(bit);
        }
        end - start
    }

    fn clear_noise(&mut self) {
        self.rebuild();
    }

    fn noise_surface_bits(&self) -> usize {
        self.ring.surface_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdhash_table::{remap_fraction, Assignment};

    fn filled(n: u64) -> ConsistentTable {
        let mut t = ConsistentTable::new();
        for i in 0..n {
            t.join(ServerId::new(i)).expect("fresh server");
        }
        t
    }

    fn keys(n: u64) -> Vec<RequestKey> {
        (0..n).map(RequestKey::new).collect()
    }

    #[test]
    fn lifecycle_and_errors() {
        let mut t = ConsistentTable::new();
        assert_eq!(t.lookup(RequestKey::new(0)), Err(TableError::EmptyPool));
        t.join(ServerId::new(1)).expect("fresh");
        assert_eq!(
            t.join(ServerId::new(1)),
            Err(TableError::ServerAlreadyPresent(ServerId::new(1)))
        );
        assert_eq!(t.lookup(RequestKey::new(0)).expect("non-empty"), ServerId::new(1));
        t.leave(ServerId::new(1)).expect("present");
        assert_eq!(t.leave(ServerId::new(1)), Err(TableError::ServerNotFound(ServerId::new(1))));
    }

    #[test]
    fn single_server_owns_everything() {
        let t = filled(1);
        for k in 0..200u64 {
            assert_eq!(t.lookup(RequestKey::new(k)).expect("non-empty"), ServerId::new(0));
        }
    }

    #[test]
    fn lookup_matches_linear_scan_reference() {
        // The treap successor must agree with the definitional "smallest
        // position >= point, else wrap to global minimum" scan.
        let t = filled(32);
        let points = t.clean_points();
        for k in 0..2000u64 {
            let point = t.request_point(RequestKey::new(k));
            let reference = points
                .iter()
                .find(|&&(p, _)| p >= point)
                .or_else(|| points.first())
                .map(|&(_, s)| s)
                .expect("non-empty");
            assert_eq!(t.lookup(RequestKey::new(k)).expect("non-empty"), reference);
        }
    }

    #[test]
    fn minimal_disruption_on_leave() {
        // Only keys owned by the departing server may move.
        let mut t = filled(64);
        let before = Assignment::capture(&t, keys(5000)).expect("non-empty");
        let victim = ServerId::new(13);
        t.leave(victim).expect("present");
        let after = Assignment::capture(&t, keys(5000)).expect("non-empty");
        for (r, s_before) in before.iter() {
            if s_before != victim {
                assert_eq!(after.server_of(r), Some(s_before), "{r} moved without cause");
            }
        }
    }

    #[test]
    fn minimal_disruption_on_join() {
        // Keys either stay or move to the newcomer — never between elders.
        let mut t = filled(64);
        let before = Assignment::capture(&t, keys(5000)).expect("non-empty");
        let newcomer = ServerId::new(999);
        t.join(newcomer).expect("fresh");
        let after = Assignment::capture(&t, keys(5000)).expect("non-empty");
        for (r, s_before) in before.iter() {
            let s_after = after.server_of(r).expect("captured");
            assert!(
                s_after == s_before || s_after == newcomer,
                "{r} moved {s_before} -> {s_after}, not to newcomer"
            );
        }
        // And the expected moved fraction is ~1/(n+1).
        let moved = remap_fraction(&before, &after);
        assert!(moved < 0.10, "join moved too much: {moved}");
    }

    #[test]
    fn vnodes_tighten_distribution() {
        let spread = |t: &ConsistentTable| {
            let loads = Assignment::capture(t, keys(20_000))
                .expect("non-empty")
                .load_by_server();
            let max = *loads.values().max().expect("non-empty") as f64;
            let min = *loads.values().min().unwrap_or(&0) as f64;
            max / min.max(1.0)
        };
        let mut plain = ConsistentTable::new();
        let mut virt = ConsistentTable::with_vnodes(64);
        for i in 0..16 {
            plain.join(ServerId::new(i)).expect("fresh");
            virt.join(ServerId::new(i)).expect("fresh");
        }
        assert_eq!(virt.vnodes(), 64);
        assert!(spread(&virt) < spread(&plain), "virtual nodes should even the load");
    }

    #[test]
    #[should_panic(expected = "at least one virtual node")]
    fn zero_vnodes_panics() {
        let _ = ConsistentTable::with_vnodes(0);
    }

    #[test]
    fn noise_corrupts_and_clear_restores() {
        let mut t = filled(128);
        let reference = Assignment::capture(&t, keys(3000)).expect("non-empty");
        t.inject_bit_flips(10, 99);
        let noisy = Assignment::capture(&t, keys(3000)).expect("non-empty");
        // The paper's central negative result for consistent hashing: bit
        // errors in the ring cause mismatches.
        assert!(remap_fraction(&reference, &noisy) > 0.0, "flips must corrupt something");
        t.clear_noise();
        let restored = Assignment::capture(&t, keys(3000)).expect("non-empty");
        assert_eq!(remap_fraction(&reference, &restored), 0.0);
    }

    #[test]
    fn noise_damage_exceeds_rendezvous_scale() {
        // Pointer amplification: averaged over seeds, 10 bit errors should
        // move clearly more than the ~2·flips/n arc damage a positional
        // model would predict (the paper's Figure 5 gap).
        let t = filled(512);
        let reference = Assignment::capture(&t, keys(4000)).expect("non-empty");
        let mut total = 0.0;
        let seeds = 10;
        for seed in 0..seeds {
            let mut noisy_table = filled(512);
            noisy_table.inject_bit_flips(10, seed);
            let noisy = Assignment::capture(&noisy_table, keys(4000)).expect("non-empty");
            total += remap_fraction(&reference, &noisy);
        }
        let mean = total / seeds as f64;
        let positional_scale = 2.0 * 10.0 / 512.0;
        assert!(
            mean > positional_scale,
            "expected pointer amplification: mean {mean} vs positional {positional_scale}"
        );
    }

    #[test]
    fn noise_surface_accounting() {
        let t = filled(8);
        assert_eq!(t.noise_surface_bits(), 8 * crate::treap::NODE_SURFACE_BITS);
        let mut empty = ConsistentTable::new();
        assert_eq!(empty.inject_bit_flips(4, 0), 0);
        assert_eq!(empty.inject_burst(4, 0), 0);
        let mut t = filled(2);
        assert_eq!(t.inject_burst(0, 0), 0);
        assert!(t.inject_burst(10, 3) <= 10);
    }

    #[test]
    fn incremental_join_equals_rebuild() {
        let mut incremental = ConsistentTable::new();
        for i in 0..40 {
            incremental.join(ServerId::new(i * 7 + 1)).expect("fresh");
        }
        let mut rebuilt = ConsistentTable::new();
        rebuilt.members = incremental.members.clone();
        rebuilt.rebuild();
        assert_eq!(
            incremental.ring.entries_in_order(),
            rebuilt.ring.entries_in_order()
        );
        for k in 0..1000u64 {
            assert_eq!(
                incremental.lookup(RequestKey::new(k)).expect("non-empty"),
                rebuilt.lookup(RequestKey::new(k)).expect("non-empty")
            );
        }
    }

    #[test]
    fn debug_output() {
        let t = filled(3);
        let s = format!("{t:?}");
        assert!(s.contains("servers: 3") && s.contains("vnodes: 1"));
    }
}
