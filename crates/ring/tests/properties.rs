//! Property-based tests for the consistent hashing substrate.

use hdhash_ring::jump::jump_hash;
use hdhash_ring::{ConsistentTable, JumpTable, Treap};
use hdhash_table::{DynamicHashTable, NoisyTable, RequestKey, ServerId};
use proptest::prelude::*;

proptest! {
    /// The treap is history independent: any insertion order of the same
    /// key set produces the same successor function.
    #[test]
    fn treap_history_independence(
        mut positions in proptest::collection::hash_set(any::<u64>(), 1..64),
        probes in proptest::collection::vec(any::<u64>(), 1..32),
    ) {
        let keys: Vec<(u64, ServerId)> = positions
            .drain()
            .enumerate()
            .map(|(i, p)| (p, ServerId::new(i as u64)))
            .collect();
        let mut forward = Treap::new();
        for &(p, s) in &keys {
            forward.insert(p, s);
        }
        let mut backward = Treap::new();
        for &(p, s) in keys.iter().rev() {
            backward.insert(p, s);
        }
        prop_assert!(forward.is_well_formed());
        prop_assert!(backward.is_well_formed());
        for &q in &probes {
            prop_assert_eq!(forward.successor(q), backward.successor(q));
        }
    }

    /// Treap successor agrees with the sorted-scan definition.
    #[test]
    fn treap_successor_reference(
        positions in proptest::collection::hash_set(any::<u64>(), 1..64),
        probes in proptest::collection::vec(any::<u64>(), 1..32),
    ) {
        let mut treap = Treap::new();
        let mut sorted: Vec<(u64, u64)> = Vec::new();
        for (i, p) in positions.into_iter().enumerate() {
            treap.insert(p, ServerId::new(i as u64));
            sorted.push((p, i as u64));
        }
        sorted.sort_unstable();
        for &q in &probes {
            let reference = sorted
                .iter()
                .find(|&&(p, _)| p >= q)
                .or_else(|| sorted.first())
                .map(|&(_, s)| ServerId::new(s));
            prop_assert_eq!(treap.successor(q), reference);
        }
    }

    /// Corrupted treaps always terminate and never panic.
    #[test]
    fn treap_corruption_totality(
        seed in any::<u64>(),
        flips in proptest::collection::vec(any::<usize>(), 1..64),
        probes in proptest::collection::vec(any::<u64>(), 1..16),
    ) {
        let mut rng = hdhash_hashfn::SplitMix64::new(seed);
        let mut treap = Treap::new();
        for i in 0..32u64 {
            treap.insert(rng.next_u64(), ServerId::new(i));
        }
        let surface = treap.surface_bits();
        for &f in &flips {
            treap.flip_surface_bit(f % surface);
        }
        for &q in &probes {
            let _ = treap.successor(q); // must not hang or panic
        }
    }

    /// Jump hash stability: adding a bucket either keeps a key in place or
    /// moves it to the new bucket — for arbitrary keys and sizes.
    #[test]
    fn jump_hash_stability(key in any::<u64>(), n in 1u32..512) {
        let before = jump_hash(key, n);
        let after = jump_hash(key, n + 1);
        prop_assert!(before < n);
        prop_assert!(after == before || after == n);
    }

    /// ConsistentTable serves only live servers across arbitrary churn.
    #[test]
    fn ring_lookup_total_under_churn(
        ops in proptest::collection::vec((any::<bool>(), 0u64..32), 1..40),
        probes in proptest::collection::vec(any::<u64>(), 1..16),
    ) {
        let mut table = ConsistentTable::new();
        for &(join, id) in &ops {
            if join {
                let _ = table.join(ServerId::new(id));
            } else {
                let _ = table.leave(ServerId::new(id));
            }
        }
        for &k in &probes {
            match table.lookup(RequestKey::new(k)) {
                Ok(server) => prop_assert!(table.contains(server)),
                Err(_) => prop_assert_eq!(table.server_count(), 0),
            }
        }
    }

    /// JumpTable noise + clear round-trips for arbitrary flip patterns.
    #[test]
    fn jump_table_noise_roundtrip(flips in 1usize..64, seed in any::<u64>()) {
        let mut table = JumpTable::new();
        for i in 0..16u64 {
            table.join(ServerId::new(i)).expect("fresh");
        }
        let before: Vec<ServerId> = (0..200u64)
            .map(|k| table.lookup(RequestKey::new(k)).expect("non-empty"))
            .collect();
        table.inject_bit_flips(flips, seed);
        table.clear_noise();
        let after: Vec<ServerId> = (0..200u64)
            .map(|k| table.lookup(RequestKey::new(k)).expect("non-empty"))
            .collect();
        prop_assert_eq!(before, after);
    }
}
