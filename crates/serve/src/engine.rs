//! The serving engine: scheduler substrate, coalescing workers, shard
//! fan-out.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use hdhash_core::HdHashTable;
use hdhash_hdc::{Hypervector, SignatureDelta};
use hdhash_obs::{SpanKind, Tracer};
use hdhash_table::{DynamicHashTable, RequestKey, ServerId, TableError};

use crate::config::ServeConfig;
use crate::metrics::{EngineMetrics, ShardMetrics};
use crate::request::{LookupJob, ServeResponse, Ticket};
use crate::scheduler::{self, Scheduler};
use crate::shard::{Shard, ShardReceipt, ShardSnapshot};
use crate::ServeError;

/// The shared state workers and clients operate on.
#[derive(Debug)]
pub(crate) struct EngineCore {
    pub(crate) config: ServeConfig,
    /// The scheduling substrate jobs park in between submit and pickup
    /// (shared queue or work-stealing deques, per
    /// [`ServeConfig::scheduler`]); its submission side is bounded — the
    /// backpressure surface.
    pub(crate) scheduler: Box<dyn Scheduler>,
    /// Parking for idle workers. The lock also brackets the
    /// submit/shutdown race: both the shutdown flag flip and every
    /// successful push happen under it, so a submission is either rejected
    /// with [`ServeError::ShuttingDown`] or guaranteed to be served.
    pub(crate) park: Mutex<()>,
    pub(crate) ready: Condvar,
    shards: Vec<Shard>,
    metrics: Vec<ShardMetrics>,
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    /// Worker panics caught and contained (batches backfilled with
    /// [`TableError::WorkerPanicked`] instead of hanging their tickets).
    panics_contained: AtomicU64,
    /// Fast-path flag for the fault-injection hook: workers only take the
    /// `panic_key` lock while a test has armed an injection.
    panic_armed: AtomicBool,
    /// The key whose batch the next serving worker panics on — the chaos
    /// test hook behind [`ServeEngine::inject_worker_panic`].
    panic_key: Mutex<Option<RequestKey>>,
    pub(crate) shutdown: AtomicBool,
    /// Request-path trace collector (per [`ServeConfig::trace`]; a cheap
    /// no-op when tracing is disabled).
    pub(crate) tracer: Arc<Tracer>,
}

impl EngineCore {
    fn new(config: ServeConfig) -> Result<Self, ServeError> {
        config.validate()?;
        let mut shards = Vec::with_capacity(config.shards);
        for i in 0..config.shards {
            let table = HdHashTable::builder()
                .dimension(config.dimension)
                .codebook_size(config.codebook_size)
                .seed(config.seed.wrapping_add(i as u64))
                .engine_options(config.engine)
                .build()
                .map_err(|e| ServeError::InvalidConfig(e.to_string()))?;
            shards.push(Shard::new(i, table));
        }
        let tracer = Arc::new(Tracer::new(config.trace));
        Ok(Self {
            scheduler: scheduler::build(&config, Arc::clone(&tracer)),
            tracer,
            park: Mutex::new(()),
            ready: Condvar::new(),
            metrics: (0..config.shards).map(|_| ShardMetrics::default()).collect(),
            shards,
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            panics_contained: AtomicU64::new(0),
            panic_armed: AtomicBool::new(false),
            panic_key: Mutex::new(None),
            shutdown: AtomicBool::new(false),
            config,
        })
    }

    /// Which shard a key belongs to: a strong 64-bit mix over the key, mod
    /// the shard count, so the partition is stable and load-balanced.
    fn shard_of(&self, key: RequestKey) -> usize {
        (hdhash_hashfn::mix64(key.get()) % self.config.shards as u64) as usize
    }

    fn submit(&self, key: RequestKey) -> Result<Ticket, ServeError> {
        let (mut job, ticket) = LookupJob::new(key, self.shard_of(key));
        job.trace_id = self.tracer.sample();
        if let Some(id) = job.trace_id {
            self.tracer.record(SpanKind::Submit, id, 0, job.shard as u64, 0);
        }
        {
            let _guard = self.park.lock();
            if self.shutdown.load(Ordering::Acquire) {
                return Err(ServeError::ShuttingDown);
            }
            if self.scheduler.submit(job).is_err() {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::QueueFull);
            }
            self.ready.notify_one();
        }
        self.submitted.fetch_add(1, Ordering::Relaxed);
        Ok(ticket)
    }

    /// Serves one coalesced batch: jobs are grouped per shard and each
    /// group resolved through a single epoch snapshot with one
    /// `lookup_batch` call — the zero-alloc batched scan under the hood.
    /// `keys`/`latencies` are caller-owned scratch so steady-state serving
    /// allocates only the per-batch result vector.
    pub(crate) fn serve_batch(
        &self,
        worker: usize,
        batch: &mut Vec<LookupJob>,
        keys: &mut Vec<RequestKey>,
        latencies: &mut Vec<Duration>,
    ) {
        batch.sort_by_key(|job| job.shard);
        let mut start = 0;
        while start < batch.len() {
            let shard_idx = batch[start].shard;
            let mut end = start + 1;
            while end < batch.len() && batch[end].shard == shard_idx {
                end += 1;
            }
            let jobs = &batch[start..end];
            self.maybe_inject_panic(jobs);
            // Trace work is gated on the group actually containing a
            // sampled job, so at production sampling rates most groups pay
            // one `any` scan over a short slice and nothing else (and with
            // tracing disabled, one branch).
            let group_traced =
                self.tracer.is_enabled() && jobs.iter().any(|job| job.trace_id.is_some());
            let group_started = if group_traced { Some(Instant::now()) } else { None };
            // One snapshot per shard-group: every response in the group is
            // computed against a single consistent epoch.
            let snapshot = self.shards[shard_idx].load();
            keys.clear();
            keys.extend(jobs.iter().map(|job| job.key));
            let results = snapshot.lookup_batch(keys);
            latencies.clear();
            let mut failures = 0;
            for (job, result) in jobs.iter().zip(results) {
                if result.is_err() {
                    failures += 1;
                }
                let latency = job.enqueued.elapsed();
                latencies.push(latency);
                job.cell.fill(ServeResponse {
                    result,
                    shard: shard_idx,
                    epoch: snapshot.epoch,
                    latency,
                });
                if let Some(id) = job.trace_id {
                    self.tracer.record(
                        SpanKind::ResponseFill,
                        id,
                        worker as u32,
                        shard_idx as u64,
                        latency.as_micros() as u64,
                    );
                }
            }
            if let Some(started) = group_started {
                let id = jobs.iter().find_map(|job| job.trace_id).unwrap_or(0);
                self.tracer.record_span(
                    SpanKind::BatchExec,
                    id,
                    worker as u32,
                    shard_idx as u64,
                    jobs.len() as u64,
                    started,
                );
            }
            self.metrics[shard_idx].record_batch(jobs.len(), failures, latencies);
            self.completed.fetch_add(jobs.len() as u64, Ordering::Relaxed);
            start = end;
        }
        batch.clear();
    }

    /// The fault-injection hook: panics before the group is served when a
    /// test armed this batch's key via
    /// [`ServeEngine::inject_worker_panic`]. Firing disarms the hook, so
    /// exactly one panic is injected per arm. Panicking *before* any cell
    /// fill keeps the completion accounting exact — containment backfills
    /// (and counts) every job of the abandoned batch.
    fn maybe_inject_panic(&self, jobs: &[LookupJob]) {
        if !self.panic_armed.load(Ordering::Acquire) {
            return;
        }
        let mut armed = self.panic_key.lock();
        if let Some(key) = *armed {
            if jobs.iter().any(|job| job.key == key) {
                *armed = None;
                self.panic_armed.store(false, Ordering::Release);
                drop(armed);
                panic!("injected worker panic on {key:?}");
            }
        }
    }

    /// Panic containment: backfills every still-pending ticket of an
    /// abandoned batch with [`TableError::WorkerPanicked`], so a panicking
    /// lookup costs its batch an error response instead of hung clients.
    /// Cells the worker already filled are left untouched.
    pub(crate) fn contain_panic(&self, batch: &mut Vec<LookupJob>) {
        let mut backfilled = 0u64;
        for job in batch.iter() {
            let filled = job.cell.fill_if_pending(ServeResponse {
                result: Err(TableError::WorkerPanicked),
                // No snapshot produced this verdict; report the shard's
                // currently published epoch for diagnostics.
                shard: job.shard,
                epoch: self.shards[job.shard].load().epoch,
                latency: job.enqueued.elapsed(),
            });
            if filled {
                backfilled += 1;
            }
        }
        self.completed.fetch_add(backfilled, Ordering::Relaxed);
        self.panics_contained.fetch_add(1, Ordering::Relaxed);
        batch.clear();
    }
}

/// The sharded, batch-coalescing serving engine.
///
/// See the [crate docs](crate) for the architecture. Construction spawns
/// the worker threads; [`shutdown`](Self::shutdown) (or `Drop`) stops
/// them, serving every already-accepted request before returning.
///
/// # Examples
///
/// ```
/// use hdhash_serve::{ServeConfig, ServeEngine};
/// use hdhash_table::{RequestKey, ServerId};
///
/// let mut engine = ServeEngine::new(ServeConfig {
///     shards: 2,
///     workers: 1,
///     dimension: 2048,
///     codebook_size: 64,
///     ..ServeConfig::default()
/// })?;
/// for id in 0..4 {
///     engine.join(ServerId::new(id))?;
/// }
/// let response = engine.submit(RequestKey::new(7))?.wait();
/// let server = response.result.expect("pool is non-empty");
/// assert!(engine.snapshots()[response.shard].contains(server));
/// engine.shutdown();
/// # Ok::<(), hdhash_serve::ServeError>(())
/// ```
#[derive(Debug)]
pub struct ServeEngine {
    core: Arc<EngineCore>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServeEngine {
    /// Builds the shards and spawns the worker pool.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for a rejected configuration.
    pub fn new(config: ServeConfig) -> Result<Self, ServeError> {
        let core = Arc::new(EngineCore::new(config)?);
        let workers = (0..config.workers)
            .map(|w| {
                let core = Arc::clone(&core);
                std::thread::Builder::new()
                    .name(format!("hdhash-serve-{w}"))
                    .spawn(move || scheduler::worker_loop(&core, w))
                    .expect("spawn serve worker")
            })
            .collect();
        Ok(Self { core, workers })
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &ServeConfig {
        &self.core.config
    }

    /// Submits a lookup. Returns a [`Ticket`] redeemable for the
    /// response, or rejects with [`ServeError::QueueFull`] (backpressure)
    /// or [`ServeError::ShuttingDown`].
    ///
    /// # Errors
    ///
    /// See above; no other failure modes.
    pub fn submit(&self, key: RequestKey) -> Result<Ticket, ServeError> {
        self.core.submit(key)
    }

    /// Joins `server` on every shard, each through its epoch path.
    ///
    /// # Errors
    ///
    /// Returns the first shard failure (e.g.
    /// [`TableError::ServerAlreadyPresent`]); shards reconfigured before
    /// the failure keep their new epoch — shards are independent tables.
    pub fn join(&self, server: ServerId) -> Result<Vec<ShardReceipt>, ServeError> {
        self.reconfigure_all(|table| table.join(server))
    }

    /// Removes `server` from every shard, each through its epoch path.
    ///
    /// # Errors
    ///
    /// Returns the first shard failure
    /// ([`TableError::ServerNotFound`]); prior shards keep their new epoch.
    pub fn leave(&self, server: ServerId) -> Result<Vec<ShardReceipt>, ServeError> {
        self.reconfigure_all(|table| table.leave(server))
    }

    fn reconfigure_all<F>(&self, op: F) -> Result<Vec<ShardReceipt>, ServeError>
    where
        F: Fn(&mut HdHashTable) -> Result<(), TableError>,
    {
        let mut receipts = Vec::with_capacity(self.core.shards.len());
        for shard in &self.core.shards {
            receipts.push(shard.reconfigure(&op)?);
        }
        Ok(receipts)
    }

    /// The currently published snapshot of every shard (epoch, members,
    /// signature) — cheap `Arc` clones.
    #[must_use]
    pub fn snapshots(&self) -> Vec<Arc<ShardSnapshot>> {
        self.core.shards.iter().map(Shard::load).collect()
    }

    /// Number of shards the engine fronts.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.core.shards.len()
    }

    /// Every shard's published membership signature — the payload a
    /// gossip round adverts to peer replicas. Shards are seeded
    /// independently, so each signature fingerprints the membership
    /// through a different codebook geometry; comparing all of them (any
    /// disagreeing shard ⇒ diverged) defeats the per-codebook slot
    /// collisions that could mask a divergence in a single signature.
    #[must_use]
    pub fn shard_signatures(&self) -> Vec<Hypervector> {
        self.core.shards.iter().map(|s| s.load().signature.clone()).collect()
    }

    /// Drives `shard`'s membership to exactly `target` through the shadow
    /// → epoch-publish path — the anti-entropy application hook. Readers
    /// never block; a target the shard already matches publishes nothing
    /// (`Ok(None)`), so repeated reconciliation is idempotent and burns no
    /// epochs.
    ///
    /// # Errors
    ///
    /// [`ServeError::Table`] when the moves fail (only capacity
    /// exhaustion is reachable).
    ///
    /// # Panics
    ///
    /// Panics if `shard >= self.shard_count()`.
    pub fn reconcile_shard(
        &self,
        shard: usize,
        target: &[ServerId],
    ) -> Result<Option<ShardReceipt>, ServeError> {
        Ok(self.core.shards[shard].reconcile(target)?)
    }

    /// Anti-entropy self-check: per shard, the signature delta between the
    /// shadow table and the published snapshot. All-zero between
    /// reconfigurations; a diverged entry means a change was applied but
    /// its publication was lost.
    #[must_use]
    pub fn shard_divergence(&self, threshold: usize) -> Vec<SignatureDelta> {
        self.core.shards.iter().map(|s| s.pending_divergence(threshold)).collect()
    }

    /// Point-in-time engine and per-shard metrics.
    #[must_use]
    pub fn metrics(&self) -> EngineMetrics {
        let shards = self
            .core
            .shards
            .iter()
            .zip(&self.core.metrics)
            .map(|(shard, metrics)| {
                let snap = shard.load();
                metrics.snapshot(snap.shard, snap.epoch, snap.members.len())
            })
            .collect();
        EngineMetrics {
            scheduler: self.core.scheduler.name(),
            submitted: self.core.submitted.load(Ordering::Relaxed),
            rejected: self.core.rejected.load(Ordering::Relaxed),
            completed: self.core.completed.load(Ordering::Relaxed),
            panics_contained: self.core.panics_contained.load(Ordering::Relaxed),
            queue_depth: self.core.scheduler.depth(),
            shards,
        }
    }

    /// The engine's request-path tracer. Drain it for JSONL / Chrome
    /// trace export, or read [`Tracer::stats`] for sampling and overflow
    /// accounting. Shared with the workers — cheap `Arc` clone.
    #[must_use]
    pub fn tracer(&self) -> Arc<Tracer> {
        Arc::clone(&self.core.tracer)
    }

    /// Arms the fault-injection hook: the next worker batch containing
    /// `key` panics before serving any of its jobs. The panic is caught by
    /// the worker loop, every ticket of the abandoned batch resolves with
    /// [`TableError::WorkerPanicked`], and the worker keeps serving —
    /// [`EngineMetrics::panics_contained`] counts the event. Test-facing,
    /// but kept in the public surface so integration suites (and the chaos
    /// harness) can exercise containment on a real engine.
    pub fn inject_worker_panic(&self, key: RequestKey) {
        *self.core.panic_key.lock() = Some(key);
        self.core.panic_armed.store(true, Ordering::Release);
    }

    /// Stops accepting requests, joins the workers, and serves any
    /// still-queued jobs inline, so no accepted ticket is ever left
    /// hanging. Idempotent; also invoked by `Drop`.
    pub fn shutdown(&mut self) {
        {
            let _guard = self.core.park.lock();
            self.core.shutdown.store(true, Ordering::Release);
            self.core.ready.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Stragglers: accepted before the flag flipped, not yet picked up
        // — including jobs parked in work-stealing local deques.
        let mut batch = Vec::new();
        self.core.scheduler.drain_into(&mut batch);
        if !batch.is_empty() {
            let (mut keys, mut latencies) = (Vec::new(), Vec::new());
            // The drain runs inline on the caller's thread; report it on
            // the lane one past the last worker.
            self.core.serve_batch(
                self.core.config.workers,
                &mut batch,
                &mut keys,
                &mut latencies,
            );
        }
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::config::SchedulerKind;

    fn test_config() -> ServeConfig {
        ServeConfig {
            shards: 3,
            workers: 2,
            batch_capacity: 16,
            queue_capacity: 256,
            dimension: 2048,
            codebook_size: 64,
            seed: 42,
            scheduler: SchedulerKind::SharedQueue,
            engine: Default::default(),
            trace: hdhash_obs::TraceConfig::disabled(),
        }
    }

    #[test]
    fn serves_lookups_across_shards() {
        // The serving contract holds under both scheduling substrates.
        for kind in [SchedulerKind::SharedQueue, SchedulerKind::WorkStealing] {
            let config = ServeConfig { scheduler: kind, ..test_config() };
            let mut engine = ServeEngine::new(config).expect("valid config");
            for id in 0..12 {
                engine.join(ServerId::new(id)).expect("fresh server");
            }
            let snapshots = engine.snapshots();
            let tickets: Vec<_> = (0..200u64)
                .map(|k| (k, engine.submit(RequestKey::new(k)).expect("accepted")))
                .collect();
            let mut shards_hit = std::collections::HashSet::new();
            for (k, ticket) in tickets {
                let response = ticket.wait();
                shards_hit.insert(response.shard);
                // Deterministic: the response equals a direct lookup
                // against the snapshot of the epoch that served it (static
                // membership, so that's the current snapshot).
                assert_eq!(response.epoch, snapshots[response.shard].epoch);
                assert_eq!(
                    response.result,
                    snapshots[response.shard].lookup(RequestKey::new(k)),
                    "key {k} ({kind:?})"
                );
                let server = response.result.expect("non-empty pool");
                assert!(snapshots[response.shard].contains(server));
            }
            assert_eq!(shards_hit.len(), 3, "keys must spread over all shards");
            // Metrics are published after the response cells are filled;
            // read them only once the workers have quiesced.
            engine.shutdown();
            let metrics = engine.metrics();
            assert_eq!(metrics.scheduler, engine.config().scheduler.name());
            assert_eq!(metrics.submitted, 200);
            assert_eq!(metrics.completed, 200);
            assert_eq!(metrics.rejected, 0);
            assert_eq!(metrics.shards.iter().map(|s| s.served).sum::<u64>(), 200);
            assert!(metrics.shards.iter().all(|s| s.failed == 0));
            assert!(metrics.shards.iter().any(|s| s.latency.is_some()));
        }
    }

    #[test]
    fn empty_pool_lookups_fail_but_complete() {
        let mut engine = ServeEngine::new(test_config()).expect("valid config");
        let ticket = engine.submit(RequestKey::new(5)).expect("accepted");
        let response = ticket.wait();
        assert_eq!(response.result, Err(TableError::EmptyPool));
        assert_eq!(response.epoch, 0, "genesis epoch");
        engine.shutdown();
        assert_eq!(engine.metrics().shards.iter().map(|s| s.failed).sum::<u64>(), 1);
    }

    #[test]
    fn backpressure_rejects_at_capacity() {
        // White-box: a core with no workers, so nothing drains the queue
        // — under either scheduling substrate.
        for kind in [SchedulerKind::SharedQueue, SchedulerKind::WorkStealing] {
            let config =
                ServeConfig { queue_capacity: 2, scheduler: kind, ..test_config() };
            let core = EngineCore::new(config).expect("valid config");
            assert!(core.submit(RequestKey::new(1)).is_ok());
            assert!(core.submit(RequestKey::new(2)).is_ok());
            assert_eq!(
                core.submit(RequestKey::new(3)).unwrap_err(),
                ServeError::QueueFull,
                "{kind:?}"
            );
            assert_eq!(core.rejected.load(Ordering::Relaxed), 1);
            assert_eq!(core.submitted.load(Ordering::Relaxed), 2);
            assert_eq!(core.scheduler.depth(), 2);
        }
    }

    #[test]
    fn shutdown_serves_stragglers_and_rejects_new_submissions() {
        for kind in [SchedulerKind::SharedQueue, SchedulerKind::WorkStealing] {
            let config = ServeConfig { scheduler: kind, ..test_config() };
            let mut engine = ServeEngine::new(config).expect("valid config");
            engine.join(ServerId::new(1)).expect("fresh server");
            let tickets: Vec<_> = (0..50u64)
                .filter_map(|k| engine.submit(RequestKey::new(k)).ok())
                .collect();
            engine.shutdown();
            for ticket in tickets {
                // Every accepted ticket resolves — no hangs after
                // shutdown, wherever the job was parked (shared queue,
                // injector, or a work-stealing local deque).
                assert!(ticket.wait().result.is_ok(), "{kind:?}");
            }
            assert_eq!(
                engine.submit(RequestKey::new(9)).unwrap_err(),
                ServeError::ShuttingDown
            );
            // Idempotent.
            engine.shutdown();
        }
    }

    #[test]
    fn membership_errors_propagate() {
        let engine = ServeEngine::new(test_config()).expect("valid config");
        engine.join(ServerId::new(1)).expect("fresh server");
        assert_eq!(
            engine.join(ServerId::new(1)).unwrap_err(),
            ServeError::Table(TableError::ServerAlreadyPresent(ServerId::new(1)))
        );
        assert_eq!(
            engine.leave(ServerId::new(7)).unwrap_err(),
            ServeError::Table(TableError::ServerNotFound(ServerId::new(7)))
        );
    }

    #[test]
    fn receipts_track_epochs_and_divergence_stays_zero() {
        let engine = ServeEngine::new(test_config()).expect("valid config");
        let r1 = engine.join(ServerId::new(1)).expect("fresh server");
        assert_eq!(r1.len(), 3);
        assert!(r1.iter().all(|r| r.epoch == 1 && r.members == vec![ServerId::new(1)]));
        let r2 = engine.join(ServerId::new(2)).expect("fresh server");
        assert!(r2.iter().all(|r| r.epoch == 2 && r.members.len() == 2));
        assert!(engine
            .shard_divergence(0)
            .iter()
            .all(|delta| delta.distance == 0 && !delta.diverged));
    }

    #[test]
    fn reconcile_shard_and_signatures_expose_the_gossip_surface() {
        let engine = ServeEngine::new(test_config()).expect("valid config");
        assert_eq!(engine.shard_count(), 3);
        engine.join(ServerId::new(1)).expect("fresh");
        engine.join(ServerId::new(2)).expect("fresh");
        let before = engine.shard_signatures();
        assert_eq!(before.len(), 3);
        // Reconcile shard 0 to a different membership: only its signature
        // moves, and its snapshot serves the new member set.
        let target: Vec<ServerId> = [1u64, 5].into_iter().map(ServerId::new).collect();
        let receipt =
            engine.reconcile_shard(0, &target).expect("fits").expect("moved");
        assert_eq!(receipt.shard, 0);
        let after = engine.shard_signatures();
        assert_ne!(after[0], before[0]);
        assert_eq!(after[1..], before[1..]);
        assert_eq!(engine.snapshots()[0].member_ids(), target);
        // Idempotent: same target again publishes nothing.
        assert!(engine.reconcile_shard(0, &target).expect("no-op").is_none());
        // Converging every shard to one membership equalizes nothing
        // *across* shards (independent geometries) but matches a directly
        // built engine byte for byte.
        for shard in 0..engine.shard_count() {
            engine.reconcile_shard(shard, &target).expect("fits");
        }
        let direct = ServeEngine::new(test_config()).expect("valid config");
        direct.join(ServerId::new(1)).expect("fresh");
        direct.join(ServerId::new(5)).expect("fresh");
        assert_eq!(engine.shard_signatures(), direct.shard_signatures());
    }

    #[test]
    fn sampled_requests_produce_trace_events() {
        use hdhash_obs::TraceConfig;
        for kind in [SchedulerKind::SharedQueue, SchedulerKind::WorkStealing] {
            let config = ServeConfig {
                scheduler: kind,
                engine: Default::default(),
                trace: TraceConfig { enabled: true, sample_every: 1, ring_capacity: 8192 },
                ..test_config()
            };
            let mut engine = ServeEngine::new(config).expect("valid config");
            engine.join(ServerId::new(1)).expect("fresh server");
            let tickets: Vec<_> = (0..100u64)
                .map(|k| engine.submit(RequestKey::new(k)).expect("accepted"))
                .collect();
            for ticket in tickets {
                let _ = ticket.wait();
            }
            engine.shutdown();
            let tracer = engine.tracer();
            let events = tracer.drain();
            let count = |k| events.iter().filter(|e| e.kind == k).count();
            assert_eq!(count(SpanKind::Submit), 100, "{kind:?}");
            assert_eq!(count(SpanKind::ResponseFill), 100, "{kind:?}");
            assert!(count(SpanKind::BatchExec) >= 1, "{kind:?}");
            assert!(count(SpanKind::Pickup) >= 1, "{kind:?}");
            // Every request-scoped event carries a nonzero trace id, and
            // each sampled request's Submit has a matching ResponseFill.
            let submits: std::collections::HashSet<u64> = events
                .iter()
                .filter(|e| e.kind == SpanKind::Submit)
                .map(|e| e.trace_id)
                .collect();
            let fills: std::collections::HashSet<u64> = events
                .iter()
                .filter(|e| e.kind == SpanKind::ResponseFill)
                .map(|e| e.trace_id)
                .collect();
            assert_eq!(submits, fills, "{kind:?}");
            assert!(!submits.contains(&0));
            assert_eq!(tracer.stats().events_dropped, 0, "{kind:?}");
        }
    }

    #[test]
    fn disabled_tracing_stays_silent() {
        let mut engine = ServeEngine::new(test_config()).expect("valid config");
        engine.join(ServerId::new(1)).expect("fresh server");
        for k in 0..20u64 {
            let _ = engine.submit(RequestKey::new(k)).expect("accepted").wait();
        }
        engine.shutdown();
        let tracer = engine.tracer();
        assert_eq!(tracer.drain().len(), 0);
        assert_eq!(tracer.stats().requests_sampled, 0);
    }

    #[test]
    fn shard_partition_is_stable() {
        let core = EngineCore::new(test_config()).expect("valid config");
        for k in 0..500u64 {
            let key = RequestKey::new(k);
            assert_eq!(core.shard_of(key), core.shard_of(key));
            assert!(core.shard_of(key) < 3);
        }
    }
}
