//! Emulator-driven load generation: feed a [`Generator`]'s request stream
//! through a [`ServeEngine`] closed-loop.
//!
//! The paper's emulator generates a request stream (joins, leaves,
//! lookups); this module is the adapter that replays such a stream against
//! the serving layer — control requests go through the epoch
//! reconfiguration path, lookups through the MPMC queue — while keeping a
//! bounded number of lookups in flight (a closed loop, the way a fixed
//! client fleet drives a real service).
//!
//! [`Generator`]: hdhash_emulator::Generator

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use hdhash_emulator::replay::{ReplayCounters, ReplayReport};
use hdhash_emulator::{metrics::ThroughputSample, LatencyProfile, Request, Trace};

use crate::engine::ServeEngine;
use crate::request::Ticket;
use crate::ServeError;

/// Outcome of one [`drive`] run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Lookups accepted into the queue.
    pub submitted: usize,
    /// Lookups refused at capacity even after one drain-and-retry.
    pub rejected: usize,
    /// Lookups served to completion.
    pub completed: usize,
    /// Served lookups whose verdict was an error (e.g. empty pool).
    pub failures: usize,
    /// Control requests applied (joins + leaves).
    pub controls: usize,
    /// Control requests that failed (duplicate join, unknown leave).
    pub control_failures: usize,
    /// Accepted lookups whose response never arrived within the reap
    /// deadline ([`REAP_TIMEOUT`]); the tickets were abandoned. Always
    /// zero against a healthy engine — non-zero means a worker wedged or
    /// died uncontained.
    pub timed_out: usize,
    /// Wall time of the whole replay.
    pub elapsed: Duration,
    /// Submit-to-response latency profile over every completed lookup.
    pub latency: Option<LatencyProfile>,
}

impl LoadReport {
    /// Completed lookups over wall time.
    #[must_use]
    pub fn throughput(&self) -> ThroughputSample {
        ThroughputSample { requests: self.completed, elapsed: self.elapsed }
    }

    /// Converts to the substrate-neutral replay shape shared with the
    /// emulator module ([`hdhash_emulator::replay`]), so one recorded
    /// trace replayed on both sides can be compared counter for counter.
    #[must_use]
    pub fn replay_report(&self) -> ReplayReport {
        ReplayReport {
            counters: ReplayCounters {
                controls: self.controls,
                control_failures: self.control_failures,
                lookups: self.completed,
                lookup_failures: self.failures,
                shed: self.rejected,
                timed_out: self.timed_out,
            },
            elapsed: self.elapsed,
            latency: self.latency,
        }
    }
}

/// How long [`drive`] waits for any single outstanding response before
/// abandoning its ticket. Generous — orders of magnitude above a healthy
/// engine's worst latency — because its only job is turning a wedged
/// worker into a counted [`LoadReport::timed_out`] instead of a hung
/// replay.
pub const REAP_TIMEOUT: Duration = Duration::from_secs(30);

/// Replays `requests` against `engine`, keeping at most `window` lookups
/// outstanding (closed loop). Backpressured submissions drain one
/// outstanding ticket and retry once before counting as rejected.
///
/// Returns after every in-flight lookup has been reaped or has timed out
/// ([`REAP_TIMEOUT`] per ticket, counted in [`LoadReport::timed_out`]).
#[must_use]
pub fn drive(engine: &ServeEngine, requests: &[Request], window: usize) -> LoadReport {
    let window = window.max(1);
    let mut outstanding: VecDeque<Ticket> = VecDeque::with_capacity(window);
    let mut report = LoadReport {
        submitted: 0,
        rejected: 0,
        completed: 0,
        failures: 0,
        controls: 0,
        control_failures: 0,
        timed_out: 0,
        elapsed: Duration::ZERO,
        latency: None,
    };
    let mut latencies: Vec<Duration> = Vec::new();
    let started = Instant::now();

    // Reap through the async front end: a `Ticket` is a future, and the
    // vendored timeout executor drives it — so every load replay (the
    // bench, the CLI, the examples) exercises the waker path end to end.
    // The deadline bounds the damage of a wedged worker: one counted
    // timeout per ticket instead of a replay that never returns.
    let reap = |ticket: Ticket, report: &mut LoadReport, latencies: &mut Vec<Duration>| {
        match crate::executor::block_on_timeout(ticket, REAP_TIMEOUT) {
            Some(response) => {
                report.completed += 1;
                if response.result.is_err() {
                    report.failures += 1;
                }
                latencies.push(response.latency);
            }
            None => report.timed_out += 1,
        }
    };

    for request in requests {
        match *request {
            Request::Join(server) => {
                report.controls += 1;
                if engine.join(server).is_err() {
                    report.control_failures += 1;
                }
            }
            Request::Leave(server) => {
                report.controls += 1;
                if engine.leave(server).is_err() {
                    report.control_failures += 1;
                }
            }
            Request::Lookup(key) => {
                if outstanding.len() >= window {
                    let ticket = outstanding.pop_front().expect("non-empty window");
                    reap(ticket, &mut report, &mut latencies);
                }
                match engine.submit(key) {
                    Ok(ticket) => {
                        report.submitted += 1;
                        outstanding.push_back(ticket);
                    }
                    Err(ServeError::QueueFull) => {
                        // Drain the window, then retry once.
                        while let Some(ticket) = outstanding.pop_front() {
                            reap(ticket, &mut report, &mut latencies);
                        }
                        match engine.submit(key) {
                            Ok(ticket) => {
                                report.submitted += 1;
                                outstanding.push_back(ticket);
                            }
                            Err(_) => report.rejected += 1,
                        }
                    }
                    Err(_) => report.rejected += 1,
                }
            }
        }
    }
    while let Some(ticket) = outstanding.pop_front() {
        reap(ticket, &mut report, &mut latencies);
    }
    report.elapsed = started.elapsed();
    report.latency = LatencyProfile::from_durations(latencies);
    report
}

/// Replays a recorded [`Trace`] against a live engine — the serve side of
/// the emulator ↔ serve seam. Identical to [`drive`] over the trace's
/// request stream.
#[must_use]
pub fn drive_trace(engine: &ServeEngine, trace: &Trace, window: usize) -> LoadReport {
    drive(engine, trace.requests(), window)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServeConfig;
    use hdhash_emulator::{Generator, Workload};

    fn engine_with(scheduler: crate::SchedulerKind) -> ServeEngine {
        ServeEngine::new(ServeConfig {
            shards: 2,
            workers: 2,
            batch_capacity: 32,
            queue_capacity: 512,
            dimension: 2048,
            codebook_size: 64,
            seed: 9,
            scheduler,
            engine: Default::default(),
            trace: Default::default(),
        })
        .expect("valid config")
    }

    fn engine() -> ServeEngine {
        engine_with(crate::SchedulerKind::SharedQueue)
    }

    #[test]
    fn replays_generator_stream_end_to_end() {
        // The replay contract holds under both scheduling substrates.
        for kind in [crate::SchedulerKind::SharedQueue, crate::SchedulerKind::WorkStealing] {
            let mut engine = engine_with(kind);
            let workload =
                Workload { initial_servers: 8, lookups: 400, ..Workload::default() };
            let requests = Generator::new(workload).requests();
            let report = drive(&engine, &requests, 64);
            assert_eq!(report.controls, 8, "{kind:?}");
            assert_eq!(report.control_failures, 0);
            assert_eq!(report.submitted + report.rejected, 400);
            assert_eq!(report.completed, report.submitted);
            assert_eq!(report.timed_out, 0, "healthy engine never times out");
            assert_eq!(report.failures, 0, "pool is non-empty for every lookup");
            assert!(report.latency.is_some());
            assert!(report.throughput().requests_per_sec() > 0.0);
            engine.shutdown();
            let metrics = engine.metrics();
            assert_eq!(metrics.completed as usize, report.completed);
            assert_eq!(metrics.scheduler, kind.name());
        }
    }

    #[test]
    fn churn_stream_keeps_serving() {
        let mut engine = engine();
        let workload = Workload { initial_servers: 6, lookups: 300, ..Workload::default() };
        let requests = Generator::new(workload).churn_requests(4);
        let report = drive(&engine, &requests, 32);
        // 6 initial joins plus churn events (leaves whose victim already
        // departed are skipped by the generator, so ≥ 2 of 4 remain).
        assert!(report.controls >= 6 + 2, "controls {}", report.controls);
        assert_eq!(report.completed, report.submitted);
        assert_eq!(report.failures, 0);
        engine.shutdown();
        // Every shard ends on the same epoch count (same control stream).
        let snapshots = engine.snapshots();
        assert!(snapshots.iter().all(|s| s.epoch == snapshots[0].epoch));
    }

    #[test]
    fn tiny_queue_still_completes_via_retry() {
        let mut engine = ServeEngine::new(ServeConfig {
            shards: 2,
            workers: 1,
            batch_capacity: 4,
            queue_capacity: 8,
            dimension: 2048,
            codebook_size: 64,
            seed: 10,
            scheduler: crate::SchedulerKind::default(),
            engine: Default::default(),
            trace: Default::default(),
        })
        .expect("valid config");
        engine.join(hdhash_table::ServerId::new(1)).expect("fresh server");
        let requests: Vec<Request> =
            (0..200u64).map(|k| Request::Lookup(hdhash_table::RequestKey::new(k))).collect();
        let report = drive(&engine, &requests, 16);
        assert_eq!(report.submitted + report.rejected, 200);
        assert_eq!(report.completed, report.submitted);
        assert!(report.completed > 0);
        engine.shutdown();
    }
}
