//! The pluggable scheduling substrate: how accepted jobs reach workers.
//!
//! The engine splits request execution into two layers. *Policy* — batch
//! coalescing, shard grouping, epoch snapshots, metrics — lives in
//! [`engine`](crate::engine) and is identical for every scheduler.
//! *Substrate* — where a submitted job parks until a worker picks it up —
//! is this module's [`Scheduler`] trait, selected per engine by
//! [`ServeConfig::scheduler`]:
//!
//! * [`SharedQueue`] — every worker drains one bounded MPMC queue. The
//!   original engine behavior, preserved exactly (same queue, same pop
//!   order) so the two substrates stay comparable benchmark-to-benchmark.
//! * [`WorkStealing`] — a bounded shared *injector* plus one local deque
//!   per worker. A worker serves its local deque first; when dry it pulls
//!   a pickup chunk (2 × batch) from the injector — one batch to serve
//!   now, the surplus parked locally as stealable work — and when both
//!   are empty it steals a probe chunk from a sibling's deque
//!   (Chase–Lev-style `steal_batch_and_pop`). On many-core hosts this
//!   cuts every-worker-on-one-queue contention to one injector touch per
//!   pickup chunk; on the single-core dev box the two substrates measure
//!   the same (see `BENCH_serve.json`'s note).
//!
//! Backpressure is identical under both: [`ServeConfig::queue_capacity`]
//! bounds the *submission* queue (shared queue, or the injector), and a
//! full queue rejects with [`QueueFull`](crate::ServeError::QueueFull).
//! Jobs a worker has already moved to its local deque are in service —
//! they no longer occupy submission capacity, exactly as a popped batch
//! never did.
//!
//! ```text
//!            SharedQueue                       WorkStealing
//!   submit ──► [ArrayQueue] ─┬─► worker 0    submit ──► [injector] ──┐
//!                            ├─► worker 1               chunk pickup │
//!                            └─► worker 2      ┌───────────┬─────────┤
//!                                              ▼           ▼         ▼
//!                                          [deque 0]   [deque 1] [deque 2]
//!                                              │  ▲        │         │
//!                                              ▼  └─steal──┘         ▼
//!                                          worker 0     worker 1  worker 2
//! ```

use std::sync::atomic::Ordering;
use std::sync::Arc;

use crossbeam::deque::{Steal, Stealer, Worker};
use crossbeam::queue::ArrayQueue;

use hdhash_obs::{SpanKind, Tracer};

use crate::config::{SchedulerKind, ServeConfig};
use crate::engine::EngineCore;
use crate::request::LookupJob;

/// The scheduling substrate a [`ServeEngine`](crate::ServeEngine) runs
/// on: accepts submitted jobs on the client side and hands batches to
/// worker threads on the serving side.
///
/// Implementations are passive data structures — parking, shutdown and
/// batch execution belong to the engine — so a scheduler only answers
/// four questions: can this job be accepted, what should worker *i* serve
/// next, is anything pending, and what is left at shutdown.
pub trait Scheduler: std::fmt::Debug + Send + Sync {
    /// Accepts `job`, or hands it back when the submission queue is at
    /// capacity — the backpressure signal the engine converts to
    /// [`QueueFull`](crate::ServeError::QueueFull).
    ///
    /// # Errors
    ///
    /// Returns the job itself so the caller can recover it.
    fn submit(&self, job: LookupJob) -> Result<(), LookupJob>;

    /// Moves up to `max` jobs into `batch` for worker `worker`; returns
    /// how many were moved. An empty result means the worker found no
    /// work anywhere it can look (for [`WorkStealing`]: local deque,
    /// injector, and every sibling's deque).
    fn pop_batch(&self, worker: usize, batch: &mut Vec<LookupJob>, max: usize) -> usize;

    /// Jobs currently parked anywhere in the substrate (submission queue
    /// plus local deques). The engine's parking predicate and the
    /// `queue_depth` metric.
    fn depth(&self) -> usize;

    /// Whether worker `worker` left stealable surplus behind after its
    /// last pickup — the engine wakes a sibling when true. The shared
    /// queue never has surplus (submissions already notify per job).
    fn has_surplus(&self, worker: usize) -> bool {
        let _ = worker;
        false
    }

    /// Drains every parked job into `out` — the shutdown straggler path,
    /// called after the workers have exited.
    fn drain_into(&self, out: &mut Vec<LookupJob>);

    /// The substrate's name, as reported by metrics and benchmark JSON.
    fn name(&self) -> &'static str;
}

/// Builds the substrate [`ServeConfig::scheduler`] selects.
pub(crate) fn build(config: &ServeConfig, tracer: Arc<Tracer>) -> Box<dyn Scheduler> {
    match config.scheduler {
        SchedulerKind::SharedQueue => Box::new(SharedQueue::new(config.queue_capacity)),
        SchedulerKind::WorkStealing => Box::new(
            WorkStealing::new(config.queue_capacity, config.workers).with_tracer(tracer),
        ),
    }
}

/// The original substrate: one bounded MPMC queue every worker drains.
#[derive(Debug)]
pub struct SharedQueue {
    queue: ArrayQueue<LookupJob>,
}

impl SharedQueue {
    /// An empty queue bounded at `capacity` jobs.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self { queue: ArrayQueue::new(capacity) }
    }
}

impl Scheduler for SharedQueue {
    fn submit(&self, job: LookupJob) -> Result<(), LookupJob> {
        self.queue.push(job)
    }

    fn pop_batch(&self, _worker: usize, batch: &mut Vec<LookupJob>, max: usize) -> usize {
        while batch.len() < max {
            match self.queue.pop() {
                Some(job) => batch.push(job),
                None => break,
            }
        }
        batch.len()
    }

    fn depth(&self) -> usize {
        self.queue.len()
    }

    fn drain_into(&self, out: &mut Vec<LookupJob>) {
        while let Some(job) = self.queue.pop() {
            out.push(job);
        }
    }

    fn name(&self) -> &'static str {
        SchedulerKind::SharedQueue.name()
    }
}

/// Work-stealing substrate: a bounded injector feeding per-worker local
/// deques, with Chase–Lev-style batch stealing between siblings.
#[derive(Debug)]
pub struct WorkStealing {
    /// The submission side — bounded, the backpressure surface.
    injector: ArrayQueue<LookupJob>,
    /// One local deque per worker; worker `i` pushes/pops `locals[i]`
    /// only (the discipline the real lock-free deque requires).
    locals: Vec<Worker<LookupJob>>,
    /// Thief handles onto every local deque, probed round-robin.
    stealers: Vec<Stealer<LookupJob>>,
    /// Steal-event collector; the disabled default costs one branch per
    /// steal.
    tracer: Arc<Tracer>,
}

impl WorkStealing {
    /// An empty substrate for `workers` workers, submission-bounded at
    /// `capacity` jobs.
    #[must_use]
    pub fn new(capacity: usize, workers: usize) -> Self {
        let locals: Vec<Worker<LookupJob>> =
            (0..workers.max(1)).map(|_| Worker::new_fifo()).collect();
        let stealers = locals.iter().map(Worker::stealer).collect();
        Self {
            injector: ArrayQueue::new(capacity),
            locals,
            stealers,
            tracer: Arc::new(Tracer::disabled()),
        }
    }

    /// Attach the engine's tracer so successful steals emit
    /// [`SpanKind::Steal`] events.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> Self {
        self.tracer = tracer;
        self
    }
}

impl Scheduler for WorkStealing {
    fn submit(&self, job: LookupJob) -> Result<(), LookupJob> {
        self.injector.push(job)
    }

    fn pop_batch(&self, worker: usize, batch: &mut Vec<LookupJob>, max: usize) -> usize {
        let local = &self.locals[worker];
        // 1. Local deque first: jobs this worker (or a steal on its
        //    behalf) already claimed.
        while batch.len() < max {
            match local.pop() {
                Some(job) => batch.push(job),
                None => break,
            }
        }
        if batch.len() < max {
            // 2. Pickup chunk from the injector: up to 2 × max in one
            //    pass — `max` fills this batch, the surplus parks in the
            //    local deque where siblings can steal it.
            for _ in 0..max.saturating_mul(2) {
                match self.injector.pop() {
                    Some(job) => {
                        if batch.len() < max {
                            batch.push(job);
                        } else {
                            local.push(job);
                        }
                    }
                    None => break,
                }
            }
        }
        if batch.is_empty() {
            // 3. Idle: steal a probe chunk from the first non-empty
            //    sibling (round-robin from our right neighbour, so
            //    victims spread under many thieves).
            let n = self.stealers.len();
            'victims: for offset in 1..n {
                let victim_idx = (worker + offset) % n;
                let victim = &self.stealers[victim_idx];
                loop {
                    match victim.steal_batch_and_pop(local) {
                        Steal::Success(job) => {
                            batch.push(job);
                            while batch.len() < max {
                                match local.pop() {
                                    Some(job) => batch.push(job),
                                    None => break,
                                }
                            }
                            // Steals only happen on otherwise-idle
                            // workers, so recording every one (not just
                            // sampled ones) costs nothing on the serving
                            // path and keeps rebalancing visible.
                            if self.tracer.is_enabled() {
                                let id =
                                    batch.iter().find_map(|j| j.trace_id).unwrap_or(0);
                                self.tracer.record(
                                    SpanKind::Steal,
                                    id,
                                    worker as u32,
                                    victim_idx as u64,
                                    batch.len() as u64,
                                );
                            }
                            break 'victims;
                        }
                        Steal::Empty => continue 'victims,
                        // The real lock-free deque can lose a race and
                        // ask to retry; the shim never does.
                        Steal::Retry => {}
                    }
                }
            }
        }
        batch.len()
    }

    fn depth(&self) -> usize {
        self.injector.len() + self.locals.iter().map(Worker::len).sum::<usize>()
    }

    fn has_surplus(&self, worker: usize) -> bool {
        !self.locals[worker].is_empty()
    }

    fn drain_into(&self, out: &mut Vec<LookupJob>) {
        while let Some(job) = self.injector.pop() {
            out.push(job);
        }
        for local in &self.locals {
            while let Some(job) = local.pop() {
                out.push(job);
            }
        }
    }

    fn name(&self) -> &'static str {
        SchedulerKind::WorkStealing.name()
    }
}

/// The worker loop, shared by both substrates: pick a batch up, serve it
/// as one shard-grouped coalesced unit, park when the substrate runs dry.
///
/// Parking protocol: the pickup and the park predicate re-check happen on
/// either side of taking `core.park`; every successful submission and the
/// shutdown flip notify under that same lock, so a worker can never sleep
/// through a job it was supposed to see (the submit is either visible to
/// the re-check or its notification arrives after the wait begins).
///
/// Panic containment: batch execution runs under `catch_unwind`, so a
/// panicking lookup (or the injection hook) costs one batch — its pending
/// tickets are backfilled with an error response — and the worker loops
/// back for the next pickup instead of dying and silently shrinking the
/// pool. `AssertUnwindSafe` is sound here: the only state crossing the
/// boundary is the batch (fully backfilled and cleared by containment),
/// the scratch vectors (cleared before reuse), and the engine core, whose
/// shared state is lock-protected with poison-recovering mutexes.
pub(crate) fn worker_loop(core: &EngineCore, worker: usize) {
    let mut batch: Vec<LookupJob> = Vec::with_capacity(core.config.batch_capacity);
    let mut keys = Vec::new();
    let mut latencies = Vec::new();
    loop {
        batch.clear();
        core.scheduler.pop_batch(worker, &mut batch, core.config.batch_capacity);
        if batch.is_empty() {
            if core.shutdown.load(Ordering::Acquire) {
                return;
            }
            let mut guard = core.park.lock();
            // Re-check under the lock: a submit or shutdown that raced the
            // empty pickup has already fired its notification.
            if core.shutdown.load(Ordering::Acquire) || core.scheduler.depth() > 0 {
                continue;
            }
            core.ready.wait(&mut guard);
            continue;
        }
        if core.scheduler.has_surplus(worker) {
            // Our pickup chunk left stealable work behind; wake a sibling
            // to steal it while we serve this batch. Notify under the
            // park lock so the wakeup can't slip between a sibling's
            // predicate check and its wait.
            let _guard = core.park.lock();
            core.ready.notify_one();
        }
        if core.tracer.is_enabled() {
            if let Some(sampled) = batch.iter().find(|job| job.trace_id.is_some()) {
                core.tracer.record(
                    SpanKind::Pickup,
                    sampled.trace_id.unwrap_or(0),
                    worker as u32,
                    batch.len() as u64,
                    sampled.enqueued.elapsed().as_micros() as u64,
                );
            }
        }
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            core.serve_batch(worker, &mut batch, &mut keys, &mut latencies);
        }));
        if outcome.is_err() {
            core.contain_panic(&mut batch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdhash_table::RequestKey;

    fn job(key: u64) -> LookupJob {
        LookupJob::new(RequestKey::new(key), 0).0
    }

    fn keys_of(batch: &[LookupJob]) -> Vec<u64> {
        batch.iter().map(|j| j.key.get()).collect()
    }

    #[test]
    fn shared_queue_is_fifo_and_bounded() {
        let scheduler = SharedQueue::new(3);
        assert_eq!(scheduler.name(), "shared-queue");
        for k in 0..3 {
            assert!(scheduler.submit(job(k)).is_ok());
        }
        assert_eq!(scheduler.depth(), 3);
        let bounced = scheduler.submit(job(9)).expect_err("at capacity");
        assert_eq!(bounced.key, RequestKey::new(9));
        let mut batch = Vec::new();
        assert_eq!(scheduler.pop_batch(0, &mut batch, 2), 2);
        assert_eq!(keys_of(&batch), vec![0, 1]);
        assert!(!scheduler.has_surplus(0), "shared queue never reports surplus");
        let mut rest = Vec::new();
        scheduler.drain_into(&mut rest);
        assert_eq!(keys_of(&rest), vec![2]);
        assert_eq!(scheduler.depth(), 0);
    }

    #[test]
    fn work_stealing_pickup_parks_surplus_locally() {
        let scheduler = WorkStealing::new(64, 2);
        assert_eq!(scheduler.name(), "work-stealing");
        for k in 0..10 {
            assert!(scheduler.submit(job(k)).is_ok());
        }
        // Worker 0 asks for 4: the pickup chunk is 8 (2 × max), so 4 are
        // served and 4 park in its local deque as stealable surplus.
        let mut batch = Vec::new();
        assert_eq!(scheduler.pop_batch(0, &mut batch, 4), 4);
        assert_eq!(keys_of(&batch), vec![0, 1, 2, 3]);
        assert!(scheduler.has_surplus(0));
        assert_eq!(scheduler.depth(), 6, "4 local + 2 still in the injector");
        // Worker 0's next pickup serves its local deque first.
        batch.clear();
        assert_eq!(scheduler.pop_batch(0, &mut batch, 4), 4);
        assert_eq!(keys_of(&batch), vec![4, 5, 6, 7]);
        assert!(!scheduler.has_surplus(0));
    }

    #[test]
    fn work_stealing_idle_worker_steals_from_sibling() {
        let scheduler = WorkStealing::new(64, 2);
        for k in 0..12 {
            assert!(scheduler.submit(job(k)).is_ok());
        }
        // Worker 0 claims everything: batch of 6 + 6 parked locally.
        let mut batch = Vec::new();
        assert_eq!(scheduler.pop_batch(0, &mut batch, 6), 6);
        assert_eq!(scheduler.depth(), 6);
        // Worker 1 finds the injector empty and steals half of worker
        // 0's surplus (3 of 6), serving them as its own batch.
        let mut stolen = Vec::new();
        assert_eq!(scheduler.pop_batch(1, &mut stolen, 6), 3);
        assert_eq!(keys_of(&stolen), vec![6, 7, 8]);
        assert_eq!(scheduler.depth(), 3);
        // Stragglers drain from every deque at shutdown.
        let mut rest = Vec::new();
        scheduler.drain_into(&mut rest);
        let mut left = keys_of(&rest);
        left.sort_unstable();
        assert_eq!(left, vec![9, 10, 11]);
    }

    #[test]
    fn work_stealing_backpressure_bounds_the_injector() {
        let scheduler = WorkStealing::new(2, 2);
        assert!(scheduler.submit(job(1)).is_ok());
        assert!(scheduler.submit(job(2)).is_ok());
        assert!(scheduler.submit(job(3)).is_err(), "injector at capacity");
        // A pickup frees submission capacity (jobs move into service).
        let mut batch = Vec::new();
        assert_eq!(scheduler.pop_batch(0, &mut batch, 1), 1);
        assert!(scheduler.submit(job(3)).is_ok());
    }

    #[test]
    fn work_stealing_empty_everywhere_returns_nothing() {
        let scheduler = WorkStealing::new(8, 3);
        let mut batch = Vec::new();
        for worker in 0..3 {
            assert_eq!(scheduler.pop_batch(worker, &mut batch, 4), 0);
        }
        assert_eq!(scheduler.depth(), 0);
        assert!(!scheduler.has_surplus(0));
    }
}
