//! Replicated membership state: the versioned log gossip reconciles.
//!
//! A replica set runs one [`ServeEngine`] per replica; each replica
//! accepts local membership changes (joins/leaves) and must converge with
//! its peers without ever blocking readers. This module supplies the
//! convergent state machine underneath the gossip protocol:
//!
//! * [`MembershipLog`] — a last-writer-wins register per server id
//!   (`version`, `alive`), advanced by a replica-local Lamport clock.
//!   [`merge`](MembershipLog::merge) is **idempotent, commutative and
//!   associative** (a pointwise join in the `(version, alive)` lattice,
//!   removals winning version ties), so replicas exchanging records in any
//!   order, any number of times, reach the same log — the property the
//!   `replication_properties` suite pins.
//! * [`ReplicatedEngine`] — a [`ServeEngine`] paired with a log. Local
//!   joins/leaves write the log and the engine together; merging remote
//!   [`MemberRecord`]s drives every shard to the merged membership through
//!   the shadow-table → epoch-publish path
//!   ([`ServeEngine::reconcile_shard`]), so reconciliation is invisible to
//!   in-flight lookups.
//!
//! The log converges member *ids*; per-shard membership **signatures** are
//! a pure function of the membership (see
//! [`membership_signature`](hdhash_core::HdHashTable::membership_signature)),
//! so converged logs imply byte-identical signatures — which is exactly
//! what the gossip layer's cheap divergence check compares.

use std::collections::BTreeMap;

use parking_lot::Mutex;

use hdhash_hdc::Hypervector;
use hdhash_table::{RequestKey, ServerId, TableError};

use crate::config::ServeConfig;
use crate::engine::ServeEngine;
use crate::request::Ticket;
use crate::shard::ShardReceipt;
use crate::transport::ReplicaId;
use crate::ServeError;

/// One server's replicated membership state: the payload unit of an
/// anti-entropy exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemberRecord {
    /// The server the record describes.
    pub server: ServerId,
    /// Lamport version of the last membership change observed for this
    /// server; higher versions supersede lower ones.
    pub version: u64,
    /// Whether that last change was a join (`true`) or a leave (`false`).
    pub alive: bool,
}

impl MemberRecord {
    /// Serialized size on the wire: 8-byte server id + 8-byte version +
    /// 1 alive byte (the frame accounting a socket transport would use).
    pub const WIRE_SIZE: usize = 17;
}

/// What one [`MembershipLog::merge`] changed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MergeOutcome {
    /// Remote records adopted (they superseded the local state).
    pub adopted: usize,
    /// Servers whose merged state flipped to alive.
    pub joined: Vec<ServerId>,
    /// Servers whose merged state flipped to dead.
    pub left: Vec<ServerId>,
}

impl MergeOutcome {
    /// Whether the merge changed the live membership (signatures move iff
    /// this is true).
    #[must_use]
    pub fn changed_membership(&self) -> bool {
        !self.joined.is_empty() || !self.left.is_empty()
    }
}

/// A last-writer-wins membership register set with a Lamport clock.
///
/// Local changes go through [`set_local`](Self::set_local) (which bumps
/// the clock past everything merged so far, so a local op always
/// supersedes the state it was decided against); remote records come in
/// through [`merge`](Self::merge).
///
/// ## Tombstone garbage collection
///
/// Dead records must normally travel forever — a peer that never saw the
/// join still needs the leave to win over a third replica's stale join.
/// The log bounds that cost with a **seen-through watermark exchange**
/// expressed in *log sequence numbers* (LSN — see [`lsn`](Self::lsn)),
/// not Lamport versions: a record adopted from a peer can carry an old
/// version while the clock has long moved past it, so versions cannot
/// tell "was this tombstone in the set the peer acknowledged?". The LSN
/// can: it bumps on **every** mutation, local or adopted, and each record
/// remembers the LSN at which its current value landed.
///
/// When a peer confirms it has merged this log's full record set as
/// captured at LSN `s` (the confirmation gossip piggybacks on adverts),
/// the log notes `s` via [`record_ack`](Self::record_ack). A tombstone
/// whose current value landed at LSN `t ≤ s` was present in that capture,
/// so the peer's merged state for that server is `≥` the tombstone in the
/// LWW order — no stale join it could ever forward resurrects the member.
/// Once *every* peer of a closed replica set has acknowledged past `t`,
/// [`expire_tombstones`](Self::expire_tombstones) may drop it. The
/// soundness assumption is the standard one: the acknowledging peer list
/// covers the whole replica set (a replica outside it could still hold a
/// stale live record).
#[derive(Debug, Clone, Default)]
pub struct MembershipLog {
    /// server → (version, alive, LSN at which this value landed). A
    /// `BTreeMap` keeps every readout deterministically ordered.
    records: BTreeMap<ServerId, (u64, bool, u64)>,
    clock: u64,
    /// Log sequence number: bumps on every mutation (local decisions
    /// *and* adopted merge records), unlike the Lamport clock which only
    /// absorbs maxima.
    lsn: u64,
    /// peer → highest LSN `s` such that the peer has provably merged the
    /// full record set this log captured at LSN `s` (monotone).
    acked_through: BTreeMap<ReplicaId, u64>,
}

impl MembershipLog {
    /// An empty log at clock zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether `server` is alive in the merged view.
    #[must_use]
    pub fn alive(&self, server: ServerId) -> bool {
        matches!(self.records.get(&server), Some(&(_, true, _)))
    }

    /// The live membership, sorted by id — the reconcile target.
    #[must_use]
    pub fn alive_ids(&self) -> Vec<ServerId> {
        self.records
            .iter()
            .filter_map(|(&server, &(_, alive, _))| alive.then_some(server))
            .collect()
    }

    /// Every record (alive and tombstoned), sorted by id — the sync
    /// payload. Tombstones must travel: a peer that never saw the join
    /// still needs the leave to win over a third replica's stale join.
    /// Capture [`lsn`](Self::lsn) alongside (under one lock) when the set
    /// is shipped for the watermark exchange.
    #[must_use]
    pub fn records(&self) -> Vec<MemberRecord> {
        self.records
            .iter()
            .map(|(&server, &(version, alive, _))| MemberRecord { server, version, alive })
            .collect()
    }

    /// The log's Lamport clock: `≥` every version it has seen.
    #[must_use]
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// The log sequence number: bumps on every mutation, local or
    /// adopted. This — not the Lamport clock — is the unit of the
    /// seen-through watermark exchange: a record adopted from a peer can
    /// carry a version far below the clock, but its *LSN* is always
    /// fresh, so "acknowledged through LSN `s`" really covers every
    /// record value that existed when the capture was taken.
    #[must_use]
    pub fn lsn(&self) -> u64 {
        self.lsn
    }

    /// Records that `peer` has merged this log's full record set as
    /// captured at LSN `seen_through` (monotone — stale confirmations are
    /// ignored).
    pub fn record_ack(&mut self, peer: ReplicaId, seen_through: u64) {
        let entry = self.acked_through.entry(peer).or_insert(0);
        *entry = (*entry).max(seen_through);
    }

    /// The highest LSN every peer in `peers` has acknowledged, or `None`
    /// while any peer has yet to acknowledge at all. Dead records whose
    /// value landed at or below the watermark are safe to expire.
    #[must_use]
    pub fn gc_watermark(&self, peers: &[ReplicaId]) -> Option<u64> {
        peers.iter().map(|peer| self.acked_through.get(peer).copied()).try_fold(
            u64::MAX,
            |low, ack| Some(low.min(ack?)),
        )
    }

    /// Expires dead records acknowledged by every peer in `peers`: a
    /// tombstone whose value landed at LSN `≤`
    /// [`gc_watermark`](Self::gc_watermark) was present in a capture
    /// every peer has merged, so every peer's state for that server is at
    /// least the tombstone — dropping it cannot resurrect the member,
    /// even via a third replica forwarding old-versioned records later.
    /// Returns how many were dropped. Live records never expire, and an
    /// empty `peers` list (replica running solo) expires everything dead
    /// — there is no one left to resurrect it.
    pub fn expire_tombstones(&mut self, peers: &[ReplicaId]) -> usize {
        let Some(watermark) = self.gc_watermark(peers) else {
            return 0;
        };
        let before = self.records.len();
        self.records.retain(|_, &mut (_, alive, added)| alive || added > watermark);
        before - self.records.len()
    }

    /// Records a local membership decision, stamping it one past the
    /// clock (so it supersedes everything this replica has seen).
    /// Returns the version assigned.
    pub fn set_local(&mut self, server: ServerId, alive: bool) -> u64 {
        self.clock += 1;
        self.lsn += 1;
        self.records.insert(server, (self.clock, alive, self.lsn));
        self.clock
    }

    /// Merges remote records: per server, the higher version wins; on a
    /// version tie, `alive = false` wins (removals dominate — the
    /// deterministic, symmetric tie-break that makes the merge a lattice
    /// join). The clock absorbs every remote version so later local
    /// decisions supersede merged state; every adopted record bumps the
    /// LSN, so acknowledgements issued before the adoption never cover
    /// it.
    pub fn merge(&mut self, records: &[MemberRecord]) -> MergeOutcome {
        let mut outcome = MergeOutcome::default();
        for &record in records {
            self.clock = self.clock.max(record.version);
            let local = self.records.get(&record.server).copied();
            let remote_wins = match local {
                None => true,
                Some((version, alive, _)) => {
                    record.version > version
                        || (record.version == version && alive && !record.alive)
                }
            };
            if !remote_wins {
                continue;
            }
            outcome.adopted += 1;
            let was_alive = matches!(local, Some((_, true, _)));
            if record.alive && !was_alive {
                outcome.joined.push(record.server);
            } else if !record.alive && was_alive {
                outcome.left.push(record.server);
            }
            self.lsn += 1;
            self.records.insert(record.server, (record.version, record.alive, self.lsn));
        }
        outcome
    }
}

/// Guarded replica state: the log plus a flag marking that a previous
/// reconcile failed partway (e.g. capacity) and the engine may trail it.
#[derive(Debug, Default)]
struct LogState {
    log: MembershipLog,
    needs_reconcile: bool,
    /// peer → that peer's clock at the moment we merged its full record
    /// set — the "seen through" confirmation our next advert to the peer
    /// carries (the other half of the tombstone-GC watermark exchange).
    merged_through: BTreeMap<ReplicaId, u64>,
}

/// A [`ServeEngine`] that participates in a replica set.
///
/// Wraps the engine with a [`MembershipLog`]; local [`join`](Self::join) /
/// [`leave`](Self::leave) write both, [`merge`](Self::merge) folds in a
/// peer's records and reconciles every shard through the epoch path.
/// Lookups ([`submit`](Self::submit)) pass straight through to the
/// engine's MPMC queue — replication never sits on the hot path.
///
/// # Examples
///
/// ```
/// use hdhash_serve::replication::ReplicatedEngine;
/// use hdhash_serve::transport::ReplicaId;
/// use hdhash_serve::ServeConfig;
/// use hdhash_table::ServerId;
///
/// let config = ServeConfig {
///     shards: 2,
///     workers: 1,
///     dimension: 2048,
///     codebook_size: 64,
///     ..ServeConfig::default()
/// };
/// let a = ReplicatedEngine::new(ReplicaId::new(0), config)?;
/// let b = ReplicatedEngine::new(ReplicaId::new(1), config)?;
/// a.join(ServerId::new(1))?;
/// b.join(ServerId::new(2))?;
/// // One push-pull record exchange converges the membership…
/// b.merge(&a.records())?;
/// a.merge(&b.records())?;
/// assert_eq!(a.member_ids(), b.member_ids());
/// // …and therefore the per-shard signatures, byte for byte.
/// assert_eq!(a.shard_signatures(), b.shard_signatures());
/// # Ok::<(), hdhash_serve::ServeError>(())
/// ```
#[derive(Debug)]
pub struct ReplicatedEngine {
    id: ReplicaId,
    engine: ServeEngine,
    state: Mutex<LogState>,
}

impl ReplicatedEngine {
    /// Builds a fresh engine for this replica.
    ///
    /// Replicas of one set must share the engine geometry (`shards`,
    /// `dimension`, `codebook_size`, `seed`): signatures are only
    /// comparable between identically seeded shard codebooks.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] for a rejected configuration.
    pub fn new(id: ReplicaId, config: ServeConfig) -> Result<Self, ServeError> {
        Ok(Self::from_engine(id, ServeEngine::new(config)?))
    }

    /// Wraps an existing engine. The engine's current members (if any)
    /// are seeded into the log as local joins.
    #[must_use]
    pub fn from_engine(id: ReplicaId, engine: ServeEngine) -> Self {
        let mut log = MembershipLog::new();
        if let Some(snapshot) = engine.snapshots().first() {
            for server in snapshot.member_ids() {
                log.set_local(server, true);
            }
        }
        Self {
            id,
            engine,
            state: Mutex::new(LogState {
                log,
                needs_reconcile: false,
                merged_through: BTreeMap::new(),
            }),
        }
    }

    /// This replica's id.
    #[must_use]
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// The engine under replication (metrics, snapshots, shutdown).
    #[must_use]
    pub fn engine(&self) -> &ServeEngine {
        &self.engine
    }

    /// Submits a lookup to the engine's queue (hot path, log untouched).
    ///
    /// # Errors
    ///
    /// See [`ServeEngine::submit`].
    pub fn submit(&self, key: RequestKey) -> Result<Ticket, ServeError> {
        self.engine.submit(key)
    }

    /// Locally joins `server`: logs the decision and applies it to every
    /// shard through the epoch path.
    ///
    /// # Errors
    ///
    /// [`TableError::ServerAlreadyPresent`] (as [`ServeError::Table`])
    /// when the merged view already has the server alive, or the engine's
    /// capacity error.
    pub fn join(&self, server: ServerId) -> Result<Vec<ShardReceipt>, ServeError> {
        let mut state = self.state.lock();
        if state.log.alive(server) {
            return Err(ServeError::Table(TableError::ServerAlreadyPresent(server)));
        }
        let receipts = self.engine.join(server)?;
        state.log.set_local(server, true);
        Ok(receipts)
    }

    /// Locally removes `server`: logs the tombstone and applies it to
    /// every shard through the epoch path.
    ///
    /// # Errors
    ///
    /// [`TableError::ServerNotFound`] (as [`ServeError::Table`]) when the
    /// merged view has no live record of the server.
    pub fn leave(&self, server: ServerId) -> Result<Vec<ShardReceipt>, ServeError> {
        let mut state = self.state.lock();
        if !state.log.alive(server) {
            return Err(ServeError::Table(TableError::ServerNotFound(server)));
        }
        let receipts = self.engine.leave(server)?;
        state.log.set_local(server, false);
        Ok(receipts)
    }

    /// The merged live membership, sorted by id.
    #[must_use]
    pub fn member_ids(&self) -> Vec<ServerId> {
        self.state.lock().log.alive_ids()
    }

    /// The full record set (including tombstones) — the sync payload a
    /// gossip exchange ships for diverged shards.
    #[must_use]
    pub fn records(&self) -> Vec<MemberRecord> {
        self.state.lock().log.records()
    }

    /// Every shard's published membership signature — the advert payload.
    #[must_use]
    pub fn shard_signatures(&self) -> Vec<Hypervector> {
        self.engine.shard_signatures()
    }

    /// Whether the engine trails the log: a previous [`merge`](Self::merge)
    /// failed partway through applying the merged membership (only shard
    /// capacity exhaustion is reachable). While set, every merge retries
    /// the application; the condition clears on its own only once the
    /// merged membership shrinks back under capacity (leaves arriving
    /// locally or via gossip). Operators should alarm on this: a replica
    /// set whose merged membership exceeds `codebook_size - 1` can detect
    /// divergence but never converge.
    #[must_use]
    pub fn pending_reconcile(&self) -> bool {
        self.state.lock().needs_reconcile
    }

    /// Folds a peer's records into the log and, when the live membership
    /// changed, reconciles every shard to the merged view through the
    /// shadow-table → epoch-publish path (readers never block).
    ///
    /// # Errors
    ///
    /// [`ServeError::Table`] when a shard reconcile fails. Only capacity
    /// exhaustion is reachable: the **union** of the replicas' live
    /// memberships must fit every shard (`codebook_size - 1`), so size
    /// the codebook against the whole replica set, not one replica. The
    /// log keeps the merged state, [`pending_reconcile`](Self::pending_reconcile)
    /// reports the lag, and every subsequent merge retries the engine
    /// application — the wedge clears as soon as enough leaves merge in.
    pub fn merge(&self, records: &[MemberRecord]) -> Result<MergeOutcome, ServeError> {
        self.merge_locked(&mut self.state.lock(), records)
    }

    /// [`merge`](Self::merge), plus the watermark bookkeeping: the records
    /// arrived from `from`, whose log LSN was `stamp` when it captured its
    /// **full** record set — so after this merge we have provably seen
    /// everything `from` held at that capture, and our next advert to it
    /// can say so ([`ack_for`](Self::ack_for)).
    ///
    /// # Errors
    ///
    /// As [`merge`](Self::merge).
    pub fn merge_from(
        &self,
        from: ReplicaId,
        stamp: u64,
        records: &[MemberRecord],
    ) -> Result<MergeOutcome, ServeError> {
        let mut state = self.state.lock();
        let outcome = self.merge_locked(&mut state, records)?;
        let entry = state.merged_through.entry(from).or_insert(0);
        *entry = (*entry).max(stamp);
        Ok(outcome)
    }

    fn merge_locked(
        &self,
        state: &mut LogState,
        records: &[MemberRecord],
    ) -> Result<MergeOutcome, ServeError> {
        let outcome = state.log.merge(records);
        if outcome.changed_membership() || state.needs_reconcile {
            state.needs_reconcile = true;
            let target = state.log.alive_ids();
            for shard in 0..self.engine.shard_count() {
                self.engine.reconcile_shard(shard, &target)?;
            }
            state.needs_reconcile = false;
        }
        Ok(outcome)
    }

    /// The sync payload: the full record set plus the log LSN it was
    /// captured at, read under one lock so the stamp can never claim more
    /// than the records actually carry (a racing local op lands with a
    /// higher LSN than the stamp, which under-claims — safe).
    #[must_use]
    pub fn sync_payload(&self) -> (u64, Vec<MemberRecord>) {
        let state = self.state.lock();
        (state.log.lsn(), state.log.records())
    }

    /// The "seen through" confirmation to piggyback on the next advert to
    /// `peer`: the peer's capture LSN as of the last full record set we
    /// merged from it, or `None` if we never merged one.
    #[must_use]
    pub fn ack_for(&self, peer: ReplicaId) -> Option<u64> {
        self.state.lock().merged_through.get(&peer).copied()
    }

    /// Notes that `peer` has merged the record set we captured at LSN
    /// `seen_through` (from an advert's piggybacked ack).
    pub fn record_ack(&self, peer: ReplicaId, seen_through: u64) {
        self.state.lock().log.record_ack(peer, seen_through);
    }

    /// Expires tombstones every peer in `peers` has acknowledged
    /// ([`MembershipLog::expire_tombstones`]); returns how many were
    /// dropped. Pure log hygiene: the live membership, and therefore the
    /// engine and its signatures, never move.
    pub fn collect_tombstones(&self, peers: &[ReplicaId]) -> usize {
        self.state.lock().log.expire_tombstones(peers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ServeConfig {
        ServeConfig {
            shards: 2,
            workers: 1,
            batch_capacity: 16,
            queue_capacity: 128,
            dimension: 2048,
            codebook_size: 64,
            seed: 77,
            scheduler: crate::SchedulerKind::default(),
            engine: Default::default(),
            trace: Default::default(),
        }
    }

    fn ids(raw: &[u64]) -> Vec<ServerId> {
        raw.iter().copied().map(ServerId::new).collect()
    }

    #[test]
    fn log_local_ops_and_readouts() {
        let mut log = MembershipLog::new();
        assert!(log.alive_ids().is_empty());
        let v1 = log.set_local(ServerId::new(5), true);
        let v2 = log.set_local(ServerId::new(3), true);
        assert!(v2 > v1);
        log.set_local(ServerId::new(5), false);
        assert_eq!(log.alive_ids(), ids(&[3]));
        assert!(!log.alive(ServerId::new(5)));
        // Tombstones stay in the record set.
        assert_eq!(log.records().len(), 2);
    }

    #[test]
    fn merge_prefers_higher_versions_and_dead_ties() {
        let mut log = MembershipLog::new();
        log.set_local(ServerId::new(1), true); // version 1
        // Lower version loses.
        let stale = MemberRecord { server: ServerId::new(1), version: 0, alive: false };
        assert_eq!(log.merge(&[stale]).adopted, 0);
        assert!(log.alive(ServerId::new(1)));
        // Equal version, dead wins.
        let tie = MemberRecord { server: ServerId::new(1), version: 1, alive: false };
        let outcome = log.merge(&[tie]);
        assert_eq!(outcome.adopted, 1);
        assert_eq!(outcome.left, ids(&[1]));
        assert!(!log.alive(ServerId::new(1)));
        // Symmetric direction: alive never beats dead at the same version.
        let back = MemberRecord { server: ServerId::new(1), version: 1, alive: true };
        assert_eq!(log.merge(&[back]).adopted, 0);
        // Higher version wins regardless of state.
        let newer = MemberRecord { server: ServerId::new(1), version: 9, alive: true };
        assert_eq!(log.merge(&[newer]).joined, ids(&[1]));
        // The clock absorbed the remote version: the next local decision
        // supersedes it.
        assert_eq!(log.set_local(ServerId::new(2), true), 10);
    }

    #[test]
    fn tombstones_expire_only_after_every_peer_acks() {
        let peers = [ReplicaId::new(1), ReplicaId::new(2)];
        let mut log = MembershipLog::new();
        log.set_local(ServerId::new(1), true); // v1
        log.set_local(ServerId::new(2), true); // v2
        log.set_local(ServerId::new(1), false); // v3: tombstone
        assert_eq!(log.clock(), 3);
        // No acks at all: no watermark, nothing expires.
        assert_eq!(log.gc_watermark(&peers), None);
        assert_eq!(log.expire_tombstones(&peers), 0);
        // One peer acked through the tombstone, the other not at all.
        log.record_ack(ReplicaId::new(1), 3);
        assert_eq!(log.expire_tombstones(&peers), 0);
        // Second peer acked, but only through v2 — the v3 tombstone stays.
        log.record_ack(ReplicaId::new(2), 2);
        assert_eq!(log.gc_watermark(&peers), Some(2));
        assert_eq!(log.expire_tombstones(&peers), 0);
        assert_eq!(log.records().len(), 2, "live + tombstone");
        // Ack catches up (stale re-ack is ignored, max wins): expires.
        log.record_ack(ReplicaId::new(2), 3);
        log.record_ack(ReplicaId::new(2), 1);
        assert_eq!(log.gc_watermark(&peers), Some(3));
        assert_eq!(log.expire_tombstones(&peers), 1);
        // The live record never expires; the tombstone is gone.
        assert_eq!(log.records().len(), 1);
        assert!(log.alive(ServerId::new(2)));
        assert!(!log.alive(ServerId::new(1)));
        // Idempotent.
        assert_eq!(log.expire_tombstones(&peers), 0);
    }

    #[test]
    fn expired_tombstone_cannot_resurrect_through_acked_peers() {
        // The soundness argument in miniature: B acked through the
        // tombstone version, meaning B's log holds the tombstone (or
        // newer) for that server — so whatever B sends afterwards can
        // never carry the stale join back.
        let a_id = ReplicaId::new(0);
        let b_id = ReplicaId::new(1);
        let mut a = MembershipLog::new();
        a.set_local(ServerId::new(7), true); // v1: join
        let mut b = MembershipLog::new();
        b.merge(&a.records()); // B saw the join
        a.set_local(ServerId::new(7), false); // v2: tombstone on A
        b.merge(&a.records()); // B holds the tombstone too
        a.record_ack(b_id, a.lsn()); // B confirmed seeing the full capture
        assert_eq!(a.expire_tombstones(&[b_id]), 1);
        assert!(a.records().is_empty());
        // B gossips its full set back to A: the tombstone re-arrives (at
        // its original version) but the member stays dead — and a
        // genuinely *new* join (fresh version) still works.
        a.merge(&b.records());
        assert!(!a.alive(ServerId::new(7)), "expiry must not resurrect");
        let v3 = a.set_local(ServerId::new(7), true);
        assert!(v3 > 2, "new joins version past everything seen");
        assert!(a.alive(ServerId::new(7)));
        b.record_ack(a_id, 0); // irrelevant ack path stays independent
    }

    #[test]
    fn late_adopted_tombstone_is_not_covered_by_earlier_acks() {
        // Three replicas P, Q, R. R tombstones X after Q saw the join;
        // P's peers ack P *before* P adopts the tombstone from R. The
        // acks are in LSN units, and the adoption lands at a fresh LSN,
        // so P must NOT expire the tombstone — Q still holds X alive and
        // would resurrect it through P's next merge. (Clock-unit acks
        // get this wrong: the tombstone's *version* is below the acked
        // clock even though neither ack covered it.)
        let q_id = ReplicaId::new(1);
        let r_id = ReplicaId::new(2);
        let mut p = MembershipLog::new();
        let mut q = MembershipLog::new();
        let mut r = MembershipLog::new();
        let x = ServerId::new(42);
        r.set_local(x, true); // R v1
        q.merge(&r.records()); // Q holds X alive @ v1
        r.set_local(x, false); // R v2: the tombstone
        // P does unrelated local work, pushing clock and LSN to 5.
        for id in 0..5u64 {
            p.set_local(ServerId::new(id), true);
        }
        // Both peers merge P's capture (LSN 5) and P learns the acks.
        p.record_ack(q_id, p.lsn());
        p.record_ack(r_id, p.lsn());
        // Now the tombstone arrives from R: version 2 (below P's clock of
        // 5), but its LSN on P is 6 — past both acks.
        p.merge(&r.records());
        assert_eq!(p.clock(), 5, "old-version adoption does not move the clock");
        assert_eq!(p.lsn(), 6, "but it does move the LSN");
        assert_eq!(p.gc_watermark(&[q_id, r_id]), Some(5));
        assert_eq!(
            p.expire_tombstones(&[q_id, r_id]),
            0,
            "tombstone adopted after the acks must survive"
        );
        // The guarded failure: Q's stale live record must keep losing.
        p.merge(&q.records());
        assert!(!p.alive(x), "tombstone retained ⇒ stale join cannot resurrect");
        // Once the peers re-ack a capture that includes the tombstone,
        // expiry is safe and proceeds.
        q.merge(&p.records());
        p.record_ack(q_id, p.lsn());
        p.record_ack(r_id, p.lsn());
        assert_eq!(p.expire_tombstones(&[q_id, r_id]), 1);
        assert!(!p.alive(x));
        // And Q, now holding the tombstone, can no longer resurrect.
        p.merge(&q.records());
        assert!(!p.alive(x));
    }

    #[test]
    fn solo_replica_expires_every_tombstone() {
        let mut log = MembershipLog::new();
        log.set_local(ServerId::new(1), true);
        log.set_local(ServerId::new(1), false);
        log.set_local(ServerId::new(2), false);
        // No peers — no one can resurrect anything.
        assert_eq!(log.expire_tombstones(&[]), 2);
        assert!(log.records().is_empty());
    }

    #[test]
    fn merge_is_idempotent_and_order_independent() {
        let mut base = MembershipLog::new();
        base.set_local(ServerId::new(1), true);
        base.set_local(ServerId::new(2), true);
        let d1 = vec![
            MemberRecord { server: ServerId::new(2), version: 7, alive: false },
            MemberRecord { server: ServerId::new(3), version: 4, alive: true },
        ];
        let d2 = vec![
            MemberRecord { server: ServerId::new(3), version: 5, alive: false },
            MemberRecord { server: ServerId::new(4), version: 2, alive: true },
        ];
        let mut a = base.clone();
        a.merge(&d1);
        a.merge(&d1); // twice
        a.merge(&d2);
        let mut b = base.clone();
        b.merge(&d2); // other order
        b.merge(&d1);
        assert_eq!(a.records(), b.records());
        assert_eq!(a.alive_ids(), ids(&[1, 4]));
    }

    #[test]
    fn replicated_local_ops_enforce_log_view() {
        let replica = ReplicatedEngine::new(ReplicaId::new(0), config()).expect("valid");
        replica.join(ServerId::new(1)).expect("fresh");
        assert_eq!(
            replica.join(ServerId::new(1)).unwrap_err(),
            ServeError::Table(TableError::ServerAlreadyPresent(ServerId::new(1)))
        );
        assert_eq!(
            replica.leave(ServerId::new(9)).unwrap_err(),
            ServeError::Table(TableError::ServerNotFound(ServerId::new(9)))
        );
        replica.leave(ServerId::new(1)).expect("present");
        assert!(replica.member_ids().is_empty());
        // The tombstone survives for gossip.
        assert_eq!(replica.records().len(), 1);
        assert!(!replica.records()[0].alive);
    }

    #[test]
    fn merge_applies_through_the_epoch_path() {
        let a = ReplicatedEngine::new(ReplicaId::new(0), config()).expect("valid");
        let b = ReplicatedEngine::new(ReplicaId::new(1), config()).expect("valid");
        a.join(ServerId::new(1)).expect("fresh");
        a.join(ServerId::new(2)).expect("fresh");
        b.join(ServerId::new(3)).expect("fresh");
        let epochs_before: Vec<u64> =
            b.engine().snapshots().iter().map(|s| s.epoch).collect();
        let outcome = b.merge(&a.records()).expect("capacity fits");
        assert_eq!(outcome.joined, ids(&[1, 2]));
        assert!(outcome.left.is_empty());
        assert_eq!(b.member_ids(), ids(&[1, 2, 3]));
        // Reconciliation published exactly one new epoch per shard.
        for (snapshot, before) in b.engine().snapshots().iter().zip(epochs_before) {
            assert_eq!(snapshot.epoch, before + 1);
            assert_eq!(snapshot.member_ids(), ids(&[1, 2, 3]));
        }
        // A re-merge of the same records is a no-op: no epoch burned.
        let outcome = b.merge(&a.records()).expect("no-op");
        assert!(!outcome.changed_membership());
        assert_eq!(b.engine().snapshots()[0].member_ids(), ids(&[1, 2, 3]));
        // The other direction converges the pair.
        a.merge(&b.records()).expect("capacity fits");
        assert_eq!(a.member_ids(), b.member_ids());
        assert_eq!(a.shard_signatures(), b.shard_signatures());
    }

    #[test]
    fn capacity_overflow_wedges_visibly_and_recovers_on_shrink() {
        // Capacity 7 (codebook 8): each replica fits alone, the union
        // does not — the documented sizing mistake.
        let tiny = ServeConfig {
            shards: 1,
            workers: 1,
            batch_capacity: 8,
            queue_capacity: 64,
            dimension: 64,
            codebook_size: 8,
            seed: 5,
            scheduler: crate::SchedulerKind::default(),
            engine: Default::default(),
            trace: Default::default(),
        };
        let a = ReplicatedEngine::new(ReplicaId::new(0), tiny).expect("valid");
        let b = ReplicatedEngine::new(ReplicaId::new(1), tiny).expect("valid");
        for id in 0..5u64 {
            a.join(ServerId::new(id)).expect("fresh");
            b.join(ServerId::new(10 + id)).expect("fresh");
        }
        assert!(b.merge(&a.records()).is_err(), "union of 10 exceeds capacity 7");
        assert!(b.pending_reconcile(), "the wedge must be observable");
        // The log holds the merged view even though the engine trails it.
        assert_eq!(b.member_ids().len(), 10);
        // Enough leaves on A shrink the union under capacity; the next
        // merge retries the application and clears the wedge.
        for id in 0..4u64 {
            a.leave(ServerId::new(id)).expect("present");
        }
        b.merge(&a.records()).expect("union of 6 fits");
        assert!(!b.pending_reconcile());
        assert_eq!(b.member_ids().len(), 6);
        assert_eq!(b.engine().snapshots()[0].member_ids(), b.member_ids());
    }

    #[test]
    fn from_engine_seeds_the_log() {
        let engine = ServeEngine::new(config()).expect("valid");
        engine.join(ServerId::new(4)).expect("fresh");
        engine.join(ServerId::new(8)).expect("fresh");
        let replica = ReplicatedEngine::from_engine(ReplicaId::new(2), engine);
        assert_eq!(replica.id(), ReplicaId::new(2));
        assert_eq!(replica.member_ids(), ids(&[4, 8]));
        assert_eq!(
            replica.leave(ServerId::new(4)).expect("present").len(),
            replica.engine().shard_count()
        );
    }
}
