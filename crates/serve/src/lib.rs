//! # hdhash-serve — the sharded, batch-coalescing HD-hash serving layer
//!
//! The paper pitches the HD hash table as a dynamic hash table for
//! datacenter-scale request routing; everything below this crate is
//! single-caller, synchronous library code. `hdhash-serve` is the front
//! end that puts the workspace's three performance layers — the
//! zero-alloc batched lookup engine, the runtime-dispatched SIMD distance
//! kernels, and the incremental membership maintenance — under real
//! concurrent traffic:
//!
//! ```text
//!  generator ──► scheduler core ─► coalescing workers ─► shard 0 ─┐
//!  (emulator)    (SharedQueue |    (pick up to B jobs,  shard 1  ├─► metrics
//!   clients ──►   WorkStealing;     group by shard,     …        │   (depth,
//!   submit())     bounded, rejects  one batched lookup  shard N ─┘    fill,
//!   await/wait ◄  at capacity)      per shard per batch)            p50/p99)
//! ```
//!
//! * **Pluggable scheduler core** — the substrate between `submit` and
//!   the workers is the [`Scheduler`] trait, selected by
//!   [`ServeConfig::scheduler`]: [`scheduler::SharedQueue`] (one bounded
//!   MPMC queue) or [`scheduler::WorkStealing`] (bounded injector +
//!   per-worker deques with Chase–Lev batch stealing). Identical
//!   backpressure and consistency contracts, test-proven under both.
//! * **Batch coalescing** — worker threads pick fixed-capacity probe
//!   batches out of the scheduler and drive each shard's
//!   `HdHashTable::lookup_batch`, so the slot-deduplicated,
//!   cache-blocked scan path finally sees multi-client traffic instead
//!   of one synchronous caller.
//! * **Async-capable tickets** — [`Ticket`] resolves by blocking
//!   [`wait`](Ticket::wait), non-blocking
//!   [`try_response`](Ticket::try_response), or `.await` (it implements
//!   [`Future`](std::future::Future)); the vendored
//!   [`executor::block_on`] drives the future surface with no async
//!   runtime dependency.
//! * **Epoch-based reconfiguration** — each shard keeps a *shadow* table
//!   that joins and leaves mutate through the incremental
//!   counter-plane machinery (`MembershipCentroid`), then publishes an
//!   immutable snapshot behind an `Arc` pointer-swap. Readers clone the
//!   `Arc` and never wait on the reconfiguration work; every response
//!   reports the epoch it was served at.
//! * **Backpressure + metrics** — the bounded queue rejects at capacity
//!   (the caller sees [`ServeError::QueueFull`]), and per-shard counters
//!   plus a latency reservoir feed
//!   [`LatencyProfile`](hdhash_emulator::LatencyProfile)-based p50/p99
//!   snapshots.
//! * **Replica anti-entropy** — 2+ engines form a replica set:
//!   [`gossip`] nodes periodically advert per-shard membership
//!   *signatures* over a pluggable [`transport`], detect divergence with
//!   [`signature_diff`](hdhash_hdc::maintenance::signature_diff) (exact:
//!   identical memberships read distance 0), and reconcile only diverged
//!   state through a last-writer-wins record exchange ([`replication`])
//!   applied via the same shadow-table → epoch-publish path — replicas
//!   converge while readers keep streaming. Rounds advert to
//!   `min(fanout, peers)` deterministically selected peers, and a
//!   seen-through watermark exchange expires tombstones the whole peer
//!   set has acknowledged.
//! * **Failure model** — [`chaos`] decorates the transport with a
//!   seeded, scriptable fault plan (per-link drops, bounded delay,
//!   duplication, reordering, asymmetric partitions, crash/restart
//!   windows); the gossip layer answers with a heartbeat failure
//!   detector (per-peer [`PeerHealth`] steering fanout away from dead
//!   peers) and bounded jittered-backoff retry for in-flight sync
//!   exchanges — the chaos suite pins convergence-after-heal and
//!   no-resurrection under up to 50% loss.
//! * **Socket-native cluster** — [`wire`] frames every
//!   [`GossipMessage`] with a magic/version/CRC32 header (encoded length
//!   equals `wire_size`, property-tested), and [`tcp`] runs the same
//!   gossip over real loopback TCP: per-peer supervised writer threads
//!   with jittered exponential-backoff reconnect, read/write deadlines,
//!   partial/garbage-frame connection drops, and bounded drop-oldest
//!   outboxes for slow peers. The `hdhash-cli cluster` mode and
//!   `tests/cluster.rs` run ≥3 replica *processes* that reconverge to
//!   byte-identical signatures after a real SIGKILL + restart.
//!
//! ## Quick example
//!
//! ```
//! use hdhash_serve::{ServeConfig, ServeEngine};
//! use hdhash_table::{RequestKey, ServerId};
//!
//! let config = ServeConfig {
//!     shards: 2,
//!     workers: 2,
//!     dimension: 2048,
//!     codebook_size: 64,
//!     ..ServeConfig::default()
//! };
//! let mut engine = ServeEngine::new(config)?;
//! for id in 0..8 {
//!     engine.join(ServerId::new(id))?;
//! }
//! let ticket = engine.submit(RequestKey::new(42))?;
//! let response = ticket.wait();
//! assert!(response.result.is_ok());
//! assert!(response.epoch >= 1, "served from a published epoch");
//! engine.shutdown();
//! # Ok::<(), hdhash_serve::ServeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod config;
pub mod engine;
pub mod executor;
pub mod gossip;
pub mod load;
pub mod metrics;
pub mod replication;
pub mod request;
pub mod scenario;
pub mod scheduler;
pub mod shard;
pub mod tcp;
pub mod telemetry;
pub mod transport;
pub mod wire;

pub use chaos::{ChaosEndpoint, ChaosNetwork, ChaosStats, FaultPlan, LinkFaults};
pub use config::{SchedulerKind, ServeConfig};
pub use hdhash_hdc::{EngineOptions, MatrixLayout};
pub use engine::ServeEngine;
pub use executor::{block_on, block_on_timeout};
pub use gossip::{GossipConfig, GossipMessage, GossipMetrics, GossipNode, PeerHealth};
pub use load::{drive, drive_trace, LoadReport};
pub use metrics::{EngineMetrics, ShardMetricsSnapshot};
pub use replication::{MemberRecord, MembershipLog, ReplicatedEngine};
pub use request::{ServeResponse, Ticket};
pub use scenario::{
    ChurnShape, CrashSpec, PhaseMetrics, Scenario, ScenarioConfig, ScenarioReport,
};
pub use scheduler::Scheduler;
pub use shard::{ShardReceipt, ShardSnapshot};
pub use tcp::{TcpConfig, TcpEndpoint, TcpNetwork, TcpStats};
pub use transport::{InProcessNetwork, ReplicaId, Transport, TransportError};
pub use wire::{FrameError, FRAME_OVERHEAD};

// Telemetry surface: the tracing/export types callers wire through
// [`ServeConfig::trace`] and the unified snapshot exporters live in
// [`hdhash_obs`]; re-export the common ones so downstream code only
// needs this crate.
pub use hdhash_obs::{
    SpanKind, TelemetrySnapshot, TraceConfig, TraceEvent, Tracer, TracerStats,
};

use hdhash_table::TableError;

/// Errors surfaced by the serving layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The configuration failed validation (message names the field).
    InvalidConfig(String),
    /// The request queue is at capacity — backpressure; retry after
    /// draining or shed the request.
    QueueFull,
    /// The engine has begun shutting down and accepts no new requests.
    ShuttingDown,
    /// A membership operation failed on the underlying table.
    Table(TableError),
}

impl core::fmt::Display for ServeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ServeError::InvalidConfig(msg) => write!(f, "invalid serve config: {msg}"),
            ServeError::QueueFull => write!(f, "request queue at capacity"),
            ServeError::ShuttingDown => write!(f, "engine is shutting down"),
            ServeError::Table(e) => write!(f, "table operation failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<TableError> for ServeError {
    fn from(e: TableError) -> Self {
        ServeError::Table(e)
    }
}
