//! Serving-engine configuration.

use crate::ServeError;
use hdhash_hdc::EngineOptions;
use hdhash_obs::TraceConfig;

/// Which scheduling substrate moves accepted jobs to the worker threads
/// (see the [`scheduler`](crate::scheduler) module for the data flow of
/// each).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedulerKind {
    /// One bounded MPMC queue shared by every worker — the original
    /// engine behavior, and the right choice on few-core hosts where
    /// queue contention is not the bottleneck.
    #[default]
    SharedQueue,
    /// Per-worker local deques fed by a bounded injector, with Chase–Lev
    /// batch stealing between siblings — cuts shared-queue contention on
    /// many-core hosts.
    WorkStealing,
}

impl SchedulerKind {
    /// The substrate's canonical name (metrics, bench JSON, CLI flags).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            SchedulerKind::SharedQueue => "shared-queue",
            SchedulerKind::WorkStealing => "work-stealing",
        }
    }

    /// Parses a canonical name back into a kind (the bench/CLI flag
    /// surface). Accepts the hyphenated names of [`name`](Self::name)
    /// plus underscore spellings.
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "shared-queue" | "shared_queue" => Some(SchedulerKind::SharedQueue),
            "work-stealing" | "work_stealing" => Some(SchedulerKind::WorkStealing),
            _ => None,
        }
    }
}

/// Shape of a [`ServeEngine`](crate::ServeEngine): how many shards front
/// the traffic, how many workers coalesce it, and the HD-table geometry
/// each shard is built with.
///
/// Every field has a production-flavoured default; override with struct
/// update syntax:
///
/// ```
/// use hdhash_serve::ServeConfig;
///
/// let config = ServeConfig { shards: 8, workers: 4, ..ServeConfig::default() };
/// assert!(config.validate().is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Number of independent HD-hash shards. Requests are partitioned by
    /// key hash, so each shard sees a disjoint slice of the keyspace.
    pub shards: usize,
    /// Worker threads draining the shared queue into per-shard batches.
    pub workers: usize,
    /// Maximum jobs one worker drains into a single coalesced batch (the
    /// paper batches 256 requests per GPU dispatch; the CPU sweet spot is
    /// smaller).
    pub batch_capacity: usize,
    /// Bound of the MPMC request queue — the backpressure knob: a full
    /// queue rejects submissions with
    /// [`ServeError::QueueFull`].
    pub queue_capacity: usize,
    /// Hypervector dimension of every shard's table.
    pub dimension: usize,
    /// Codebook cardinality `n` of every shard's table.
    pub codebook_size: usize,
    /// Base seed; shard `i` derives its codebook from `seed + i`, so the
    /// shards' geometries are independent.
    pub seed: u64,
    /// The scheduling substrate between `submit` and the workers.
    pub scheduler: SchedulerKind,
    /// Lookup-engine construction options for every shard's table: matrix
    /// layout and scan block size. Fields left unset are autotuned per
    /// dimension; benches override them to A/B layouts
    /// (see [`hdhash_hdc::MatrixLayout`]).
    pub engine: EngineOptions,
    /// Request-path tracing (disabled by default; see
    /// [`hdhash_obs::Tracer`] and `docs/OBSERVABILITY.md`).
    pub trace: TraceConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            workers: 2,
            batch_capacity: 64,
            queue_capacity: 4096,
            dimension: 4096,
            codebook_size: 256,
            seed: 0x5E27E,
            scheduler: SchedulerKind::SharedQueue,
            engine: EngineOptions::default(),
            trace: TraceConfig::disabled(),
        }
    }
}

impl ServeConfig {
    /// Validates the structural fields (the HD-table geometry is validated
    /// again, more precisely, by `HdConfig` when the shards are built).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), ServeError> {
        let field_positive = [
            ("shards", self.shards),
            ("workers", self.workers),
            ("batch_capacity", self.batch_capacity),
            ("queue_capacity", self.queue_capacity),
            ("dimension", self.dimension),
            ("codebook_size", self.codebook_size),
        ];
        for (name, value) in field_positive {
            if value == 0 {
                return Err(ServeError::InvalidConfig(format!("{name} must be positive")));
            }
        }
        if self.dimension < 2 * self.codebook_size {
            return Err(ServeError::InvalidConfig(format!(
                "dimension {} must be at least 2 × codebook_size {}",
                self.dimension, self.codebook_size
            )));
        }
        if self.engine.row_block == Some(0) {
            return Err(ServeError::InvalidConfig("engine.row_block must be positive".into()));
        }
        if self.trace.enabled {
            if self.trace.sample_every == 0 {
                return Err(ServeError::InvalidConfig(
                    "trace.sample_every must be positive when tracing is enabled".into(),
                ));
            }
            if self.trace.ring_capacity == 0 {
                return Err(ServeError::InvalidConfig(
                    "trace.ring_capacity must be positive when tracing is enabled".into(),
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(ServeConfig::default().validate().is_ok());
    }

    #[test]
    fn zero_fields_are_rejected() {
        for field in 0..6 {
            let mut c = ServeConfig::default();
            match field {
                0 => c.shards = 0,
                1 => c.workers = 0,
                2 => c.batch_capacity = 0,
                3 => c.queue_capacity = 0,
                4 => c.dimension = 0,
                _ => c.codebook_size = 0,
            }
            assert!(matches!(c.validate(), Err(ServeError::InvalidConfig(_))), "field {field}");
        }
    }

    #[test]
    fn undersized_dimension_is_rejected() {
        let c = ServeConfig { dimension: 256, codebook_size: 256, ..ServeConfig::default() };
        assert!(matches!(c.validate(), Err(ServeError::InvalidConfig(_))));
    }

    #[test]
    fn scheduler_kind_names_roundtrip() {
        assert_eq!(SchedulerKind::default(), SchedulerKind::SharedQueue);
        for kind in [SchedulerKind::SharedQueue, SchedulerKind::WorkStealing] {
            assert_eq!(SchedulerKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(SchedulerKind::parse("work_stealing"), Some(SchedulerKind::WorkStealing));
        assert_eq!(SchedulerKind::parse("fifo"), None);
        // Any scheduler choice passes structural validation.
        let c = ServeConfig { scheduler: SchedulerKind::WorkStealing, ..ServeConfig::default() };
        assert!(c.validate().is_ok());
    }

    #[test]
    fn engine_options_validate_and_default_to_autotune() {
        use hdhash_hdc::MatrixLayout;
        assert_eq!(ServeConfig::default().engine, EngineOptions::default());
        let pinned = ServeConfig {
            engine: EngineOptions::default().with_layout(MatrixLayout::Interleaved),
            ..ServeConfig::default()
        };
        assert!(pinned.validate().is_ok());
        let zero_block = ServeConfig {
            engine: EngineOptions::default().with_row_block(0),
            ..ServeConfig::default()
        };
        assert!(matches!(zero_block.validate(), Err(ServeError::InvalidConfig(_))));
    }

    #[test]
    fn enabled_tracing_validates_its_knobs() {
        let good = ServeConfig { trace: TraceConfig::sampled(64), ..ServeConfig::default() };
        assert!(good.validate().is_ok());
        let zero_rate = ServeConfig {
            trace: TraceConfig { enabled: true, sample_every: 0, ring_capacity: 16 },
            ..ServeConfig::default()
        };
        assert!(matches!(zero_rate.validate(), Err(ServeError::InvalidConfig(_))));
        let zero_ring = ServeConfig {
            trace: TraceConfig { enabled: true, sample_every: 1, ring_capacity: 0 },
            ..ServeConfig::default()
        };
        assert!(matches!(zero_ring.validate(), Err(ServeError::InvalidConfig(_))));
        // Disabled tracing skips the knob checks entirely.
        let off = ServeConfig {
            trace: TraceConfig { enabled: false, sample_every: 0, ring_capacity: 0 },
            ..ServeConfig::default()
        };
        assert!(off.validate().is_ok());
    }
}
