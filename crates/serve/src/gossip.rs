//! Signature-driven anti-entropy gossip between replica engines.
//!
//! Replicas periodically advert their per-shard membership **signatures**
//! (`d` bits per shard, from the incremental majority centroid) instead of
//! member lists. A receiver compares the advert against its own signatures
//! with [`signature_diff`] — exact-zero distance for identical
//! memberships, so the check has **no false positives** — and only when a
//! shard diverges does the expensive payload move: a push–pull record
//! exchange ([`MemberRecord`]s, last-writer-wins semantics) that both
//! sides fold in through [`ReplicatedEngine::merge`], reconciling every
//! shard via the shadow-table → epoch-publish path. Readers never block on
//! a reconciliation.
//!
//! ```text
//!   A                                   B
//!   │ tick: Advert {sigs[shard]}        │
//!   ├──────────────────────────────────►│  compare via signature_diff
//!   │                                   │  (agree → done, 1 message)
//!   │      SyncRequest {records of B}   │
//!   │◄──────────────────────────────────┤  diverged → push B's records
//!   │ merge(B) ─ reconcile shards       │
//!   │ SyncResponse {merged records}     │
//!   ├──────────────────────────────────►│  merge(A∪B) ─ reconcile shards
//!   │                                   │
//! ```
//!
//! One full exchange converges a quiescent pair; under racing churn every
//! round re-adverts current state, so the protocol is memoryless across
//! rounds and self-heals lost or reordered messages.
//!
//! [`signature_diff`]: hdhash_hdc::maintenance::signature_diff

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hdhash_hdc::maintenance::signature_diff;
use hdhash_hdc::Hypervector;
use hdhash_obs::{SpanKind, Tracer};
use parking_lot::Mutex;

use crate::replication::{MemberRecord, ReplicatedEngine};
use crate::transport::{Envelope, ReplicaId, Transport};

/// The gossip wire protocol.
///
/// `wire_size` defines the byte accounting; the framed codec in
/// [`wire`](crate::wire) serializes to exactly this many bytes (a
/// property-tested invariant), so the in-process bytes-on-wire metrics
/// and the measured TCP byte counters describe the same protocol cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GossipMessage {
    /// Round opener: the sender's per-shard membership signatures.
    Advert {
        /// The sender's round counter (diagnostic only — anti-entropy is
        /// memoryless across rounds).
        round: u64,
        /// One signature per shard, in shard order.
        signatures: Vec<Hypervector>,
        /// Piggybacked seen-through confirmation: the highest capture
        /// LSN of the **destination's** log whose full record set the
        /// sender has merged — the tombstone-GC watermark input. `None`
        /// until a first sync exchange has happened.
        ack: Option<u64>,
    },
    /// The receiver detected divergence and pushes its records, pulling
    /// the sender's in return.
    SyncRequest {
        /// Echo of the advert round.
        round: u64,
        /// The requester's log LSN when `records` was captured — what
        /// the responder will acknowledge having seen through (LSNs, not
        /// Lamport versions: a record adopted late can carry an old
        /// version, but never an old LSN).
        stamp: u64,
        /// The requesting replica's full record set (with tombstones).
        records: Vec<MemberRecord>,
        /// Which shards' signatures diverged (diagnostic + accounting;
        /// membership is engine-global, so one record set covers all).
        diverged: Vec<usize>,
    },
    /// The advert sender's reply: its records *after* folding in the
    /// request's, so the requester converges in one merge.
    SyncResponse {
        /// Echo of the advert round.
        round: u64,
        /// The responder's log LSN when `records` was captured.
        stamp: u64,
        /// The merged record set.
        records: Vec<MemberRecord>,
    },
}

/// Message-frame header: 1 tag byte + 8 round bytes + 4 length bytes.
const FRAME_HEADER: usize = 13;
/// Per-signature header: 4 dimension bytes.
const SIGNATURE_HEADER: usize = 4;
/// Optional ack on adverts: 1 presence byte + 8 value bytes.
const ACK_FIELD: usize = 9;
/// Capture-LSN stamp on sync payloads: 8 bytes.
const STAMP_FIELD: usize = 8;

impl GossipMessage {
    /// Serialized size of this message under the documented framing.
    #[must_use]
    pub fn wire_size(&self) -> usize {
        match self {
            GossipMessage::Advert { signatures, .. } => {
                FRAME_HEADER
                    + ACK_FIELD
                    + signatures
                        .iter()
                        .map(|s| SIGNATURE_HEADER + s.word_len() * 8)
                        .sum::<usize>()
            }
            GossipMessage::SyncRequest { records, diverged, .. } => {
                FRAME_HEADER
                    + STAMP_FIELD
                    + 4
                    + diverged.len() * 2
                    + records.len() * MemberRecord::WIRE_SIZE
            }
            GossipMessage::SyncResponse { records, .. } => {
                FRAME_HEADER + STAMP_FIELD + records.len() * MemberRecord::WIRE_SIZE
            }
        }
    }
}

/// Tuning knobs of a [`GossipNode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GossipConfig {
    /// Scheduler-thread round period (ignored by explicit
    /// [`GossipNode::tick`] callers).
    pub period: Duration,
    /// Hamming threshold handed to `signature_diff`. Identical memberships
    /// read distance exactly 0, so `0` is the tightest sound setting; a
    /// small positive value only adds slack against future lossy
    /// signature compression.
    pub divergence_threshold: usize,
    /// Peers adverted per round: each tick selects
    /// `min(fanout, peer count)` peers with a deterministic
    /// `(replica, round)`-seeded shuffle, so per-round traffic is
    /// `O(fanout)` instead of `O(peers)` and the set still converges in
    /// `O(log N)` expected rounds (classic epidemic dissemination). The
    /// default (3) keeps today's full-mesh behavior for replica sets of
    /// up to 4 — in particular every ≤3-replica set is unchanged.
    pub fanout: usize,
    /// Failure detector: rounds without hearing from a peer before it is
    /// considered [`PeerHealth::Suspect`].
    pub suspect_after: u64,
    /// Failure detector: rounds without hearing from a peer before it is
    /// considered [`PeerHealth::Dead`] and excluded from fanout
    /// selection (probes still reach it — see
    /// [`probe_period`](Self::probe_period)).
    pub dead_after: u64,
    /// Every `probe_period`-th round redirects one fanout slot to a dead
    /// peer (round-robin over the dead set), so a healed peer or mended
    /// partition is re-detected instead of shunned forever.
    pub probe_period: u64,
    /// Retry: base backoff (in rounds) before an unanswered
    /// `SyncRequest` is retransmitted. Attempt `n` waits
    /// `base · 2ⁿ + jitter` rounds, with deterministic per-peer jitter
    /// in `0..base`.
    pub sync_retry_rounds: u64,
    /// Retry: retransmissions attempted before an in-flight sync is
    /// abandoned (counted in [`GossipMetrics::sync_abandoned`]; the next
    /// divergent advert starts a fresh exchange).
    pub sync_retry_cap: u32,
}

impl Default for GossipConfig {
    fn default() -> Self {
        Self {
            period: Duration::from_millis(50),
            divergence_threshold: 0,
            fanout: 3,
            suspect_after: 3,
            dead_after: 8,
            probe_period: 4,
            sync_retry_rounds: 2,
            sync_retry_cap: 3,
        }
    }
}

/// Failure-detector verdict on one peer, derived from how many rounds
/// have passed since a message from it was last received (never-heard
/// peers age from round 0). Any received message restores
/// [`Alive`](Self::Alive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerHealth {
    /// Heard from within [`GossipConfig::suspect_after`] rounds.
    Alive,
    /// Silent past `suspect_after` but within
    /// [`GossipConfig::dead_after`] rounds — still gossiped to.
    Suspect,
    /// Silent past `dead_after` rounds: excluded from fanout selection,
    /// reached only by periodic probes.
    Dead,
}

/// Monotone protocol counters, snapshotted by [`GossipNode::metrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GossipMetrics {
    /// Rounds opened (ticks).
    pub rounds: u64,
    /// Adverts sent to peers.
    pub adverts_sent: u64,
    /// Adverts received from peers.
    pub adverts_received: u64,
    /// Adverts whose comparison found at least one diverged shard.
    pub divergence_detections: u64,
    /// Total diverged shards across those detections.
    pub divergent_shards: u64,
    /// Sync requests sent (this node detected divergence).
    pub syncs_sent: u64,
    /// Sync requests received (peer detected divergence).
    pub syncs_received: u64,
    /// Remote records adopted by merges (superseded local state).
    pub records_adopted: u64,
    /// Members that joined / left through merges.
    pub members_joined: u64,
    /// Members removed through merges.
    pub members_left: u64,
    /// Protocol bytes sent, under the documented frame accounting.
    pub bytes_sent: u64,
    /// Protocol bytes received.
    pub bytes_received: u64,
    /// Sends refused by the transport (unknown/disconnected peer).
    pub send_failures: u64,
    /// Messages dropped as malformed (shard-count or dimension mismatch)
    /// plus merges the engine refused (capacity).
    pub protocol_errors: u64,
    /// Tombstones expired by the seen-through watermark GC.
    pub tombstones_expired: u64,
    /// Unanswered sync requests retransmitted after their backoff
    /// deadline expired.
    pub sync_retries: u64,
    /// In-flight syncs given up on after
    /// [`GossipConfig::sync_retry_cap`] retransmissions.
    pub sync_abandoned: u64,
    /// Bytes spent on retransmitted sync requests (already included in
    /// [`bytes_sent`](Self::bytes_sent); broken out so `bench_chaos` can
    /// report the retry overhead per scenario).
    pub retry_bytes: u64,
    /// Fanout slots redirected to dead peers by the periodic probe.
    pub probes_sent: u64,
    /// Peers currently [`PeerHealth::Alive`] (point-in-time, not
    /// monotone).
    pub peers_alive: u64,
    /// Peers currently [`PeerHealth::Suspect`] (point-in-time).
    pub peers_suspect: u64,
    /// Peers currently [`PeerHealth::Dead`] (point-in-time).
    pub peers_dead: u64,
}

#[derive(Debug, Default)]
struct Counters {
    rounds: AtomicU64,
    adverts_sent: AtomicU64,
    adverts_received: AtomicU64,
    divergence_detections: AtomicU64,
    divergent_shards: AtomicU64,
    syncs_sent: AtomicU64,
    syncs_received: AtomicU64,
    records_adopted: AtomicU64,
    members_joined: AtomicU64,
    members_left: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    send_failures: AtomicU64,
    protocol_errors: AtomicU64,
    tombstones_expired: AtomicU64,
    sync_retries: AtomicU64,
    sync_abandoned: AtomicU64,
    retry_bytes: AtomicU64,
    probes_sent: AtomicU64,
}

impl Counters {
    fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

/// One replica's gossip participant: owns the transport endpoint, knows
/// its peers, and runs rounds either explicitly ([`tick`](Self::tick) +
/// [`pump`](Self::pump), for deterministic tests and benches) or on a
/// scheduler thread ([`spawn`](Self::spawn)).
#[derive(Debug)]
pub struct GossipNode<T: Transport> {
    replica: Arc<ReplicatedEngine>,
    transport: T,
    peers: Vec<ReplicaId>,
    config: GossipConfig,
    round: AtomicU64,
    counters: Counters,
    /// Failure detector state: the local round at which each peer was
    /// last heard from (any message kind counts as a heartbeat — every
    /// round adverts, so silence is meaningful). Missing entry = never
    /// heard, aging from round 0.
    last_heard: Mutex<BTreeMap<ReplicaId, u64>>,
    /// In-flight sync exchanges awaiting a `SyncResponse`, keyed by the
    /// peer the request went to.
    outstanding: Mutex<BTreeMap<ReplicaId, OutstandingSync>>,
    /// Span sink for round / sync lifecycle events; disabled by default
    /// (every site is gated on [`Tracer::is_enabled`], so the cost is one
    /// branch per round when off). Install one with
    /// [`with_tracer`](Self::with_tracer).
    tracer: Arc<Tracer>,
}

/// Bookkeeping for one unanswered `SyncRequest`.
#[derive(Debug, Clone, Copy)]
struct OutstandingSync {
    /// Retransmissions performed so far.
    attempt: u32,
    /// Local round at which the next retransmission (or abandonment)
    /// fires.
    deadline: u64,
}

impl<T: Transport> GossipNode<T> {
    /// Wires a replica to its transport endpoint and peer list (`peers`
    /// should exclude the local replica; it is filtered regardless).
    #[must_use]
    pub fn new(
        replica: Arc<ReplicatedEngine>,
        transport: T,
        peers: Vec<ReplicaId>,
        config: GossipConfig,
    ) -> Self {
        let local = transport.local();
        let peers = peers.into_iter().filter(|&p| p != local).collect();
        Self {
            replica,
            transport,
            peers,
            config,
            round: AtomicU64::new(0),
            counters: Counters::default(),
            last_heard: Mutex::new(BTreeMap::new()),
            outstanding: Mutex::new(BTreeMap::new()),
            tracer: Arc::new(Tracer::disabled()),
        }
    }

    /// Installs a span sink for gossip lifecycle events (rounds, sync
    /// start / retry / complete / abandon). Builder-style so test and
    /// bench construction stays one expression.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> Self {
        self.tracer = tracer;
        self
    }

    /// The replica id gossip events report as their lane (trace lanes are
    /// `u32`; replica ids are small integers in practice).
    #[allow(clippy::cast_possible_truncation)]
    fn trace_lane(&self) -> u32 {
        self.transport.local().get() as u32
    }

    /// The replica this node gossips for.
    #[must_use]
    pub fn replica(&self) -> &ReplicatedEngine {
        &self.replica
    }

    /// Opens one round: adverts the current per-shard signatures to
    /// `min(fanout, peers)` deterministically selected peers (every peer
    /// on small sets — see [`GossipConfig::fanout`]). Cost per adverted
    /// peer is `shards · d` bits — member lists never move unless a
    /// signature disagrees. Each advert piggybacks the seen-through ack
    /// for its destination, and acknowledged tombstones are collected
    /// before the signatures are read.
    pub fn tick(&self) {
        let round = self.round.fetch_add(1, Ordering::Relaxed) + 1;
        Counters::add(&self.counters.rounds, 1);
        let traced = self.tracer.is_enabled();
        let round_started = traced.then(Instant::now);
        // Opportunistic GC: expire whatever the whole peer set has
        // acknowledged by now (cheap no-op when nothing qualifies). The
        // gate is the *full* peer set, dead peers included — expiring a
        // tombstone a dead peer never acknowledged could let its stale
        // record resurrect the member when it heals.
        let expired = self.replica.collect_tombstones(&self.peers);
        Counters::add(&self.counters.tombstones_expired, expired as u64);
        self.retry_expired_syncs(round);
        let targets = self.round_targets(round);
        let mut signatures = Some(self.replica.shard_signatures());
        for (i, &peer) in targets.iter().enumerate() {
            // The last peer takes ownership; earlier peers get clones, so
            // the common 2-replica set adverts without copying.
            let payload = if i + 1 == targets.len() {
                signatures.take().unwrap_or_default()
            } else {
                signatures.clone().unwrap_or_default()
            };
            let message = GossipMessage::Advert {
                round,
                signatures: payload,
                ack: self.replica.ack_for(peer),
            };
            if self.send(peer, message) {
                Counters::add(&self.counters.adverts_sent, 1);
            }
        }
        if let Some(started) = round_started {
            self.tracer.record_span(
                SpanKind::GossipRound,
                0,
                self.trace_lane(),
                round,
                targets.len() as u64,
                started,
            );
        }
    }

    /// The peers this round adverts to: all non-dead peers while their
    /// count is within `fanout`, otherwise `fanout` distinct non-dead
    /// peers drawn by a `(replica, round)`-seeded partial Fisher–Yates
    /// shuffle — deterministic (tests and benches can replay a round
    /// sequence), unbiased across rounds, and different per replica so
    /// two nodes don't mirror each other's choices.
    ///
    /// The failure detector shapes the pool: [`PeerHealth::Dead`] peers
    /// are excluded, except that every
    /// [`probe_period`](GossipConfig::probe_period)-th round redirects
    /// one slot to a dead peer (round-robin) so recovery is noticed. A
    /// fully dead pool falls back to every peer — an isolated node keeps
    /// gossiping blindly rather than going silent.
    fn round_targets(&self, round: u64) -> Vec<ReplicaId> {
        let (live, dead): (Vec<ReplicaId>, Vec<ReplicaId>) = self
            .peers
            .iter()
            .partition(|&&peer| self.health_at(peer, round) != PeerHealth::Dead);
        let all_dead = live.is_empty();
        let pool = if all_dead { self.peers.clone() } else { live };
        let k = self.config.fanout.min(pool.len());
        let mut targets = if k == pool.len() {
            pool
        } else {
            let mut pool = pool;
            let mut state = hdhash_hashfn::mix64(
                self.transport.local().get() ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            for i in 0..k {
                state = hdhash_hashfn::mix64(state.wrapping_add(0xD1B5_4A32_D192_ED03));
                #[allow(clippy::cast_possible_truncation)]
                let j = i + (state % (pool.len() - i) as u64) as usize;
                pool.swap(i, j);
            }
            pool.truncate(k);
            pool
        };
        if !all_dead
            && !dead.is_empty()
            && !targets.is_empty()
            && self.config.probe_period > 0
            && round.is_multiple_of(self.config.probe_period)
        {
            #[allow(clippy::cast_possible_truncation)]
            let probe = dead[((round / self.config.probe_period) as usize) % dead.len()];
            targets[0] = probe;
            Counters::add(&self.counters.probes_sent, 1);
        }
        targets
    }

    /// Detector verdict on `peer` as of the current round.
    #[must_use]
    pub fn peer_health(&self, peer: ReplicaId) -> PeerHealth {
        self.health_at(peer, self.round.load(Ordering::Relaxed))
    }

    /// Detector verdicts for every peer, in peer order.
    #[must_use]
    pub fn peer_states(&self) -> Vec<(ReplicaId, PeerHealth)> {
        let round = self.round.load(Ordering::Relaxed);
        self.peers.iter().map(|&p| (p, self.health_at(p, round))).collect()
    }

    fn health_at(&self, peer: ReplicaId, round: u64) -> PeerHealth {
        let heard = self.last_heard.lock().get(&peer).copied().unwrap_or(0);
        let elapsed = round.saturating_sub(heard);
        if elapsed <= self.config.suspect_after {
            PeerHealth::Alive
        } else if elapsed <= self.config.dead_after {
            PeerHealth::Suspect
        } else {
            PeerHealth::Dead
        }
    }

    /// Records a heartbeat: a message from `peer` arrived this round.
    fn note_heard(&self, peer: ReplicaId) {
        let round = self.round.load(Ordering::Relaxed);
        self.last_heard.lock().insert(peer, round);
    }

    /// Starts tracking an in-flight sync to `peer` (no-op if one is
    /// already outstanding — a retransmission chain is in progress).
    fn track_sync(&self, peer: ReplicaId) {
        let round = self.round.load(Ordering::Relaxed);
        let mut inserted = false;
        self.outstanding.lock().entry(peer).or_insert_with(|| {
            inserted = true;
            OutstandingSync { attempt: 0, deadline: round + self.retry_delay(peer, 0) }
        });
        if inserted && self.tracer.is_enabled() {
            self.tracer.record(SpanKind::SyncStart, 0, self.trace_lane(), peer.get(), round);
        }
    }

    /// Backoff before attempt `attempt`'s deadline: `base · 2^attempt`
    /// plus deterministic per-`(local, peer, attempt)` jitter in
    /// `0..base`, so a partitioned clique doesn't retransmit in
    /// lockstep.
    fn retry_delay(&self, peer: ReplicaId, attempt: u32) -> u64 {
        let base = self.config.sync_retry_rounds.max(1);
        let backoff = base << attempt.min(6);
        let jitter = hdhash_hashfn::mix64(
            self.transport.local().get()
                ^ peer.get().wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ u64::from(attempt),
        ) % base;
        backoff + jitter
    }

    /// Retransmits (or abandons) in-flight syncs whose deadline passed.
    /// Retransmissions carry a *fresh* capture of the local records —
    /// merge idempotence makes re-delivery harmless, and a newer capture
    /// can only help.
    fn retry_expired_syncs(&self, round: u64) {
        let mut retransmit = Vec::new();
        let mut abandoned = Vec::new();
        {
            let mut outstanding = self.outstanding.lock();
            let peers: Vec<ReplicaId> = outstanding.keys().copied().collect();
            for peer in peers {
                let Some(entry) = outstanding.get_mut(&peer) else { continue };
                if entry.deadline > round {
                    continue;
                }
                if entry.attempt >= self.config.sync_retry_cap {
                    let attempt = entry.attempt;
                    outstanding.remove(&peer);
                    abandoned.push((peer, attempt));
                } else {
                    entry.attempt += 1;
                    let attempt = entry.attempt;
                    entry.deadline = round + self.retry_delay(peer, attempt);
                    retransmit.push((peer, attempt));
                }
            }
        }
        Counters::add(&self.counters.sync_abandoned, abandoned.len() as u64);
        let traced = self.tracer.is_enabled();
        for &(peer, attempt) in &abandoned {
            if traced {
                self.tracer.record(
                    SpanKind::SyncAbandon,
                    0,
                    self.trace_lane(),
                    peer.get(),
                    u64::from(attempt),
                );
            }
        }
        for (peer, attempt) in retransmit {
            let (stamp, records) = self.replica.sync_payload();
            let message =
                GossipMessage::SyncRequest { round, stamp, records, diverged: Vec::new() };
            let bytes = message.wire_size() as u64;
            if self.send(peer, message) {
                Counters::add(&self.counters.sync_retries, 1);
                Counters::add(&self.counters.retry_bytes, bytes);
                if traced {
                    self.tracer.record(
                        SpanKind::SyncRetry,
                        0,
                        self.trace_lane(),
                        peer.get(),
                        u64::from(attempt),
                    );
                }
            }
        }
    }

    /// Drains and handles every pending incoming message; returns how
    /// many were processed (0 ⇒ the mailbox was idle).
    pub fn pump(&self) -> usize {
        let mut handled = 0;
        while let Some(envelope) = self.transport.try_recv() {
            self.handle(envelope);
            handled += 1;
        }
        handled
    }

    /// Point-in-time protocol counters (plus the detector's current
    /// per-state peer counts).
    #[must_use]
    pub fn metrics(&self) -> GossipMetrics {
        let round = self.round.load(Ordering::Relaxed);
        let mut peers_alive = 0;
        let mut peers_suspect = 0;
        let mut peers_dead = 0;
        for &peer in &self.peers {
            match self.health_at(peer, round) {
                PeerHealth::Alive => peers_alive += 1,
                PeerHealth::Suspect => peers_suspect += 1,
                PeerHealth::Dead => peers_dead += 1,
            }
        }
        let c = &self.counters;
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        GossipMetrics {
            rounds: load(&c.rounds),
            adverts_sent: load(&c.adverts_sent),
            adverts_received: load(&c.adverts_received),
            divergence_detections: load(&c.divergence_detections),
            divergent_shards: load(&c.divergent_shards),
            syncs_sent: load(&c.syncs_sent),
            syncs_received: load(&c.syncs_received),
            records_adopted: load(&c.records_adopted),
            members_joined: load(&c.members_joined),
            members_left: load(&c.members_left),
            bytes_sent: load(&c.bytes_sent),
            bytes_received: load(&c.bytes_received),
            send_failures: load(&c.send_failures),
            protocol_errors: load(&c.protocol_errors),
            tombstones_expired: load(&c.tombstones_expired),
            sync_retries: load(&c.sync_retries),
            sync_abandoned: load(&c.sync_abandoned),
            retry_bytes: load(&c.retry_bytes),
            probes_sent: load(&c.probes_sent),
            peers_alive,
            peers_suspect,
            peers_dead,
        }
    }

    /// Sends with byte/failure accounting; returns whether the transport
    /// accepted the message (callers count their own message kinds).
    fn send(&self, to: ReplicaId, message: GossipMessage) -> bool {
        let bytes = message.wire_size() as u64;
        match self.transport.send(to, message) {
            Ok(()) => {
                Counters::add(&self.counters.bytes_sent, bytes);
                true
            }
            Err(_) => {
                Counters::add(&self.counters.send_failures, 1);
                false
            }
        }
    }

    /// Shard indices whose signatures diverge from `remote`'s, or `None`
    /// when the advert is malformed (shard count / dimension mismatch —
    /// the peer runs an incompatible geometry).
    fn diverged_shards(&self, remote: &[Hypervector]) -> Option<Vec<usize>> {
        let local = self.replica.shard_signatures();
        if local.len() != remote.len() {
            return None;
        }
        let mut diverged = Vec::new();
        for (shard, (ours, theirs)) in local.iter().zip(remote).enumerate() {
            let delta =
                signature_diff(ours, theirs, self.config.divergence_threshold).ok()?;
            if delta.diverged {
                diverged.push(shard);
            }
        }
        Some(diverged)
    }

    /// Merges a full record set sent by `from`, captured at `from`'s log
    /// LSN `stamp` — the merge doubles as the "seen through `stamp`"
    /// evidence the watermark exchange acknowledges back.
    fn merge_from(&self, from: ReplicaId, stamp: u64, records: &[MemberRecord]) {
        match self.replica.merge_from(from, stamp, records) {
            Ok(outcome) => {
                Counters::add(&self.counters.records_adopted, outcome.adopted as u64);
                Counters::add(&self.counters.members_joined, outcome.joined.len() as u64);
                Counters::add(&self.counters.members_left, outcome.left.len() as u64);
            }
            Err(_) => Counters::add(&self.counters.protocol_errors, 1),
        }
    }

    fn handle(&self, envelope: Envelope) {
        let Envelope { from, message } = envelope;
        Counters::add(&self.counters.bytes_received, message.wire_size() as u64);
        // Any message is a heartbeat: the detector only measures silence.
        self.note_heard(from);
        match message {
            GossipMessage::Advert { round, signatures, ack } => {
                Counters::add(&self.counters.adverts_received, 1);
                if let Some(seen_through) = ack {
                    // The peer confirms it merged our records through our
                    // clock `seen_through` — watermark input for GC.
                    self.replica.record_ack(from, seen_through);
                }
                let Some(diverged) = self.diverged_shards(&signatures) else {
                    Counters::add(&self.counters.protocol_errors, 1);
                    return;
                };
                if diverged.is_empty() {
                    // Replicas agree — 1 message, d·shards bits. An
                    // in-flight sync to this peer became moot.
                    self.outstanding.lock().remove(&from);
                    return;
                }
                Counters::add(&self.counters.divergence_detections, 1);
                Counters::add(&self.counters.divergent_shards, diverged.len() as u64);
                let (stamp, records) = self.replica.sync_payload();
                let message = GossipMessage::SyncRequest { round, stamp, records, diverged };
                if self.send(from, message) {
                    Counters::add(&self.counters.syncs_sent, 1);
                    self.track_sync(from);
                }
            }
            GossipMessage::SyncRequest { round, stamp, records, .. } => {
                Counters::add(&self.counters.syncs_received, 1);
                self.merge_from(from, stamp, &records);
                // The reply ships the *merged* records so the requester
                // converges in one merge; it counts toward bytes only —
                // the request/response pair is one sync exchange.
                let (stamp, records) = self.replica.sync_payload();
                let message = GossipMessage::SyncResponse { round, stamp, records };
                self.send(from, message);
            }
            GossipMessage::SyncResponse { round, stamp, records } => {
                // The exchange completed; stop any retransmission chain.
                let was_tracked = self.outstanding.lock().remove(&from).is_some();
                if was_tracked && self.tracer.is_enabled() {
                    self.tracer.record(SpanKind::SyncComplete, 0, self.trace_lane(), from.get(), round);
                }
                self.merge_from(from, stamp, &records);
            }
        }
    }
}

impl<T: Transport + Sync + 'static> GossipNode<T> {
    /// Moves the node onto a scheduler thread: between ticks (every
    /// `config.period`) it blocks on the transport and handles incoming
    /// traffic. Stop (and get the node back, e.g. for final metrics) with
    /// [`GossipHandle::stop`].
    #[must_use]
    pub fn spawn(self) -> GossipHandle<T> {
        let node = Arc::new(self);
        let worker = Arc::clone(&node);
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name(format!("hdhash-gossip-{}", node.transport.local()))
            .spawn(move || {
                while !flag.load(Ordering::Acquire) {
                    worker.tick();
                    let deadline = Instant::now() + worker.config.period;
                    loop {
                        let now = Instant::now();
                        if now >= deadline || flag.load(Ordering::Acquire) {
                            break;
                        }
                        if let Some(envelope) = worker.transport.recv_timeout(deadline - now)
                        {
                            worker.handle(envelope);
                        }
                    }
                }
                // Final drain so an in-flight push–pull settles.
                worker.pump();
            })
            .expect("spawn gossip scheduler");
        GossipHandle { node, stop, thread }
    }
}

/// Handle on a spawned gossip scheduler thread. The node itself stays
/// shared (`Arc`), so [`node`](Self::node) gives a live view — metrics,
/// peer states, trace drains — while the scheduler keeps running.
#[derive(Debug)]
pub struct GossipHandle<T: Transport> {
    node: Arc<GossipNode<T>>,
    stop: Arc<AtomicBool>,
    thread: std::thread::JoinHandle<()>,
}

impl<T: Transport> GossipHandle<T> {
    /// Live view of the running node — read metrics or peer health
    /// without stopping the scheduler.
    #[must_use]
    pub fn node(&self) -> &GossipNode<T> {
        &self.node
    }

    /// A shared handle on the running node, for observers (metrics
    /// dumpers) that outlive this borrow but not the scheduler.
    #[must_use]
    pub fn shared_node(&self) -> Arc<GossipNode<T>> {
        Arc::clone(&self.node)
    }

    /// Signals the scheduler to stop and returns the node after its final
    /// drain.
    ///
    /// # Panics
    ///
    /// Panics if the scheduler thread itself panicked.
    #[must_use]
    pub fn stop(self) -> Arc<GossipNode<T>> {
        self.stop.store(true, Ordering::Release);
        self.thread.join().expect("gossip scheduler panicked");
        self.node
    }
}

/// Whether every replica pair reads byte-identical per-shard signatures
/// (and, by the centroid's purity, identical memberships at the slot
/// level).
#[must_use]
pub fn converged(replicas: &[&ReplicatedEngine]) -> bool {
    let Some((first, rest)) = replicas.split_first() else {
        return true;
    };
    let reference = first.shard_signatures();
    rest.iter().all(|r| r.shard_signatures() == reference)
}

/// Drives one explicit round across a node set: every node adverts
/// ([`tick`](GossipNode::tick)), then the set pumps until no message is
/// in flight. The single round primitive behind [`run_until_converged`],
/// the CLI `replicate` demo and `bench_gossip` — callers that want to
/// observe per-round state (signature distance, metrics) call this in
/// their own loop.
pub fn run_round<T: Transport>(nodes: &[GossipNode<T>]) {
    for node in nodes {
        node.tick();
    }
    loop {
        let moved: usize = nodes.iter().map(GossipNode::pump).sum();
        if moved == 0 {
            break;
        }
    }
}

/// Drives explicit rounds ([`run_round`]) until [`converged`] or
/// `max_rounds` is spent. Returns the number of rounds used. The
/// deterministic harness for tests and `bench_gossip`.
#[must_use]
pub fn run_until_converged<T: Transport>(
    nodes: &[GossipNode<T>],
    max_rounds: usize,
) -> Option<usize> {
    let replicas: Vec<&ReplicatedEngine> = nodes.iter().map(|n| n.replica()).collect();
    if converged(&replicas) {
        return Some(0);
    }
    for round in 1..=max_rounds {
        run_round(nodes);
        if converged(&replicas) {
            return Some(round);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::InProcessNetwork;
    use crate::ServeConfig;
    use hdhash_table::ServerId;

    fn config(shards: usize) -> ServeConfig {
        ServeConfig {
            shards,
            workers: 1,
            batch_capacity: 16,
            queue_capacity: 128,
            dimension: 2048,
            codebook_size: 64,
            seed: 31,
            scheduler: crate::SchedulerKind::default(),
            engine: Default::default(),
            trace: Default::default(),
        }
    }

    fn pair(shards: usize) -> Vec<GossipNode<crate::transport::InProcessEndpoint>> {
        let network = InProcessNetwork::new();
        (0..2u64)
            .map(|i| {
                let id = ReplicaId::new(i);
                let endpoint = network.endpoint(id);
                let replica = Arc::new(
                    ReplicatedEngine::new(id, config(shards)).expect("valid config"),
                );
                GossipNode::new(
                    replica,
                    endpoint,
                    vec![ReplicaId::new(0), ReplicaId::new(1)],
                    GossipConfig::default(),
                )
            })
            .collect()
    }

    #[test]
    fn wire_size_accounts_for_payloads() {
        let sig = Hypervector::zeros(2048); // 32 words
        let advert = GossipMessage::Advert {
            round: 1,
            signatures: vec![sig.clone(), sig],
            ack: Some(4),
        };
        assert_eq!(advert.wire_size(), 13 + 9 + 2 * (4 + 32 * 8));
        let record = MemberRecord { server: ServerId::new(1), version: 2, alive: true };
        let request = GossipMessage::SyncRequest {
            round: 1,
            stamp: 9,
            records: vec![record; 3],
            diverged: vec![0, 1],
        };
        assert_eq!(request.wire_size(), 13 + 8 + 4 + 2 * 2 + 3 * 17);
        let response =
            GossipMessage::SyncResponse { round: 1, stamp: 9, records: vec![record] };
        assert_eq!(response.wire_size(), 13 + 8 + 17);
    }

    #[test]
    fn agreeing_replicas_exchange_only_adverts() {
        let nodes = pair(2);
        for node in &nodes {
            node.replica().join(ServerId::new(7)).expect("fresh");
        }
        assert_eq!(run_until_converged(&nodes, 4), Some(0), "already converged");
        nodes[0].tick();
        while nodes.iter().map(GossipNode::pump).sum::<usize>() > 0 {}
        let m0 = nodes[0].metrics();
        let m1 = nodes[1].metrics();
        assert_eq!(m0.adverts_sent, 1);
        assert_eq!(m1.adverts_received, 1);
        assert_eq!(m1.divergence_detections, 0);
        assert_eq!(m1.syncs_sent, 0);
        assert_eq!(m0.records_adopted + m1.records_adopted, 0);
        // Advert cost only: shards · (4 + d/8) + header + ack field.
        assert_eq!(m0.bytes_sent, 13 + 9 + 2 * (4 + 2048 / 8));
    }

    #[test]
    fn diverged_replicas_converge_in_one_round() {
        let nodes = pair(2);
        nodes[0].replica().join(ServerId::new(1)).expect("fresh");
        nodes[0].replica().join(ServerId::new(2)).expect("fresh");
        nodes[1].replica().join(ServerId::new(3)).expect("fresh");
        assert_eq!(run_until_converged(&nodes, 8), Some(1));
        let want: Vec<ServerId> = [1u64, 2, 3].into_iter().map(ServerId::new).collect();
        for node in &nodes {
            assert_eq!(node.replica().member_ids(), want);
        }
        let total = |f: fn(&GossipMetrics) -> u64| -> u64 {
            nodes.iter().map(|n| f(&n.metrics())).sum()
        };
        assert!(total(|m| m.divergence_detections) >= 1);
        assert!(total(|m| m.syncs_sent) >= 1);
        assert_eq!(total(|m| m.members_joined), 3, "1+2 to B, 3 to A");
        assert_eq!(total(|m| m.bytes_sent), total(|m| m.bytes_received));
        assert_eq!(total(|m| m.protocol_errors), 0);
    }

    #[test]
    fn leaves_propagate_as_tombstones() {
        let nodes = pair(1);
        nodes[0].replica().join(ServerId::new(1)).expect("fresh");
        nodes[0].replica().join(ServerId::new(2)).expect("fresh");
        assert!(run_until_converged(&nodes, 8).is_some());
        // A removal on one replica wins over the other's live record.
        nodes[1].replica().leave(ServerId::new(1)).expect("present");
        assert_eq!(run_until_converged(&nodes, 8), Some(1));
        let want = vec![ServerId::new(2)];
        for node in &nodes {
            assert_eq!(node.replica().member_ids(), want);
        }
    }

    #[test]
    fn fanout_selects_min_of_knob_and_peers_deterministically() {
        let network = InProcessNetwork::new();
        let peers: Vec<ReplicaId> = (0..9u64).map(ReplicaId::new).collect();
        let build = |fanout: usize| {
            let id = ReplicaId::new(0);
            GossipNode::new(
                Arc::new(ReplicatedEngine::new(id, config(1)).expect("valid config")),
                network.endpoint(id),
                peers.clone(),
                GossipConfig { fanout, ..GossipConfig::default() },
            )
        };
        // Fanout ≥ peers: full mesh, peer order preserved.
        let full = build(64);
        assert_eq!(full.round_targets(1), full.peers);
        assert_eq!(full.round_targets(1).len(), 8, "self filtered out");
        // Restricted fanout: exactly `fanout` distinct peers, stable for
        // a given round, different across rounds.
        let node = build(3);
        let round1 = node.round_targets(1);
        assert_eq!(round1.len(), 3);
        assert_eq!(round1, node.round_targets(1), "same round ⇒ same targets");
        let distinct: std::collections::HashSet<_> = round1.iter().collect();
        assert_eq!(distinct.len(), 3, "targets must be distinct");
        assert!(!round1.contains(&ReplicaId::new(0)), "never adverts to self");
        let varied = (1..40u64).map(|r| node.round_targets(r)).collect::<Vec<_>>();
        assert!(varied.iter().any(|t| t != &round1), "rounds must vary targets");
        // Every peer is eventually selected (unbiased over rounds).
        let mut seen = std::collections::HashSet::new();
        for targets in &varied {
            seen.extend(targets.iter().copied());
        }
        assert_eq!(seen.len(), 8, "all peers reached across rounds");
    }

    #[test]
    fn restricted_fanout_still_converges_a_pair() {
        let network = InProcessNetwork::new();
        let peers = vec![ReplicaId::new(0), ReplicaId::new(1)];
        let nodes: Vec<_> = (0..2u64)
            .map(|i| {
                let id = ReplicaId::new(i);
                GossipNode::new(
                    Arc::new(ReplicatedEngine::new(id, config(2)).expect("valid config")),
                    network.endpoint(id),
                    peers.clone(),
                    GossipConfig { fanout: 1, ..GossipConfig::default() },
                )
            })
            .collect();
        nodes[0].replica().join(ServerId::new(1)).expect("fresh");
        nodes[1].replica().join(ServerId::new(2)).expect("fresh");
        assert_eq!(run_until_converged(&nodes, 8), Some(1));
    }

    #[test]
    fn tombstones_are_garbage_collected_after_watermark_acks() {
        let nodes = pair(1);
        nodes[0].replica().join(ServerId::new(1)).expect("fresh");
        nodes[0].replica().join(ServerId::new(2)).expect("fresh");
        assert!(run_until_converged(&nodes, 8).is_some());
        nodes[0].replica().leave(ServerId::new(1)).expect("present");
        assert!(run_until_converged(&nodes, 8).is_some());
        // Converged with a tombstone on both sides.
        for node in &nodes {
            assert_eq!(node.replica().records().len(), 2, "live + tombstone");
        }
        // Two more advert rounds move the piggybacked acks (sync merges
        // already recorded seen-through on both sides); the tick-time GC
        // then drops the tombstone everywhere.
        for _ in 0..3 {
            run_round(&nodes);
        }
        let expired: u64 = nodes.iter().map(|n| n.metrics().tombstones_expired).sum();
        assert!(expired >= 2, "tombstone must expire on both replicas ({expired})");
        for node in &nodes {
            assert_eq!(node.replica().records().len(), 1, "tombstone collected");
            assert_eq!(node.replica().member_ids(), vec![ServerId::new(2)]);
        }
        // GC must not resurrect: further rounds keep the member dead and
        // the set converged.
        assert_eq!(run_until_converged(&nodes, 4), Some(0));
        for node in &nodes {
            assert!(!node.replica().member_ids().contains(&ServerId::new(1)));
        }
        // A fresh join of the same id still works (new version).
        nodes[0].replica().join(ServerId::new(1)).expect("fresh join after GC");
        assert!(run_until_converged(&nodes, 8).is_some());
        for node in &nodes {
            assert!(node.replica().member_ids().contains(&ServerId::new(1)));
        }
    }

    #[test]
    fn failure_detector_follows_silence_and_recovers() {
        let nodes = pair(1);
        let peer = ReplicaId::new(1);
        let cfg = nodes[0].config;
        assert_eq!(nodes[0].peer_health(peer), PeerHealth::Alive, "grace at round 0");
        // Silence: node 0 ticks alone, never hearing from node 1.
        for _ in 0..cfg.suspect_after + 1 {
            nodes[0].tick();
        }
        assert_eq!(nodes[0].peer_health(peer), PeerHealth::Suspect);
        while nodes[0].round.load(Ordering::Relaxed) <= cfg.dead_after {
            nodes[0].tick();
        }
        nodes[0].tick();
        assert_eq!(nodes[0].peer_health(peer), PeerHealth::Dead);
        let m = nodes[0].metrics();
        assert_eq!(m.peers_dead, 1);
        assert_eq!(m.peers_alive, 0);
        // Any received message revives the peer.
        nodes[1].tick();
        nodes[0].pump();
        assert_eq!(nodes[0].peer_health(peer), PeerHealth::Alive);
        assert_eq!(nodes[0].metrics().peers_alive, 1);
        assert_eq!(nodes[0].peer_states(), vec![(peer, PeerHealth::Alive)]);
    }

    #[test]
    fn round_targets_steer_away_from_dead_peers_but_probe_them() {
        let network = InProcessNetwork::new();
        let id = ReplicaId::new(0);
        let peers: Vec<ReplicaId> = (0..4u64).map(ReplicaId::new).collect();
        let node = GossipNode::new(
            Arc::new(ReplicatedEngine::new(id, config(1)).expect("valid config")),
            network.endpoint(id),
            peers,
            GossipConfig { fanout: 3, ..GossipConfig::default() },
        );
        // Peers 1 and 2 were heard recently; peer 3 has been silent since
        // round 0 and is long dead by round 20.
        node.round.store(20, Ordering::Relaxed);
        node.note_heard(ReplicaId::new(1));
        node.note_heard(ReplicaId::new(2));
        assert_eq!(node.peer_health(ReplicaId::new(3)), PeerHealth::Dead);
        // Non-probe round: the dead peer is excluded even though fanout
        // has room for it.
        let targets = node.round_targets(21);
        assert_eq!(targets, vec![ReplicaId::new(1), ReplicaId::new(2)]);
        // Probe round (divisible by probe_period): one slot redirects to
        // the dead peer.
        let probe_round = 24;
        let targets = node.round_targets(probe_round);
        assert!(targets.contains(&ReplicaId::new(3)), "probe must reach the dead peer");
        assert!(node.metrics().probes_sent >= 1);
        // All peers dead: fall back to blind gossip over everyone.
        node.round.store(200, Ordering::Relaxed);
        let targets = node.round_targets(201);
        assert_eq!(targets.len(), 3, "fanout-capped blind selection");
    }

    #[test]
    fn unanswered_syncs_retry_with_backoff_then_abandon() {
        let nodes = pair(2);
        // Divergence: node 0 has a member node 1 lacks.
        nodes[0].replica().join(ServerId::new(1)).expect("fresh");
        // Node 1 adverts; node 0 detects divergence and sends a
        // SyncRequest that node 1 never answers (it stops pumping).
        nodes[1].tick();
        nodes[0].pump();
        assert_eq!(nodes[0].metrics().syncs_sent, 1);
        assert_eq!(nodes[0].outstanding.lock().len(), 1);
        // Node 0 keeps ticking into silence; the retransmission chain
        // runs its course.
        let cfg = nodes[0].config;
        for _ in 0..8 * cfg.sync_retry_rounds * (1 << cfg.sync_retry_cap) {
            nodes[0].tick();
        }
        let m = nodes[0].metrics();
        assert_eq!(m.sync_retries, u64::from(cfg.sync_retry_cap), "capped retransmissions");
        assert_eq!(m.sync_abandoned, 1, "chain abandoned after the cap");
        assert!(m.retry_bytes > 0, "retry traffic is accounted");
        assert!(nodes[0].outstanding.lock().is_empty(), "no tracking leak");
        // The divergence is not lost: once node 1 answers again, the
        // normal advert cycle converges the pair.
        assert!(run_until_converged(&nodes, 8).is_some());
        assert_eq!(nodes[1].replica().member_ids(), vec![ServerId::new(1)]);
    }

    #[test]
    fn sync_response_clears_the_retransmission_chain() {
        let nodes = pair(2);
        nodes[0].replica().join(ServerId::new(9)).expect("fresh");
        assert_eq!(run_until_converged(&nodes, 8), Some(1));
        // The full exchange completed inside the round: nothing is left
        // outstanding and nothing was retried.
        for node in &nodes {
            assert!(node.outstanding.lock().is_empty());
            let m = node.metrics();
            assert_eq!(m.sync_retries, 0);
            assert_eq!(m.sync_abandoned, 0);
        }
    }

    #[test]
    fn mismatched_shard_geometry_is_rejected() {
        let network = InProcessNetwork::new();
        let build = |i: u64, shards: usize| {
            let id = ReplicaId::new(i);
            GossipNode::new(
                Arc::new(ReplicatedEngine::new(id, config(shards)).expect("valid config")),
                network.endpoint(id),
                vec![ReplicaId::new(0), ReplicaId::new(1)],
                GossipConfig::default(),
            )
        };
        let a = build(0, 1);
        let b = build(1, 2);
        a.replica().join(ServerId::new(1)).expect("fresh");
        a.tick();
        b.pump();
        assert_eq!(b.metrics().protocol_errors, 1);
        assert_eq!(b.metrics().syncs_sent, 0, "malformed advert must not sync");
    }

    #[test]
    fn scheduler_thread_converges_and_returns_the_node() {
        let network = InProcessNetwork::new();
        let gossip_config =
            GossipConfig { period: Duration::from_millis(2), ..GossipConfig::default() };
        let peers = vec![ReplicaId::new(0), ReplicaId::new(1)];
        let build = |i: u64| {
            let id = ReplicaId::new(i);
            let replica = Arc::new(
                ReplicatedEngine::new(id, config(2)).expect("valid config"),
            );
            (
                Arc::clone(&replica),
                GossipNode::new(replica, network.endpoint(id), peers.clone(), gossip_config),
            )
        };
        let (a_replica, a) = build(0);
        let (b_replica, b) = build(1);
        a_replica.join(ServerId::new(10)).expect("fresh");
        b_replica.join(ServerId::new(20)).expect("fresh");
        let handles = [a.spawn(), b.spawn()];
        let deadline = Instant::now() + Duration::from_secs(10);
        while !converged(&[&a_replica, &b_replica]) {
            assert!(Instant::now() < deadline, "gossip threads failed to converge");
            std::thread::sleep(Duration::from_millis(2));
        }
        let [a, b] = handles.map(GossipHandle::stop);
        assert_eq!(a.replica().member_ids(), b.replica().member_ids());
        assert!(a.metrics().rounds >= 1);
        assert!(b.metrics().adverts_received >= 1);
    }
}
