//! A minimal block-on executor: the vendored bridge between the engine's
//! async-capable [`Ticket`](crate::Ticket) surface and synchronous
//! callers.
//!
//! The offline build environment cannot pull an async runtime, and the
//! serving layer does not need one: its futures are completion cells
//! filled by worker threads, so the only executor duty is *waiting
//! efficiently*. [`block_on`] does exactly that — it polls the future on
//! the calling thread and parks between polls, with a [`Waker`] that
//! unparks the thread when a worker fills the cell. No task queue, no
//! reactor, no spawning: producers that want real concurrency submit many
//! tickets first and await them in any order (completion cells resolve
//! independently, so the await order never blocks the workers).
//!
//! Anything `Future` works, not just tickets — combinator-style async
//! blocks in examples and tests run on it unchanged. Swapping in tokio or
//! smol later is a call-site change only; nothing in the engine knows
//! which executor drives its tickets.

use std::future::Future;
use std::pin::pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};
use std::thread::Thread;

/// Wakes the blocked thread: `wake` flags progress and unparks.
#[derive(Debug)]
struct ThreadWaker {
    thread: Thread,
    /// Set by `wake`, consumed by the parked loop — survives the race
    /// where the wake lands between a `Pending` poll and the park.
    woken: AtomicBool,
}

impl Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.woken.store(true, Ordering::Release);
        self.thread.unpark();
    }
}

std::thread_local! {
    /// Cached waker state, one allocation per thread instead of one per
    /// `block_on` call — closed-loop reapers await tens of thousands of
    /// tickets, and the allocation was measurable in `bench_serve`.
    /// Taken for the duration of a `block_on` and restored on exit, so a
    /// re-entrant call (a future that itself calls `block_on`) finds the
    /// cell empty and allocates fresh state rather than sharing — two
    /// nested waits consuming one `woken` flag could lose a wakeup.
    static WAKER_CACHE: std::cell::Cell<Option<Arc<ThreadWaker>>> =
        const { std::cell::Cell::new(None) };
}

/// Restores the cached waker state on scope exit (including panics in
/// `poll`).
struct CacheRestore(Option<Arc<ThreadWaker>>);

impl Drop for CacheRestore {
    fn drop(&mut self) {
        if let Some(state) = self.0.take() {
            WAKER_CACHE.with(|cell| cell.set(Some(state)));
        }
    }
}

/// Drives `future` to completion on the calling thread, parking between
/// polls.
///
/// # Examples
///
/// Awaiting a submitted lookup without an async runtime:
///
/// ```
/// use hdhash_serve::{executor, ServeConfig, ServeEngine};
/// use hdhash_table::{RequestKey, ServerId};
///
/// let mut engine = ServeEngine::new(ServeConfig {
///     shards: 1,
///     workers: 1,
///     dimension: 2048,
///     codebook_size: 64,
///     ..ServeConfig::default()
/// })?;
/// engine.join(ServerId::new(9))?;
/// // Submit a burst, then await the tickets in an async block — the
/// // workers fill the cells concurrently while this thread parks.
/// let tickets: Vec<_> = (0..4u64)
///     .map(|k| engine.submit(RequestKey::new(k)))
///     .collect::<Result<_, _>>()?;
/// let served = executor::block_on(async {
///     let mut served = 0;
///     for ticket in tickets {
///         let response = ticket.await;
///         assert_eq!(response.result, Ok(ServerId::new(9)));
///         served += 1;
///     }
///     served
/// });
/// assert_eq!(served, 4);
/// engine.shutdown();
/// # Ok::<(), hdhash_serve::ServeError>(())
/// ```
pub fn block_on<F: Future>(future: F) -> F::Output {
    let state = WAKER_CACHE.with(std::cell::Cell::take).unwrap_or_else(|| {
        Arc::new(ThreadWaker { thread: std::thread::current(), woken: AtomicBool::new(false) })
    });
    // A stale flag from a late wake of a previous call would only cost a
    // spurious re-poll, but start clean anyway.
    state.woken.store(false, Ordering::Relaxed);
    let restore = CacheRestore(Some(Arc::clone(&state)));
    let waker = Waker::from(Arc::clone(&state));
    let mut cx = Context::from_waker(&waker);
    let mut future = pin!(future);
    loop {
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(value) => {
                drop(restore); // put the waker state back for the next call
                return value;
            }
            Poll::Pending => {
                // Park until the waker fires; `park` may return
                // spuriously, so loop on the flag.
                while !state.woken.swap(false, Ordering::Acquire) {
                    std::thread::park();
                }
            }
        }
    }
}

/// Drives `future` until it resolves or `timeout` elapses, parking
/// between polls. Returns `None` on expiry — the future is dropped, so a
/// pending [`Ticket`](crate::Ticket) is simply abandoned (its cell fill
/// becomes a no-op for every observer).
///
/// The chaos harness and the bounded load reaper use this to survive a
/// worker that never answers: a lost response costs one timeout instead
/// of a hung test.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use hdhash_serve::executor::block_on_timeout;
///
/// // A ready future resolves well inside any deadline.
/// assert_eq!(block_on_timeout(async { 7 }, Duration::from_secs(1)), Some(7));
/// // A future that never resolves times out.
/// assert_eq!(
///     block_on_timeout(std::future::pending::<()>(), Duration::from_millis(5)),
///     None,
/// );
/// ```
pub fn block_on_timeout<F: Future>(future: F, timeout: std::time::Duration) -> Option<F::Output> {
    let deadline = std::time::Instant::now() + timeout;
    let state = WAKER_CACHE.with(std::cell::Cell::take).unwrap_or_else(|| {
        Arc::new(ThreadWaker { thread: std::thread::current(), woken: AtomicBool::new(false) })
    });
    state.woken.store(false, Ordering::Relaxed);
    let restore = CacheRestore(Some(Arc::clone(&state)));
    let waker = Waker::from(Arc::clone(&state));
    let mut cx = Context::from_waker(&waker);
    let mut future = pin!(future);
    loop {
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(value) => {
                drop(restore);
                return Some(value);
            }
            Poll::Pending => {
                // Park on the woken flag like `block_on`, but never past
                // the deadline; `park_timeout` may return spuriously, so
                // the remaining budget is recomputed every lap.
                while !state.woken.swap(false, Ordering::Acquire) {
                    let Some(remaining) =
                        deadline.checked_duration_since(std::time::Instant::now())
                    else {
                        drop(restore);
                        return None;
                    };
                    std::thread::park_timeout(remaining);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ready_future_returns_immediately() {
        assert_eq!(block_on(async { 41 + 1 }), 42);
    }

    #[test]
    fn pending_future_parks_until_woken() {
        // A future that yields `Pending` once, hands its waker to another
        // thread, and resolves on the next poll.
        struct YieldOnce {
            woken: Option<std::sync::mpsc::Sender<Waker>>,
        }
        impl Future for YieldOnce {
            type Output = &'static str;
            fn poll(
                mut self: std::pin::Pin<&mut Self>,
                cx: &mut Context<'_>,
            ) -> Poll<&'static str> {
                match self.woken.take() {
                    Some(tx) => {
                        tx.send(cx.waker().clone()).expect("receiver alive");
                        Poll::Pending
                    }
                    None => Poll::Ready("resumed"),
                }
            }
        }
        let (tx, rx) = std::sync::mpsc::channel();
        let waker_thread = std::thread::spawn(move || {
            let waker: Waker = rx.recv().expect("sender alive");
            std::thread::sleep(std::time::Duration::from_millis(10));
            waker.wake();
        });
        assert_eq!(block_on(YieldOnce { woken: Some(tx) }), "resumed");
        waker_thread.join().expect("no panic");
    }

    #[test]
    fn nested_and_sequential_block_on_calls_are_safe() {
        // Sequential calls on one thread reuse the cached waker state;
        // a re-entrant call (poll invoking block_on) must NOT share it —
        // the cell is taken for the outer call, so the inner one
        // allocates fresh state and cross-thread wakes still land.
        fn woken_future() -> (impl Future<Output = &'static str>, std::thread::JoinHandle<()>) {
            struct YieldOnce {
                tx: Option<std::sync::mpsc::Sender<Waker>>,
            }
            impl Future for YieldOnce {
                type Output = &'static str;
                fn poll(
                    mut self: std::pin::Pin<&mut Self>,
                    cx: &mut Context<'_>,
                ) -> Poll<&'static str> {
                    match self.tx.take() {
                        Some(tx) => {
                            tx.send(cx.waker().clone()).expect("receiver alive");
                            Poll::Pending
                        }
                        None => Poll::Ready("ok"),
                    }
                }
            }
            let (tx, rx) = std::sync::mpsc::channel::<Waker>();
            let waker_thread = std::thread::spawn(move || {
                rx.recv().expect("sender alive").wake();
            });
            (YieldOnce { tx: Some(tx) }, waker_thread)
        }
        for _ in 0..3 {
            let (inner, inner_thread) = woken_future();
            let (outer, outer_thread) = woken_future();
            let got = block_on(async {
                let inner = block_on(inner); // re-entrant, parks inside poll
                let outer = outer.await; // outer parks after the nested call
                (inner, outer)
            });
            assert_eq!(got, ("ok", "ok"));
            inner_thread.join().expect("no panic");
            outer_thread.join().expect("no panic");
        }
    }

    #[test]
    fn block_on_timeout_resolves_or_expires() {
        assert_eq!(block_on_timeout(async { 5 }, std::time::Duration::from_secs(1)), Some(5));
        assert_eq!(
            block_on_timeout(std::future::pending::<u32>(), std::time::Duration::from_millis(5)),
            None
        );
        // The cached waker state survives an expiry: the next call works.
        assert_eq!(block_on(async { 6 }), 6);
    }

    #[test]
    fn block_on_timeout_wakes_before_the_deadline() {
        struct YieldOnce {
            tx: Option<std::sync::mpsc::Sender<Waker>>,
        }
        impl Future for YieldOnce {
            type Output = &'static str;
            fn poll(
                mut self: std::pin::Pin<&mut Self>,
                cx: &mut Context<'_>,
            ) -> Poll<&'static str> {
                match self.tx.take() {
                    Some(tx) => {
                        tx.send(cx.waker().clone()).expect("receiver alive");
                        Poll::Pending
                    }
                    None => Poll::Ready("in time"),
                }
            }
        }
        let (tx, rx) = std::sync::mpsc::channel();
        let waker_thread = std::thread::spawn(move || {
            let waker: Waker = rx.recv().expect("sender alive");
            std::thread::sleep(std::time::Duration::from_millis(10));
            waker.wake();
        });
        let got = block_on_timeout(
            YieldOnce { tx: Some(tx) },
            std::time::Duration::from_secs(30),
        );
        assert_eq!(got, Some("in time"));
        waker_thread.join().expect("no panic");
    }

    #[test]
    fn wake_before_park_is_not_lost() {
        // The waker fires *during* poll (before the executor parks); the
        // flag must absorb it so the executor re-polls instead of hanging.
        struct WakeInline {
            polls: u32,
        }
        impl Future for WakeInline {
            type Output = u32;
            fn poll(mut self: std::pin::Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<u32> {
                self.polls += 1;
                if self.polls < 3 {
                    cx.waker().wake_by_ref();
                    Poll::Pending
                } else {
                    Poll::Ready(self.polls)
                }
            }
        }
        assert_eq!(block_on(WakeInline { polls: 0 }), 3);
    }
}
