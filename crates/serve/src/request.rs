//! Request plumbing: tickets, responses and the completion cell.

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use hdhash_table::{RequestKey, ServerId, TableError};

/// The serving layer's answer to one submitted lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeResponse {
    /// The routing verdict from the shard's HD table.
    pub result: Result<ServerId, TableError>,
    /// Which shard served the request.
    pub shard: usize,
    /// The shard epoch whose membership snapshot produced the verdict —
    /// the handle the churn tests use to prove no torn reads.
    pub epoch: u64,
    /// Queue wait plus batch execution time, measured from `submit`.
    pub latency: Duration,
}

/// One-shot completion cell shared between the submitting client and the
/// worker that eventually serves the request.
#[derive(Debug, Default)]
pub(crate) struct ResponseCell {
    slot: Mutex<Option<ServeResponse>>,
    ready: Condvar,
}

impl ResponseCell {
    pub(crate) fn fill(&self, response: ServeResponse) {
        let mut slot = self.slot.lock();
        debug_assert!(slot.is_none(), "a request is served exactly once");
        *slot = Some(response);
        self.ready.notify_all();
    }

    fn wait(&self) -> ServeResponse {
        let mut slot = self.slot.lock();
        loop {
            if let Some(response) = *slot {
                return response;
            }
            self.ready.wait(&mut slot);
        }
    }

    fn try_get(&self) -> Option<ServeResponse> {
        *self.slot.lock()
    }
}

/// A claim on a submitted request's eventual response.
///
/// Obtained from [`ServeEngine::submit`](crate::ServeEngine::submit);
/// either block on [`wait`](Self::wait) (closed-loop clients) or poll
/// [`try_response`](Self::try_response) (open-loop clients that batch
/// their own reaping).
#[derive(Debug)]
pub struct Ticket {
    cell: Arc<ResponseCell>,
}

impl Ticket {
    /// Blocks until the request is served. The engine guarantees every
    /// accepted request is eventually served — by a worker in steady
    /// state, or by the shutdown drain.
    #[must_use]
    pub fn wait(self) -> ServeResponse {
        self.cell.wait()
    }

    /// The response, if already served.
    #[must_use]
    pub fn try_response(&self) -> Option<ServeResponse> {
        self.cell.try_get()
    }
}

/// A queued lookup: the key, its shard (fixed at submit time so workers
/// never re-hash), the submit instant, and the client's completion cell.
#[derive(Debug)]
pub(crate) struct LookupJob {
    pub(crate) key: RequestKey,
    pub(crate) shard: usize,
    pub(crate) enqueued: Instant,
    pub(crate) cell: Arc<ResponseCell>,
}

impl LookupJob {
    pub(crate) fn new(key: RequestKey, shard: usize) -> (Self, Ticket) {
        let cell = Arc::new(ResponseCell::default());
        let ticket = Ticket { cell: Arc::clone(&cell) };
        (Self { key, shard, enqueued: Instant::now(), cell }, ticket)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn response() -> ServeResponse {
        ServeResponse {
            result: Ok(ServerId::new(3)),
            shard: 1,
            epoch: 9,
            latency: Duration::from_micros(5),
        }
    }

    #[test]
    fn ticket_roundtrip() {
        let (job, ticket) = LookupJob::new(RequestKey::new(7), 1);
        assert_eq!(job.key, RequestKey::new(7));
        assert_eq!(job.shard, 1);
        assert!(ticket.try_response().is_none());
        job.cell.fill(response());
        assert_eq!(ticket.try_response(), Some(response()));
        assert_eq!(ticket.wait(), response());
    }

    #[test]
    fn wait_blocks_until_filled_across_threads() {
        let (job, ticket) = LookupJob::new(RequestKey::new(1), 0);
        let got = std::thread::scope(|s| {
            let waiter = s.spawn(move || ticket.wait());
            std::thread::sleep(Duration::from_millis(10));
            job.cell.fill(response());
            waiter.join().expect("no panic")
        });
        assert_eq!(got, response());
    }
}
