//! Request plumbing: tickets, responses and the completion cell.
//!
//! The completion cell is a two-state machine shared between the
//! submitting client and the worker that eventually serves the request:
//!
//! ```text
//!   Pending { waker? } ──fill(response)──► Ready(response)
//!        ▲                                     │
//!        │ poll() parks a Waker;               │ wait() returns, polls
//!        │ wait() parks the thread             │ resolve, try_response
//!        └──── clients, either surface ────────┘ reads
//! ```
//!
//! Both front ends drive the same cell: [`Ticket::wait`] blocks on a
//! condvar (closed-loop clients), and `Ticket` itself implements
//! [`Future`] — `poll` registers the task's [`Waker`], and the serving
//! worker wakes it on fill. The vendored
//! [`executor::block_on`](crate::executor::block_on) drives the future
//! surface without an async runtime dependency.

use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use hdhash_table::{RequestKey, ServerId, TableError};

/// The serving layer's answer to one submitted lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeResponse {
    /// The routing verdict from the shard's HD table.
    pub result: Result<ServerId, TableError>,
    /// Which shard served the request.
    pub shard: usize,
    /// The shard epoch whose membership snapshot produced the verdict —
    /// the handle the churn tests use to prove no torn reads.
    pub epoch: u64,
    /// Queue wait plus batch execution time, measured from `submit`.
    pub latency: Duration,
}

/// The two states of a completion cell.
#[derive(Debug, Default)]
enum CellState {
    /// Not served yet; holds the most recent async waiter's waker, if the
    /// ticket is being polled as a future.
    #[default]
    Pending,
    /// As `Pending`, with a parked async waiter to wake on fill.
    Polled(Waker),
    /// Served; terminal.
    Ready(ServeResponse),
}

/// One-shot completion cell shared between the submitting client and the
/// worker that eventually serves the request. Supports both a blocking
/// (condvar) and an async (waker) consumer on the same state machine.
#[derive(Debug, Default)]
pub(crate) struct ResponseCell {
    state: Mutex<CellState>,
    ready: Condvar,
}

impl ResponseCell {
    /// Transitions `Pending`/`Polled` → `Ready`, releasing both kinds of
    /// waiter (the condvar for blocked threads, the waker for parked
    /// tasks). Calling twice is a contract violation.
    pub(crate) fn fill(&self, response: ServeResponse) {
        let waker = {
            let mut state = self.state.lock();
            debug_assert!(
                !matches!(*state, CellState::Ready(_)),
                "a request is served exactly once"
            );
            let waker = match std::mem::replace(&mut *state, CellState::Ready(response)) {
                CellState::Polled(waker) => Some(waker),
                CellState::Pending | CellState::Ready(_) => None,
            };
            self.ready.notify_all();
            waker
        };
        // Wake outside the lock: the woken task may immediately re-poll.
        if let Some(waker) = waker {
            waker.wake();
        }
    }

    /// As [`fill`](Self::fill), but a no-op when the cell is already
    /// `Ready`. Returns whether this call filled the cell. The
    /// panic-containment path uses this to backfill every job of a
    /// partially-served batch without knowing which cells the worker
    /// filled before it panicked.
    pub(crate) fn fill_if_pending(&self, response: ServeResponse) -> bool {
        let waker = {
            let mut state = self.state.lock();
            if matches!(*state, CellState::Ready(_)) {
                return false;
            }
            let waker = match std::mem::replace(&mut *state, CellState::Ready(response)) {
                CellState::Polled(waker) => Some(waker),
                CellState::Pending | CellState::Ready(_) => None,
            };
            self.ready.notify_all();
            waker
        };
        if let Some(waker) = waker {
            waker.wake();
        }
        true
    }

    fn wait(&self) -> ServeResponse {
        let mut state = self.state.lock();
        loop {
            if let CellState::Ready(response) = *state {
                return response;
            }
            self.ready.wait(&mut state);
        }
    }

    fn wait_timeout(&self, timeout: Duration) -> Option<ServeResponse> {
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock();
        loop {
            if let CellState::Ready(response) = *state {
                return Some(response);
            }
            let remaining = deadline.checked_duration_since(Instant::now())?;
            // Spurious wakeups loop back through the deadline check.
            let _ = self.ready.wait_for(&mut state, remaining);
        }
    }

    fn try_get(&self) -> Option<ServeResponse> {
        match *self.state.lock() {
            CellState::Ready(response) => Some(response),
            CellState::Pending | CellState::Polled(_) => None,
        }
    }

    /// The future surface: `Ready` resolves, otherwise the task's waker
    /// is (re)parked in the cell and the poll returns `Pending`.
    fn poll(&self, cx: &mut Context<'_>) -> Poll<ServeResponse> {
        let mut state = self.state.lock();
        match &mut *state {
            CellState::Ready(response) => Poll::Ready(*response),
            CellState::Polled(waker) => {
                // Re-polled (possibly from a different task): refresh.
                waker.clone_from(cx.waker());
                Poll::Pending
            }
            CellState::Pending => {
                *state = CellState::Polled(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

/// A claim on a submitted request's eventual response.
///
/// Obtained from [`ServeEngine::submit`](crate::ServeEngine::submit).
/// Three ways to redeem it:
///
/// * block on [`wait`](Self::wait) (closed-loop clients);
/// * poll [`try_response`](Self::try_response) (open-loop clients that
///   batch their own reaping);
/// * **await it** — `Ticket` implements [`Future`], resolving to the
///   [`ServeResponse`] when a worker fills the cell. Any executor works;
///   the vendored [`executor::block_on`](crate::executor::block_on)
///   drives it without an async runtime:
///
/// ```
/// use hdhash_serve::{executor, ServeConfig, ServeEngine};
/// use hdhash_table::{RequestKey, ServerId};
///
/// let mut engine = ServeEngine::new(ServeConfig {
///     shards: 1,
///     workers: 1,
///     dimension: 2048,
///     codebook_size: 64,
///     ..ServeConfig::default()
/// })?;
/// engine.join(ServerId::new(1))?;
/// let ticket = engine.submit(RequestKey::new(7))?;
/// let response = executor::block_on(async { ticket.await });
/// assert_eq!(response.result, Ok(ServerId::new(1)));
/// engine.shutdown();
/// # Ok::<(), hdhash_serve::ServeError>(())
/// ```
#[derive(Debug)]
pub struct Ticket {
    cell: Arc<ResponseCell>,
}

impl Ticket {
    /// Blocks until the request is served. The engine guarantees every
    /// accepted request is eventually served — by a worker in steady
    /// state, or by the shutdown drain.
    #[must_use]
    pub fn wait(self) -> ServeResponse {
        self.cell.wait()
    }

    /// Blocks until the request is served or `timeout` elapses, whichever
    /// comes first. `None` means the deadline expired with the request
    /// still in flight — the ticket stays redeemable, so callers can
    /// retry, escalate, or abandon it.
    ///
    /// This is the chaos-harness-facing surface: under injected faults a
    /// response may be arbitrarily delayed, and a bounded wait turns a
    /// hung assertion into a diagnosable timeout.
    #[must_use]
    pub fn wait_timeout(&self, timeout: Duration) -> Option<ServeResponse> {
        self.cell.wait_timeout(timeout)
    }

    /// The response, if already served.
    #[must_use]
    pub fn try_response(&self) -> Option<ServeResponse> {
        self.cell.try_get()
    }
}

impl Future for Ticket {
    type Output = ServeResponse;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<ServeResponse> {
        self.cell.poll(cx)
    }
}

/// A queued lookup: the key, its shard (fixed at submit time so workers
/// never re-hash), the submit instant, and the client's completion cell.
///
/// Public because it is the currency of the [`Scheduler`] trait; its
/// internals stay crate-private — schedulers move jobs, only the engine
/// opens them.
///
/// [`Scheduler`]: crate::scheduler::Scheduler
#[derive(Debug)]
pub struct LookupJob {
    pub(crate) key: RequestKey,
    pub(crate) shard: usize,
    pub(crate) enqueued: Instant,
    pub(crate) cell: Arc<ResponseCell>,
    /// Nonzero id when this request was sampled for tracing; `None` for
    /// the (vast, at production sampling rates) untraced majority.
    pub(crate) trace_id: Option<u64>,
}

impl LookupJob {
    pub(crate) fn new(key: RequestKey, shard: usize) -> (Self, Ticket) {
        let cell = Arc::new(ResponseCell::default());
        let ticket = Ticket { cell: Arc::clone(&cell) };
        (Self { key, shard, enqueued: Instant::now(), cell, trace_id: None }, ticket)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn response() -> ServeResponse {
        ServeResponse {
            result: Ok(ServerId::new(3)),
            shard: 1,
            epoch: 9,
            latency: Duration::from_micros(5),
        }
    }

    #[test]
    fn ticket_roundtrip() {
        let (job, ticket) = LookupJob::new(RequestKey::new(7), 1);
        assert_eq!(job.key, RequestKey::new(7));
        assert_eq!(job.shard, 1);
        assert!(ticket.try_response().is_none());
        job.cell.fill(response());
        assert_eq!(ticket.try_response(), Some(response()));
        assert_eq!(ticket.wait(), response());
    }

    #[test]
    fn wait_timeout_expires_then_redeems() {
        let (job, ticket) = LookupJob::new(RequestKey::new(8), 0);
        assert_eq!(ticket.wait_timeout(Duration::from_millis(5)), None);
        job.cell.fill(response());
        assert_eq!(ticket.wait_timeout(Duration::from_millis(5)), Some(response()));
        assert_eq!(ticket.wait(), response());
    }

    #[test]
    fn wait_timeout_wakes_on_fill_across_threads() {
        let (job, ticket) = LookupJob::new(RequestKey::new(9), 0);
        let got = std::thread::scope(|s| {
            let waiter = s.spawn(move || ticket.wait_timeout(Duration::from_secs(30)));
            std::thread::sleep(Duration::from_millis(10));
            job.cell.fill(response());
            waiter.join().expect("no panic")
        });
        assert_eq!(got, Some(response()));
    }

    #[test]
    fn fill_if_pending_is_idempotent() {
        let (job, ticket) = LookupJob::new(RequestKey::new(10), 0);
        assert!(job.cell.fill_if_pending(response()));
        // A second fill attempt must not clobber the first answer.
        let mut other = response();
        other.epoch = 99;
        assert!(!job.cell.fill_if_pending(other));
        assert_eq!(ticket.wait(), response());
    }

    #[test]
    fn wait_blocks_until_filled_across_threads() {
        let (job, ticket) = LookupJob::new(RequestKey::new(1), 0);
        let got = std::thread::scope(|s| {
            let waiter = s.spawn(move || ticket.wait());
            std::thread::sleep(Duration::from_millis(10));
            job.cell.fill(response());
            waiter.join().expect("no panic")
        });
        assert_eq!(got, response());
    }

    #[test]
    fn future_resolves_when_filled_across_threads() {
        let (job, ticket) = LookupJob::new(RequestKey::new(2), 0);
        let got = std::thread::scope(|s| {
            let waiter = s.spawn(move || crate::executor::block_on(ticket));
            std::thread::sleep(Duration::from_millis(10));
            job.cell.fill(response());
            waiter.join().expect("no panic")
        });
        assert_eq!(got, response());
    }

    #[test]
    fn future_already_ready_resolves_without_parking() {
        let (job, ticket) = LookupJob::new(RequestKey::new(3), 0);
        job.cell.fill(response());
        assert_eq!(crate::executor::block_on(ticket), response());
    }

    #[test]
    fn polled_then_waited_surfaces_one_response() {
        // A ticket polled once as a future (parking a waker) can still be
        // redeemed by the blocking surface: the state machine serves both.
        let (job, ticket) = LookupJob::new(RequestKey::new(4), 0);
        let mut ticket = ticket;
        let waker = noop_waker();
        let mut cx = Context::from_waker(&waker);
        assert!(Pin::new(&mut ticket).poll(&mut cx).is_pending());
        job.cell.fill(response());
        assert_eq!(Pin::new(&mut ticket).poll(&mut cx), Poll::Ready(response()));
        assert_eq!(ticket.wait(), response());
    }

    fn noop_waker() -> Waker {
        struct Noop;
        impl std::task::Wake for Noop {
            fn wake(self: Arc<Self>) {}
        }
        Waker::from(Arc::new(Noop))
    }
}
