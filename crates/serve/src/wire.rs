//! The framed wire codec: [`GossipMessage`] ⇄ bytes, plus the TCP frame
//! envelope the socket transport ships them in.
//!
//! [`encode_message`] produces **exactly**
//! [`GossipMessage::wire_size`] bytes — the byte accounting every gossip
//! metric and `BENCH_gossip.json` trajectory has reported since the
//! protocol landed is now the measured serialization, not a model. The
//! round-trip property suite (`tests/wire_roundtrip.rs`) pins both
//! directions: `decode(encode(m)) == m` and
//! `encode(m).len() == m.wire_size()`.
//!
//! ## Message layout (length = `wire_size`)
//!
//! ```text
//! offset size  field
//! 0      1     tag: 0 Advert · 1 SyncRequest · 2 SyncResponse
//! 1      8     round (u64 LE)
//! 9      4     count (u32 LE): signatures (Advert) or records (Sync*)
//! 13     …     body (tag-specific, see below)
//! ```
//!
//! * **Advert** body: `ack_present` (1 B, 0/1) + `ack` (8 B, zero when
//!   absent), then per signature `dimension` (u32 LE) + the word-aligned
//!   bit payload (`word_len · 8` bytes, LE words).
//! * **SyncRequest** body: `stamp` (8 B) + `diverged_count` (u32 LE) +
//!   one u16 LE per diverged shard + `count` × 17-byte member records.
//! * **SyncResponse** body: `stamp` (8 B) + `count` × 17-byte records.
//! * **Member record** (17 B): server id (u64 LE) + version (u64 LE) +
//!   alive (1 B, 0/1).
//!
//! ## TCP frame envelope ([`FRAME_OVERHEAD`] = 18 bytes)
//!
//! ```text
//! offset size  field
//! 0      1     magic 0xC7
//! 1      1     codec version (1)
//! 2      8     sender replica id (u64 LE) — every frame self-identifies
//! 10     4     payload length (u32 LE), capped at MAX_PAYLOAD
//! 14     4     CRC32 (IEEE) of the payload (u32 LE)
//! 18     …     payload = one encoded message
//! ```
//!
//! Decoding is strict: non-canonical bytes (a 2 in a boolean slot, junk
//! in a signature's unused tail bits, a non-zero ack value marked
//! absent, trailing garbage) are rejected as [`FrameError`]s rather than
//! silently normalized, so `encode ∘ decode` is the identity on valid
//! frames and a corrupted connection is detected instead of trusted.

use hdhash_hdc::Hypervector;

use crate::gossip::GossipMessage;
use crate::replication::MemberRecord;
use crate::transport::ReplicaId;
use hdhash_table::ServerId;

/// First byte of every TCP frame; anything else is line noise or a
/// foreign protocol and drops the connection.
pub const FRAME_MAGIC: u8 = 0xC7;
/// Codec version stamped into every frame header. Bumps on any layout
/// change; a mismatch is rejected as [`FrameError::BadVersion`] so mixed
/// deployments fail loudly instead of mis-parsing.
pub const WIRE_VERSION: u8 = 1;
/// Bytes the TCP frame envelope adds around one encoded message: magic +
/// version + sender id + length + checksum. Measured socket bytes exceed
/// the `wire_size` accounting by exactly this much per frame.
pub const FRAME_OVERHEAD: usize = 18;
/// Upper bound on one frame's payload (64 MiB). A length field past this
/// is garbage (or hostile) and is rejected before any allocation.
pub const MAX_PAYLOAD: usize = 1 << 26;

const TAG_ADVERT: u8 = 0;
const TAG_SYNC_REQUEST: u8 = 1;
const TAG_SYNC_RESPONSE: u8 = 2;
/// Bytes of the common per-message header every payload starts with:
/// tag (1) + round (8) + element count (4). This is the same 13 bytes
/// the gossip `wire_size` accounting budgets as its frame header.
pub const MESSAGE_HEADER: usize = 13;

/// Why a frame or message failed to decode. Any of these on a live
/// connection means the stream can no longer be trusted frame-aligned;
/// the transport's response is to drop the connection (and let the
/// supervisor reconnect), never to kill the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// First byte was not [`FRAME_MAGIC`].
    BadMagic(u8),
    /// The version byte named a codec this build does not speak.
    BadVersion(u8),
    /// The payload length field exceeded [`MAX_PAYLOAD`].
    Oversize(usize),
    /// The CRC32 over the payload did not match the header.
    BadChecksum,
    /// The buffer ended mid-field.
    Truncated,
    /// Unknown message tag.
    BadTag(u8),
    /// Structurally valid but non-canonical payload (boolean byte not
    /// 0/1, junk tail bits in a signature, absent ack with a non-zero
    /// value, trailing bytes).
    BadPayload,
}

impl core::fmt::Display for FrameError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FrameError::BadMagic(b) => write!(f, "bad frame magic 0x{b:02X}"),
            FrameError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            FrameError::Oversize(n) => write!(f, "frame payload of {n} bytes exceeds cap"),
            FrameError::BadChecksum => write!(f, "frame checksum mismatch"),
            FrameError::Truncated => write!(f, "frame truncated mid-field"),
            FrameError::BadTag(t) => write!(f, "unknown message tag {t}"),
            FrameError::BadPayload => write!(f, "non-canonical message payload"),
        }
    }
}

impl std::error::Error for FrameError {}

/// CRC32 (IEEE 802.3 polynomial, bitwise): the frame checksum. ~1 ns/B
/// is plenty for a control-plane protocol whose largest frames are a few
/// KiB of signatures.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in bytes {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[allow(clippy::cast_possible_truncation)]
fn push_u32(out: &mut Vec<u8>, value: usize) {
    out.extend_from_slice(&(value as u32).to_le_bytes());
}

/// Serializes one message to exactly [`GossipMessage::wire_size`] bytes.
///
/// # Panics
///
/// Debug-asserts the produced length against `wire_size` — a divergence
/// is a codec bug, and the release path trusts the property suite.
#[must_use]
pub fn encode_message(message: &GossipMessage) -> Vec<u8> {
    let mut out = Vec::with_capacity(message.wire_size());
    match message {
        GossipMessage::Advert { round, signatures, ack } => {
            out.push(TAG_ADVERT);
            out.extend_from_slice(&round.to_le_bytes());
            push_u32(&mut out, signatures.len());
            out.push(u8::from(ack.is_some()));
            out.extend_from_slice(&ack.unwrap_or(0).to_le_bytes());
            for signature in signatures {
                push_u32(&mut out, signature.dimension());
                for word in signature.as_words() {
                    out.extend_from_slice(&word.to_le_bytes());
                }
            }
        }
        GossipMessage::SyncRequest { round, stamp, records, diverged } => {
            out.push(TAG_SYNC_REQUEST);
            out.extend_from_slice(&round.to_le_bytes());
            push_u32(&mut out, records.len());
            out.extend_from_slice(&stamp.to_le_bytes());
            push_u32(&mut out, diverged.len());
            for &shard in diverged {
                // Shard counts are small (wire_size budgets 2 bytes);
                // saturate rather than alias on a absurd index.
                let shard = u16::try_from(shard).unwrap_or(u16::MAX);
                out.extend_from_slice(&shard.to_le_bytes());
            }
            for record in records {
                encode_record(&mut out, record);
            }
        }
        GossipMessage::SyncResponse { round, stamp, records } => {
            out.push(TAG_SYNC_RESPONSE);
            out.extend_from_slice(&round.to_le_bytes());
            push_u32(&mut out, records.len());
            out.extend_from_slice(&stamp.to_le_bytes());
            for record in records {
                encode_record(&mut out, record);
            }
        }
    }
    debug_assert_eq!(
        out.len(),
        message.wire_size(),
        "encoded length must equal the wire_size accounting"
    );
    out
}

fn encode_record(out: &mut Vec<u8>, record: &MemberRecord) {
    out.extend_from_slice(&record.server.get().to_le_bytes());
    out.extend_from_slice(&record.version.to_le_bytes());
    out.push(u8::from(record.alive));
}

/// A strict cursor over a message payload.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let end = self.at.checked_add(n).ok_or(FrameError::Truncated)?;
        let slice = self.bytes.get(self.at..end).ok_or(FrameError::Truncated)?;
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        let b = self.take(8)?;
        let mut word = [0u8; 8];
        word.copy_from_slice(b);
        Ok(u64::from_le_bytes(word))
    }

    fn boolean(&mut self) -> Result<bool, FrameError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(FrameError::BadPayload),
        }
    }

    fn finish(&self) -> Result<(), FrameError> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(FrameError::BadPayload)
        }
    }
}

fn decode_record(r: &mut Reader<'_>) -> Result<MemberRecord, FrameError> {
    let server = ServerId::new(r.u64()?);
    let version = r.u64()?;
    let alive = r.boolean()?;
    Ok(MemberRecord { server, version, alive })
}

fn decode_signature(r: &mut Reader<'_>) -> Result<Hypervector, FrameError> {
    let dimension = r.u32()? as usize;
    if dimension == 0 || dimension > MAX_PAYLOAD * 8 {
        return Err(FrameError::BadPayload);
    }
    let word_len = dimension.div_ceil(64);
    let words = r.take(word_len * 8)?;
    let byte_len = dimension.div_ceil(8);
    // `from_bytes` takes the tight ceil(d/8) byte form and rejects junk
    // tail *bits*; the word-aligned padding bytes past it must be zero.
    if words[byte_len..].iter().any(|&b| b != 0) {
        return Err(FrameError::BadPayload);
    }
    Hypervector::from_bytes(dimension, &words[..byte_len]).map_err(|_| FrameError::BadPayload)
}

/// Parses one message payload produced by [`encode_message`].
///
/// # Errors
///
/// [`FrameError`] on truncation, an unknown tag, or any non-canonical
/// byte (see the module docs on strictness).
pub fn decode_message(bytes: &[u8]) -> Result<GossipMessage, FrameError> {
    let mut r = Reader { bytes, at: 0 };
    let tag = r.u8()?;
    let round = r.u64()?;
    let count = r.u32()? as usize;
    if count > MAX_PAYLOAD {
        return Err(FrameError::BadPayload);
    }
    let message = match tag {
        TAG_ADVERT => {
            let present = r.boolean()?;
            let ack_value = r.u64()?;
            if !present && ack_value != 0 {
                return Err(FrameError::BadPayload);
            }
            let ack = present.then_some(ack_value);
            let mut signatures = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                signatures.push(decode_signature(&mut r)?);
            }
            GossipMessage::Advert { round, signatures, ack }
        }
        TAG_SYNC_REQUEST => {
            let stamp = r.u64()?;
            let diverged_count = r.u32()? as usize;
            if diverged_count > MAX_PAYLOAD {
                return Err(FrameError::BadPayload);
            }
            let mut diverged = Vec::with_capacity(diverged_count.min(1024));
            for _ in 0..diverged_count {
                diverged.push(r.u16()? as usize);
            }
            let mut records = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                records.push(decode_record(&mut r)?);
            }
            GossipMessage::SyncRequest { round, stamp, records, diverged }
        }
        TAG_SYNC_RESPONSE => {
            let stamp = r.u64()?;
            let mut records = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                records.push(decode_record(&mut r)?);
            }
            GossipMessage::SyncResponse { round, stamp, records }
        }
        other => return Err(FrameError::BadTag(other)),
    };
    r.finish()?;
    Ok(message)
}

/// Wraps one encoded message in the TCP frame envelope: header (magic,
/// version, sender, length, CRC32) + payload. The result is what one
/// `write_all` puts on the socket — `message.wire_size() +`
/// [`FRAME_OVERHEAD`] bytes.
#[must_use]
pub fn encode_frame(from: ReplicaId, message: &GossipMessage) -> Vec<u8> {
    let payload = encode_message(message);
    let mut out = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
    out.push(FRAME_MAGIC);
    out.push(WIRE_VERSION);
    out.extend_from_slice(&from.get().to_le_bytes());
    push_u32(&mut out, payload.len());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// A validated frame header: who sent it and what the payload must be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// The sender stamped into the frame.
    pub from: ReplicaId,
    /// Payload byte length (`≤` [`MAX_PAYLOAD`]).
    pub len: usize,
    /// Expected CRC32 of the payload.
    pub crc: u32,
}

/// Validates the fixed 18-byte frame header.
///
/// # Errors
///
/// [`FrameError`] on a short buffer, wrong magic/version, or an
/// oversize length claim.
pub fn decode_frame_header(bytes: &[u8; FRAME_OVERHEAD]) -> Result<FrameHeader, FrameError> {
    if bytes[0] != FRAME_MAGIC {
        return Err(FrameError::BadMagic(bytes[0]));
    }
    if bytes[1] != WIRE_VERSION {
        return Err(FrameError::BadVersion(bytes[1]));
    }
    let mut word = [0u8; 8];
    word.copy_from_slice(&bytes[2..10]);
    let from = ReplicaId::new(u64::from_le_bytes(word));
    let len = u32::from_le_bytes([bytes[10], bytes[11], bytes[12], bytes[13]]) as usize;
    if len > MAX_PAYLOAD {
        return Err(FrameError::Oversize(len));
    }
    let crc = u32::from_le_bytes([bytes[14], bytes[15], bytes[16], bytes[17]]);
    Ok(FrameHeader { from, len, crc })
}

/// Verifies a payload against its header's checksum and decodes it.
///
/// # Errors
///
/// [`FrameError::BadChecksum`] on CRC mismatch, else whatever
/// [`decode_message`] rejects.
pub fn decode_frame_payload(
    header: FrameHeader,
    payload: &[u8],
) -> Result<GossipMessage, FrameError> {
    if payload.len() != header.len {
        return Err(FrameError::Truncated);
    }
    if crc32(payload) != header.crc {
        return Err(FrameError::BadChecksum);
    }
    decode_message(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(d: usize, flips: &[usize]) -> Hypervector {
        let mut hv = Hypervector::zeros(d);
        for &bit in flips {
            hv.flip_bit(bit);
        }
        hv
    }

    fn record(id: u64, version: u64, alive: bool) -> MemberRecord {
        MemberRecord { server: ServerId::new(id), version, alive }
    }

    #[test]
    fn message_round_trips_and_matches_wire_size() {
        let messages = vec![
            GossipMessage::Advert { round: 0, signatures: vec![], ack: None },
            GossipMessage::Advert {
                round: 7,
                signatures: vec![sig(2048, &[0, 7, 2047]), sig(100, &[99])],
                ack: Some(42),
            },
            GossipMessage::SyncRequest {
                round: 3,
                stamp: 11,
                records: vec![record(1, 4, true), record(9, 2, false)],
                diverged: vec![0, 3],
            },
            GossipMessage::SyncResponse {
                round: u64::MAX,
                stamp: 0,
                records: vec![record(u64::MAX, u64::MAX, true)],
            },
        ];
        for message in messages {
            let bytes = encode_message(&message);
            assert_eq!(bytes.len(), message.wire_size(), "{message:?}");
            assert_eq!(decode_message(&bytes).expect("round trip"), message);
        }
    }

    #[test]
    fn frame_round_trips_with_exact_overhead() {
        let message = GossipMessage::Advert {
            round: 5,
            signatures: vec![sig(512, &[1, 500])],
            ack: Some(3),
        };
        let from = ReplicaId::new(77);
        let frame = encode_frame(from, &message);
        assert_eq!(frame.len(), message.wire_size() + FRAME_OVERHEAD);
        let mut header = [0u8; FRAME_OVERHEAD];
        header.copy_from_slice(&frame[..FRAME_OVERHEAD]);
        let header = decode_frame_header(&header).expect("valid header");
        assert_eq!(header.from, from);
        assert_eq!(header.len, message.wire_size());
        let decoded =
            decode_frame_payload(header, &frame[FRAME_OVERHEAD..]).expect("valid payload");
        assert_eq!(decoded, message);
    }

    #[test]
    fn corrupt_frames_are_rejected_not_normalized() {
        let message =
            GossipMessage::SyncResponse { round: 1, stamp: 2, records: vec![record(3, 4, true)] };
        let frame = encode_frame(ReplicaId::new(1), &message);
        let header = |bytes: &[u8]| {
            let mut h = [0u8; FRAME_OVERHEAD];
            h.copy_from_slice(&bytes[..FRAME_OVERHEAD]);
            decode_frame_header(&h)
        };
        // Magic.
        let mut bad = frame.clone();
        bad[0] = 0x00;
        assert_eq!(header(&bad), Err(FrameError::BadMagic(0)));
        // Version.
        let mut bad = frame.clone();
        bad[1] = 9;
        assert_eq!(header(&bad), Err(FrameError::BadVersion(9)));
        // Oversize length claim.
        let mut bad = frame.clone();
        bad[10..14].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(header(&bad), Err(FrameError::Oversize(_))));
        // Flipped payload bit fails the checksum.
        let mut bad = frame.clone();
        *bad.last_mut().expect("payload") ^= 0x40;
        let h = header(&bad).expect("header untouched");
        assert_eq!(decode_frame_payload(h, &bad[FRAME_OVERHEAD..]), Err(FrameError::BadChecksum));
        // Truncated payload.
        let h = header(&frame).expect("header");
        assert_eq!(
            decode_frame_payload(h, &frame[FRAME_OVERHEAD..frame.len() - 1]),
            Err(FrameError::Truncated)
        );
    }

    #[test]
    fn non_canonical_payloads_are_rejected() {
        // Boolean slot holding a 2 (alive byte).
        let message =
            GossipMessage::SyncResponse { round: 1, stamp: 2, records: vec![record(3, 4, true)] };
        let mut bytes = encode_message(&message);
        *bytes.last_mut().expect("alive byte") = 2;
        assert_eq!(decode_message(&bytes), Err(FrameError::BadPayload));
        // Absent ack with a non-zero value.
        let advert = GossipMessage::Advert { round: 1, signatures: vec![], ack: None };
        let mut bytes = encode_message(&advert);
        bytes[MESSAGE_HEADER + 1] = 0xFF;
        assert_eq!(decode_message(&bytes), Err(FrameError::BadPayload));
        // Junk in a signature's unused tail bits (d=100 leaves 28 tail
        // bits in word 2).
        let advert =
            GossipMessage::Advert { round: 1, signatures: vec![sig(100, &[0])], ack: None };
        let mut bytes = encode_message(&advert);
        let last = bytes.len() - 1;
        bytes[last] = 0x80;
        assert_eq!(decode_message(&bytes), Err(FrameError::BadPayload));
        // Trailing garbage.
        let mut bytes = encode_message(&advert);
        bytes.push(0);
        assert_eq!(decode_message(&bytes), Err(FrameError::BadPayload));
        // Unknown tag.
        let mut bytes = encode_message(&advert);
        bytes[0] = 9;
        assert_eq!(decode_message(&bytes), Err(FrameError::BadTag(9)));
        // Truncation mid-record.
        let bytes = encode_message(&message);
        assert_eq!(decode_message(&bytes[..bytes.len() - 3]), Err(FrameError::Truncated));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE 802.3 test vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }
}
