//! Per-shard serving metrics: counters, batch fill, lock-free latency
//! histogram.
//!
//! Latency used to live in a `Mutex<Vec<Duration>>` reservoir: every
//! batch took the lock to append and every snapshot cloned the whole
//! 4096-entry ring under it. It is now an atomic log2-bucketed
//! [`LogHistogram`] — `record_batch` is pure `fetch_add`s and a snapshot
//! reads 65 bucket counters, so neither side ever blocks the other.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use hdhash_emulator::LatencyProfile;
use hdhash_obs::{HistogramSnapshot, LogHistogram};

/// Writer-side metrics for one shard. Everything is `Relaxed` atomics
/// (monotone, heuristic) — including the latency distribution; nothing on
/// the batch path takes a lock.
#[derive(Debug, Default)]
pub(crate) struct ShardMetrics {
    served: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
    batch_fill: AtomicU64,
    latency_ns: LogHistogram,
}

impl ShardMetrics {
    /// Accounts one coalesced batch served against this shard.
    pub(crate) fn record_batch(&self, fill: usize, failures: usize, latencies: &[Duration]) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batch_fill.fetch_add(fill as u64, Ordering::Relaxed);
        self.served.fetch_add(fill as u64, Ordering::Relaxed);
        self.failed.fetch_add(failures as u64, Ordering::Relaxed);
        for sample in latencies {
            self.latency_ns.record(sample.as_nanos() as u64);
        }
    }

    pub(crate) fn snapshot(&self, shard: usize, epoch: u64, members: usize) -> ShardMetricsSnapshot {
        let batches = self.batches.load(Ordering::Relaxed);
        let fill = self.batch_fill.load(Ordering::Relaxed);
        let hist = self.latency_ns.snapshot();
        let latency = profile_from_histogram(&hist);
        ShardMetricsSnapshot {
            shard,
            epoch,
            members,
            served: self.served.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            batches,
            mean_batch_fill: if batches == 0 { 0.0 } else { fill as f64 / batches as f64 },
            latency,
            latency_hist: hist,
        }
    }
}

/// Derive the classic p50/p90/p99/max profile from histogram buckets.
/// `None` before any traffic, like the reservoir behaved.
fn profile_from_histogram(hist: &HistogramSnapshot) -> Option<LatencyProfile> {
    if hist.count == 0 {
        return None;
    }
    let q = |q: f64| Duration::from_nanos(hist.quantile(q).unwrap_or(0));
    Some(LatencyProfile {
        samples: hist.count as usize,
        p50: q(0.50),
        p90: q(0.90),
        p99: q(0.99),
        max: Duration::from_nanos(hist.max),
    })
}

/// Point-in-time metrics for one shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardMetricsSnapshot {
    /// Shard index.
    pub shard: usize,
    /// The shard's currently published epoch.
    pub epoch: u64,
    /// Members live in that epoch.
    pub members: usize,
    /// Lookups served (successful or failed verdicts alike).
    pub served: u64,
    /// Lookups whose verdict was an error (e.g. empty pool).
    pub failed: u64,
    /// Coalesced batches executed.
    pub batches: u64,
    /// Mean lookups per batch — the coalescing win; 1.0 means the queue
    /// never held more than one request per shard at a time.
    pub mean_batch_fill: f64,
    /// p50/p90/p99/max over the shard's full latency history, measured
    /// submit-to-response (queue wait included). Quantiles are log2-bucket
    /// estimates (error below one bucket width); `max` is exact. `None`
    /// before traffic.
    pub latency: Option<LatencyProfile>,
    /// The raw latency distribution in nanoseconds — the bucket state the
    /// quantiles derive from, exported whole by the telemetry layer.
    pub latency_hist: HistogramSnapshot,
}

/// Point-in-time metrics for the whole engine.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineMetrics {
    /// Which scheduling substrate served the traffic
    /// ([`SchedulerKind::name`](crate::SchedulerKind::name)).
    pub scheduler: &'static str,
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests refused at capacity (the backpressure counter).
    pub rejected: u64,
    /// Requests served to completion — including requests backfilled with
    /// [`WorkerPanicked`](hdhash_table::TableError::WorkerPanicked) by
    /// panic containment (they resolved, with an error verdict).
    pub completed: u64,
    /// Worker panics caught and contained: each counts one abandoned
    /// batch whose pending tickets were backfilled with an error response
    /// while the worker kept serving. Zero in healthy operation.
    pub panics_contained: u64,
    /// Requests currently parked in the scheduling substrate (shared
    /// queue, or injector + local deques under work stealing).
    pub queue_depth: usize,
    /// Per-shard breakdowns.
    pub shards: Vec<ShardMetricsSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_accounting_accumulates() {
        let m = ShardMetrics::default();
        m.record_batch(3, 1, &[Duration::from_micros(10); 3]);
        m.record_batch(5, 0, &[Duration::from_micros(20); 5]);
        let snap = m.snapshot(1, 7, 4);
        assert_eq!(snap.shard, 1);
        assert_eq!(snap.epoch, 7);
        assert_eq!(snap.members, 4);
        assert_eq!(snap.served, 8);
        assert_eq!(snap.failed, 1);
        assert_eq!(snap.batches, 2);
        assert!((snap.mean_batch_fill - 4.0).abs() < 1e-12);
        let latency = snap.latency.expect("samples recorded");
        assert_eq!(latency.samples, 8);
        assert_eq!(latency.max, Duration::from_micros(20));
        assert_eq!(snap.latency_hist.count, 8);
    }

    #[test]
    fn empty_metrics_have_no_profile() {
        let snap = ShardMetrics::default().snapshot(0, 0, 0);
        assert!(snap.latency.is_none());
        assert_eq!(snap.mean_batch_fill, 0.0);
        assert_eq!(snap.latency_hist.count, 0);
    }

    #[test]
    fn histogram_snapshot_does_not_block_recording() {
        // The reservoir this replaced cloned 4096 samples under a lock per
        // snapshot; the histogram read must tolerate concurrent writers.
        use std::sync::Arc;
        let m = Arc::new(ShardMetrics::default());
        let writer = {
            let m = Arc::clone(&m);
            std::thread::spawn(move || {
                for i in 0..20_000u64 {
                    m.record_batch(1, 0, &[Duration::from_nanos(i + 1)]);
                }
            })
        };
        for _ in 0..500 {
            let snap = m.snapshot(0, 0, 1);
            // Monotone, internally consistent reads while writes race.
            assert!(snap.latency_hist.buckets.iter().sum::<u64>() <= 20_000);
        }
        writer.join().unwrap();
        let snap = m.snapshot(0, 0, 1);
        assert_eq!(snap.served, 20_000);
        assert_eq!(snap.latency_hist.count, 20_000);
        assert_eq!(snap.latency.expect("traffic").max, Duration::from_nanos(20_000));
    }
}
