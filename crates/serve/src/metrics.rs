//! Per-shard serving metrics: counters, batch fill, latency reservoir.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::Mutex;

use hdhash_emulator::LatencyProfile;

/// How many latency samples each shard retains (a ring: the most recent
/// window wins, so long runs report current behaviour, not warm-up).
const RESERVOIR_CAPACITY: usize = 4096;

/// Writer-side metrics for one shard. All counters are `Relaxed` atomics
/// (monotone, heuristic); only the latency reservoir takes a lock, briefly.
#[derive(Debug, Default)]
pub(crate) struct ShardMetrics {
    served: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
    batch_fill: AtomicU64,
    latencies: Mutex<Reservoir>,
}

#[derive(Debug, Default)]
struct Reservoir {
    ring: Vec<Duration>,
    next: usize,
}

impl Reservoir {
    fn record(&mut self, sample: Duration) {
        if self.ring.len() < RESERVOIR_CAPACITY {
            self.ring.push(sample);
        } else {
            self.ring[self.next] = sample;
            self.next = (self.next + 1) % RESERVOIR_CAPACITY;
        }
    }
}

impl ShardMetrics {
    /// Accounts one coalesced batch served against this shard.
    pub(crate) fn record_batch(&self, fill: usize, failures: usize, latencies: &[Duration]) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batch_fill.fetch_add(fill as u64, Ordering::Relaxed);
        self.served.fetch_add(fill as u64, Ordering::Relaxed);
        self.failed.fetch_add(failures as u64, Ordering::Relaxed);
        let mut reservoir = self.latencies.lock();
        for &sample in latencies {
            reservoir.record(sample);
        }
    }

    pub(crate) fn snapshot(&self, shard: usize, epoch: u64, members: usize) -> ShardMetricsSnapshot {
        let batches = self.batches.load(Ordering::Relaxed);
        let fill = self.batch_fill.load(Ordering::Relaxed);
        let latency =
            LatencyProfile::from_durations(self.latencies.lock().ring.clone());
        ShardMetricsSnapshot {
            shard,
            epoch,
            members,
            served: self.served.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            batches,
            mean_batch_fill: if batches == 0 { 0.0 } else { fill as f64 / batches as f64 },
            latency,
        }
    }
}

/// Point-in-time metrics for one shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardMetricsSnapshot {
    /// Shard index.
    pub shard: usize,
    /// The shard's currently published epoch.
    pub epoch: u64,
    /// Members live in that epoch.
    pub members: usize,
    /// Lookups served (successful or failed verdicts alike).
    pub served: u64,
    /// Lookups whose verdict was an error (e.g. empty pool).
    pub failed: u64,
    /// Coalesced batches executed.
    pub batches: u64,
    /// Mean lookups per batch — the coalescing win; 1.0 means the queue
    /// never held more than one request per shard at a time.
    pub mean_batch_fill: f64,
    /// p50/p90/p99/max over the shard's recent latency window, measured
    /// submit-to-response (queue wait included). `None` before traffic.
    pub latency: Option<LatencyProfile>,
}

/// Point-in-time metrics for the whole engine.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineMetrics {
    /// Which scheduling substrate served the traffic
    /// ([`SchedulerKind::name`](crate::SchedulerKind::name)).
    pub scheduler: &'static str,
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests refused at capacity (the backpressure counter).
    pub rejected: u64,
    /// Requests served to completion — including requests backfilled with
    /// [`WorkerPanicked`](hdhash_table::TableError::WorkerPanicked) by
    /// panic containment (they resolved, with an error verdict).
    pub completed: u64,
    /// Worker panics caught and contained: each counts one abandoned
    /// batch whose pending tickets were backfilled with an error response
    /// while the worker kept serving. Zero in healthy operation.
    pub panics_contained: u64,
    /// Requests currently parked in the scheduling substrate (shared
    /// queue, or injector + local deques under work stealing).
    pub queue_depth: usize,
    /// Per-shard breakdowns.
    pub shards: Vec<ShardMetricsSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_accounting_accumulates() {
        let m = ShardMetrics::default();
        m.record_batch(3, 1, &[Duration::from_micros(10); 3]);
        m.record_batch(5, 0, &[Duration::from_micros(20); 5]);
        let snap = m.snapshot(1, 7, 4);
        assert_eq!(snap.shard, 1);
        assert_eq!(snap.epoch, 7);
        assert_eq!(snap.members, 4);
        assert_eq!(snap.served, 8);
        assert_eq!(snap.failed, 1);
        assert_eq!(snap.batches, 2);
        assert!((snap.mean_batch_fill - 4.0).abs() < 1e-12);
        let latency = snap.latency.expect("samples recorded");
        assert_eq!(latency.samples, 8);
        assert_eq!(latency.max, Duration::from_micros(20));
    }

    #[test]
    fn empty_metrics_have_no_profile() {
        let snap = ShardMetrics::default().snapshot(0, 0, 0);
        assert!(snap.latency.is_none());
        assert_eq!(snap.mean_batch_fill, 0.0);
    }

    #[test]
    fn reservoir_wraps_at_capacity() {
        let mut r = Reservoir::default();
        for i in 0..(RESERVOIR_CAPACITY + 10) {
            r.record(Duration::from_nanos(i as u64));
        }
        assert_eq!(r.ring.len(), RESERVOIR_CAPACITY);
        // The oldest 10 samples were overwritten.
        assert!(r.ring.contains(&Duration::from_nanos(RESERVOIR_CAPACITY as u64)));
        assert!(!r.ring.contains(&Duration::from_nanos(5)));
    }
}
