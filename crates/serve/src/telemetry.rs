//! One [`TelemetrySnapshot`] across every layer of the serving stack.
//!
//! Each layer already exposes a point-in-time stats struct
//! ([`EngineMetrics`], [`GossipMetrics`], [`TcpStats`], [`ChaosStats`],
//! [`TracerStats`]); this module maps them all into one
//! [`TelemetrySnapshot`] under a stable `hdhash_*` naming scheme, so a
//! single call to [`TelemetrySnapshot::to_prometheus`] or
//! [`TelemetrySnapshot::to_json`] exports the whole system — engine,
//! gossip, TCP transport, chaos harness, and the tracer's own
//! bookkeeping — in one exposition.
//!
//! Every exporter takes a caller-supplied label set (typically
//! `[("replica", "3")]` in cluster contexts, empty for a single engine)
//! that is applied to each emitted sample, so snapshots from several
//! replicas can be merged into one exposition without name collisions.
//!
//! The full metric catalog is documented in `docs/OBSERVABILITY.md`.

use hdhash_obs::{TelemetrySnapshot, TracerStats};

use crate::chaos::ChaosStats;
use crate::gossip::GossipMetrics;
use crate::metrics::EngineMetrics;
use crate::tcp::TcpStats;

/// Appends the engine-layer samples (submission/completion counters,
/// queue depth, panic containment, and per-shard serving counters plus
/// the full latency histogram, labeled `shard="N"`).
pub fn export_engine(out: &mut TelemetrySnapshot, labels: &[(&str, &str)], m: &EngineMetrics) {
    out.push_counter(
        "hdhash_engine_submitted_total",
        "Requests accepted into the scheduler queue",
        labels,
        m.submitted,
    );
    out.push_counter(
        "hdhash_engine_rejected_total",
        "Requests refused at queue capacity (backpressure)",
        labels,
        m.rejected,
    );
    out.push_counter(
        "hdhash_engine_completed_total",
        "Requests served to completion (error verdicts included)",
        labels,
        m.completed,
    );
    out.push_counter(
        "hdhash_engine_panics_contained_total",
        "Worker panics caught and contained by ticket backfill",
        labels,
        m.panics_contained,
    );
    out.push_gauge(
        "hdhash_engine_queue_depth",
        "Requests currently parked in the scheduling substrate",
        labels,
        m.queue_depth as f64,
    );
    for shard in &m.shards {
        let idx = shard.shard.to_string();
        let mut shard_labels: Vec<(&str, &str)> = labels.to_vec();
        shard_labels.push(("shard", idx.as_str()));
        out.push_counter(
            "hdhash_shard_served_total",
            "Lookups served by this shard",
            &shard_labels,
            shard.served,
        );
        out.push_counter(
            "hdhash_shard_failed_total",
            "Lookups whose verdict was an error",
            &shard_labels,
            shard.failed,
        );
        out.push_counter(
            "hdhash_shard_batches_total",
            "Coalesced batches executed against this shard",
            &shard_labels,
            shard.batches,
        );
        out.push_gauge(
            "hdhash_shard_epoch",
            "The shard's currently published membership epoch",
            &shard_labels,
            shard.epoch as f64,
        );
        out.push_gauge(
            "hdhash_shard_members",
            "Members live in the published epoch",
            &shard_labels,
            shard.members as f64,
        );
        out.push_gauge(
            "hdhash_shard_mean_batch_fill",
            "Mean lookups per coalesced batch (the coalescing win)",
            &shard_labels,
            shard.mean_batch_fill,
        );
        out.push_histogram(
            "hdhash_shard_latency_ns",
            "Submit-to-response latency distribution in nanoseconds",
            &shard_labels,
            shard.latency_hist,
        );
    }
}

/// Appends the gossip-layer samples: protocol counters (rounds, adverts,
/// syncs, bytes), the retry/abandon accounting, and the failure
/// detector's per-state peer counts.
pub fn export_gossip(out: &mut TelemetrySnapshot, labels: &[(&str, &str)], m: &GossipMetrics) {
    let counters: [(&str, &str, u64); 19] = [
        ("hdhash_gossip_rounds_total", "Gossip rounds opened", m.rounds),
        ("hdhash_gossip_adverts_sent_total", "Signature adverts sent", m.adverts_sent),
        ("hdhash_gossip_adverts_received_total", "Signature adverts received", m.adverts_received),
        (
            "hdhash_gossip_divergence_detections_total",
            "Adverts that revealed divergence",
            m.divergence_detections,
        ),
        (
            "hdhash_gossip_divergent_shards_total",
            "Shards found divergent across all detections",
            m.divergent_shards,
        ),
        ("hdhash_gossip_syncs_sent_total", "Sync requests sent", m.syncs_sent),
        ("hdhash_gossip_syncs_received_total", "Sync requests received", m.syncs_received),
        ("hdhash_gossip_records_adopted_total", "Member records adopted in merges", m.records_adopted),
        ("hdhash_gossip_members_joined_total", "Members learned via gossip", m.members_joined),
        ("hdhash_gossip_members_left_total", "Members removed via gossip", m.members_left),
        ("hdhash_gossip_bytes_sent_total", "Protocol bytes sent (wire accounting)", m.bytes_sent),
        ("hdhash_gossip_bytes_received_total", "Protocol bytes received", m.bytes_received),
        ("hdhash_gossip_send_failures_total", "Transport sends that failed", m.send_failures),
        ("hdhash_gossip_protocol_errors_total", "Malformed or incompatible messages", m.protocol_errors),
        (
            "hdhash_gossip_tombstones_expired_total",
            "Tombstones expired by the watermark GC",
            m.tombstones_expired,
        ),
        ("hdhash_gossip_sync_retries_total", "Sync requests retransmitted", m.sync_retries),
        (
            "hdhash_gossip_sync_abandoned_total",
            "In-flight syncs abandoned at the retry cap",
            m.sync_abandoned,
        ),
        ("hdhash_gossip_retry_bytes_total", "Bytes spent on retransmissions", m.retry_bytes),
        ("hdhash_gossip_probes_sent_total", "Fanout slots redirected to dead peers", m.probes_sent),
    ];
    for (name, help, value) in counters {
        out.push_counter(name, help, labels, value);
    }
    out.push_gauge(
        "hdhash_gossip_peers_alive",
        "Peers the failure detector currently reads as alive",
        labels,
        m.peers_alive as f64,
    );
    out.push_gauge(
        "hdhash_gossip_peers_suspect",
        "Peers the failure detector currently reads as suspect",
        labels,
        m.peers_suspect as f64,
    );
    out.push_gauge(
        "hdhash_gossip_peers_dead",
        "Peers the failure detector currently reads as dead",
        labels,
        m.peers_dead as f64,
    );
}

/// Appends the TCP-transport samples: connection lifecycle, framing, and
/// the slow-peer drop-oldest backpressure counter.
pub fn export_tcp(out: &mut TelemetrySnapshot, labels: &[(&str, &str)], m: &TcpStats) {
    let counters: [(&str, &str, u64); 12] = [
        (
            "hdhash_tcp_connections_established_total",
            "Outbound connections successfully dialed",
            m.connections_established,
        ),
        (
            "hdhash_tcp_connections_reconnected_total",
            "Established connections that replaced an earlier one",
            m.connections_reconnected,
        ),
        ("hdhash_tcp_connections_accepted_total", "Inbound connections accepted", m.connections_accepted),
        ("hdhash_tcp_connect_failures_total", "Outbound dials that failed", m.connect_failures),
        ("hdhash_tcp_frames_sent_total", "Frames written to sockets", m.frames_sent),
        ("hdhash_tcp_frames_received_total", "Frames decoded off sockets", m.frames_received),
        ("hdhash_tcp_bytes_sent_total", "Bytes written to sockets (frame overhead included)", m.bytes_sent),
        ("hdhash_tcp_bytes_received_total", "Bytes read off sockets", m.bytes_received),
        ("hdhash_tcp_send_errors_total", "Writes that broke the connection", m.send_errors),
        ("hdhash_tcp_corrupt_frames_total", "Frames rejected by validation", m.corrupt_frames),
        ("hdhash_tcp_partial_frames_total", "Connections condemned mid-frame", m.partial_frames),
        (
            "hdhash_tcp_peer_backpressure_drops_total",
            "Oldest frames dropped from a slow peer's bounded outbox",
            m.peer_backpressure_drops,
        ),
    ];
    for (name, help, value) in counters {
        out.push_counter(name, help, labels, value);
    }
}

/// Appends the chaos-harness samples: the fault plan's delivery /
/// drop / delay / reorder accounting.
pub fn export_chaos(out: &mut TelemetrySnapshot, labels: &[(&str, &str)], m: &ChaosStats) {
    let counters: [(&str, &str, u64); 10] = [
        ("hdhash_chaos_offered_total", "Messages offered to the chaos layer", m.offered),
        ("hdhash_chaos_duplicated_total", "Messages duplicated in flight", m.duplicated),
        ("hdhash_chaos_delivered_total", "Messages delivered to the inbox", m.delivered),
        ("hdhash_chaos_dropped_random_total", "Messages dropped by random loss", m.dropped_random),
        ("hdhash_chaos_dropped_partition_total", "Messages dropped by partitions", m.dropped_partition),
        ("hdhash_chaos_dropped_crash_total", "Messages dropped into crashed replicas", m.dropped_crash),
        (
            "hdhash_chaos_dropped_disconnected_total",
            "Messages dropped to unknown or disconnected peers",
            m.dropped_disconnected,
        ),
        ("hdhash_chaos_delayed_total", "Messages held for bounded delay", m.delayed),
        ("hdhash_chaos_reordered_total", "Messages delivered out of order", m.reordered),
        ("hdhash_chaos_purged_on_crash_total", "In-flight messages purged by crashes", m.purged_on_crash),
    ];
    for (name, help, value) in counters {
        out.push_counter(name, help, labels, value);
    }
    out.push_gauge(
        "hdhash_chaos_in_flight",
        "Messages currently held in the delay queue",
        labels,
        m.in_flight as f64,
    );
    out.push_gauge(
        "hdhash_chaos_stalled",
        "Messages parked against stalled (crashed) destinations",
        labels,
        m.stalled as f64,
    );
}

/// Appends the tracer's own bookkeeping: how many events were recorded
/// vs. dropped at ring capacity, and the request sampling accounting —
/// the honesty counters that say how complete the trace is.
pub fn export_tracer(out: &mut TelemetrySnapshot, labels: &[(&str, &str)], s: &TracerStats) {
    out.push_counter(
        "hdhash_trace_events_recorded_total",
        "Trace events accepted into the ring",
        labels,
        s.events_recorded,
    );
    out.push_counter(
        "hdhash_trace_events_dropped_total",
        "Trace events dropped because the ring was full",
        labels,
        s.events_dropped,
    );
    out.push_counter(
        "hdhash_trace_requests_sampled_total",
        "Requests that drew a trace id",
        labels,
        s.requests_sampled,
    );
    out.push_counter(
        "hdhash_trace_requests_seen_total",
        "Requests that passed through the sampling decision",
        labels,
        s.requests_seen,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gossip::GossipMetrics;
    use crate::metrics::EngineMetrics;

    fn zero_gossip() -> GossipMetrics {
        GossipMetrics {
            rounds: 3,
            adverts_sent: 6,
            adverts_received: 5,
            divergence_detections: 1,
            divergent_shards: 2,
            syncs_sent: 1,
            syncs_received: 1,
            records_adopted: 4,
            members_joined: 4,
            members_left: 0,
            bytes_sent: 1234,
            bytes_received: 1200,
            send_failures: 0,
            protocol_errors: 0,
            tombstones_expired: 0,
            sync_retries: 2,
            sync_abandoned: 1,
            retry_bytes: 90,
            probes_sent: 0,
            peers_alive: 2,
            peers_suspect: 1,
            peers_dead: 0,
        }
    }

    #[test]
    fn unified_snapshot_covers_every_layer_and_validates() {
        let mut out = TelemetrySnapshot::new();
        let engine = EngineMetrics {
            scheduler: "work_stealing",
            submitted: 100,
            rejected: 2,
            completed: 98,
            panics_contained: 1,
            queue_depth: 0,
            shards: Vec::new(),
        };
        export_engine(&mut out, &[("replica", "0")], &engine);
        export_gossip(&mut out, &[("replica", "0")], &zero_gossip());
        export_tcp(&mut out, &[("replica", "0")], &TcpStats::default());
        export_chaos(&mut out, &[], &ChaosStats::default());
        export_tracer(
            &mut out,
            &[],
            &TracerStats {
                events_recorded: 10,
                events_dropped: 3,
                requests_sampled: 5,
                requests_seen: 320,
            },
        );
        // The satellite counters the issue calls out must all be present.
        assert_eq!(out.total("hdhash_engine_panics_contained_total"), 1.0);
        assert_eq!(out.total("hdhash_gossip_sync_retries_total"), 2.0);
        assert_eq!(out.total("hdhash_gossip_sync_abandoned_total"), 1.0);
        assert_eq!(out.get("hdhash_tcp_peer_backpressure_drops_total"), Some(0.0));
        assert_eq!(out.total("hdhash_trace_events_dropped_total"), 3.0);
        // And the whole exposition must survive the vendored parser.
        let text = out.to_prometheus();
        let parsed = hdhash_obs::promparse::parse(&text).expect("parses");
        hdhash_obs::promparse::validate(&parsed).expect("validates");
        let bytes = parsed
            .series_named("hdhash_gossip_bytes_sent_total")
            .into_iter()
            .find(|s| s.label("replica") == Some("0"))
            .expect("labeled series present");
        assert_eq!(bytes.value, 1234.0);
    }

    #[test]
    fn shard_histograms_export_with_labels() {
        use crate::metrics::ShardMetricsSnapshot;
        use hdhash_obs::LogHistogram;
        let hist = LogHistogram::new();
        for v in [100, 200, 400, 800] {
            hist.record(v);
        }
        let mut out = TelemetrySnapshot::new();
        let engine = EngineMetrics {
            scheduler: "shared_queue",
            submitted: 4,
            rejected: 0,
            completed: 4,
            panics_contained: 0,
            queue_depth: 0,
            shards: vec![ShardMetricsSnapshot {
                shard: 7,
                epoch: 3,
                members: 8,
                served: 4,
                failed: 0,
                batches: 1,
                mean_batch_fill: 4.0,
                latency: None,
                latency_hist: hist.snapshot(),
            }],
        };
        export_engine(&mut out, &[], &engine);
        let snap = out.histogram("hdhash_shard_latency_ns").expect("histogram exported");
        assert_eq!(snap.count, 4);
        assert_eq!(snap.sum, 1500);
        let text = out.to_prometheus();
        assert!(text.contains("hdhash_shard_latency_ns_bucket{shard=\"7\",le=\"+Inf\"} 4"));
        let parsed = hdhash_obs::promparse::parse(&text).expect("parses");
        hdhash_obs::promparse::validate(&parsed).expect("validates");
    }
}
