//! Deterministic fault injection for the replica transport.
//!
//! [`ChaosNetwork`] decorates an [`InProcessNetwork`] with a seeded,
//! scriptable [`FaultPlan`]: per-link drop probability, bounded delay,
//! duplication, reordering, **asymmetric** partitions, and whole-replica
//! crash/restart windows. Every decision is a pure function of
//! `(seed, link, per-link sequence number)`, so a failing scenario replays
//! bit-for-bit from its printed seed — the property the chaos suite
//! (`tests/chaos.rs`) and `bench_chaos` are built on.
//!
//! Faults are expressed in **chaos rounds**, a virtual clock advanced by
//! the harness via [`ChaosNetwork::advance_round`]. Delayed and reordered
//! messages sit in a central held queue and are released at round
//! boundaries, which makes "in flight" observable: the fault counters
//! reconcile exactly,
//!
//! ```text
//!   offered + duplicated = delivered + dropped + in_flight
//! ```
//!
//! where `dropped` sums the random, partition, crash and disconnect drop
//! counters ([`ChaosStats::dropped_total`]). Messages purged from a
//! crashed replica's mailbox were already `delivered` to the wire and are
//! tallied separately ([`ChaosStats::purged_on_crash`]).
//!
//! The decorator is transparent to the gossip layer: [`ChaosEndpoint`]
//! implements [`Transport`], so a [`GossipNode`](crate::gossip::GossipNode)
//! wired over it cannot tell a hostile network from a healthy one — which
//! is exactly the point.

use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::gossip::GossipMessage;
use crate::transport::{
    Envelope, InProcessEndpoint, InProcessNetwork, ReplicaId, Transport, TransportError,
};

/// Per-directed-link fault probabilities, in per-mille (`0..=1000`).
///
/// Integer probabilities keep every decision exactly reproducible across
/// platforms — no floating point is involved anywhere in the fault path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkFaults {
    /// Probability the message is silently dropped.
    pub drop_per_mille: u16,
    /// Probability the message is delivered twice (the duplicate copy is
    /// held to the next round, like a late retransmission).
    pub duplicate_per_mille: u16,
    /// Probability the message is held for a bounded number of rounds.
    pub delay_per_mille: u16,
    /// Upper bound on the delay, in rounds (`≥ 1` when delay fires; a
    /// configured `0` is treated as `1`).
    pub max_delay_rounds: u64,
    /// Probability the message is held past the rest of this round's
    /// traffic (delivered at the next round boundary — reordered relative
    /// to everything sent after it this round).
    pub reorder_per_mille: u16,
    /// Probability the send *fails at the sender* with
    /// [`TransportError::Timeout`] — modelling a write deadline expiring
    /// on a stalled connection (the TCP transport's
    /// `set_write_timeout` path). Unlike a silent drop, the sender
    /// observes the failure; the message is still lost.
    pub stall_per_mille: u16,
}

impl LinkFaults {
    /// No faults at all — the decorator becomes a pass-through.
    pub const RELIABLE: Self = Self {
        drop_per_mille: 0,
        duplicate_per_mille: 0,
        delay_per_mille: 0,
        max_delay_rounds: 0,
        reorder_per_mille: 0,
        stall_per_mille: 0,
    };

    /// A link that only drops, with probability `drop_per_mille`/1000.
    #[must_use]
    pub const fn lossy(drop_per_mille: u16) -> Self {
        Self { drop_per_mille, ..Self::RELIABLE }
    }

    /// Whether this configuration injects no faults.
    #[must_use]
    pub fn is_reliable(&self) -> bool {
        *self == Self::RELIABLE
    }
}

impl Default for LinkFaults {
    fn default() -> Self {
        Self::RELIABLE
    }
}

/// A one-way partition: messages `from → to` are dropped while the
/// chaos round is inside `rounds`. Symmetric partitions are two of these
/// (see [`FaultPlan::with_partition`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Sending side of the severed direction.
    pub from: ReplicaId,
    /// Receiving side of the severed direction.
    pub to: ReplicaId,
    /// Active round window (half-open, in chaos rounds).
    pub rounds: Range<u64>,
}

/// A whole-replica crash window: while the chaos round is inside
/// `rounds`, the replica sends nothing, receives nothing, and loses
/// whatever already sat in its mailbox the next time it polls. When the
/// window ends the replica "restarts" with its in-memory state intact
/// (process-pause semantics; durable-state restart is a transport-level
/// concern a socket layer would add).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashWindow {
    /// The crashed replica.
    pub replica: ReplicaId,
    /// Active round window (half-open, in chaos rounds).
    pub rounds: Range<u64>,
}

/// A seeded, scriptable fault scenario for a [`ChaosNetwork`].
///
/// # Examples
///
/// 25% loss everywhere, a one-way partition of replica 0 from replica 1
/// for rounds 2..6, and replica 2 crashed for rounds 3..5:
///
/// ```
/// use hdhash_serve::chaos::{FaultPlan, LinkFaults};
/// use hdhash_serve::transport::ReplicaId;
///
/// let plan = FaultPlan::new(0xC0FFEE)
///     .with_default_link(LinkFaults::lossy(250))
///     .with_partition_one_way(ReplicaId::new(0), ReplicaId::new(1), 2..6)
///     .with_crash(ReplicaId::new(2), 3..5);
/// assert_eq!(plan.seed, 0xC0FFEE);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed of every probabilistic decision; printing it is enough to
    /// replay the scenario.
    pub seed: u64,
    /// Faults applied to links without an explicit override.
    pub default_link: LinkFaults,
    /// Per-directed-link overrides `(from, to, faults)`.
    pub links: Vec<(ReplicaId, ReplicaId, LinkFaults)>,
    /// Scripted one-way partitions.
    pub partitions: Vec<Partition>,
    /// Scripted crash windows.
    pub crashes: Vec<CrashWindow>,
}

impl FaultPlan {
    /// A plan with no faults; add them with the builder methods.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            default_link: LinkFaults::RELIABLE,
            links: Vec::new(),
            partitions: Vec::new(),
            crashes: Vec::new(),
        }
    }

    /// Sets the fault profile of every link without an override.
    #[must_use]
    pub fn with_default_link(mut self, faults: LinkFaults) -> Self {
        self.default_link = faults;
        self
    }

    /// Overrides the fault profile of the directed link `from → to`.
    #[must_use]
    pub fn with_link(mut self, from: ReplicaId, to: ReplicaId, faults: LinkFaults) -> Self {
        self.links.push((from, to, faults));
        self
    }

    /// Severs the directed link `from → to` for the given round window —
    /// the **asymmetric** partition primitive (`to` can still reach
    /// `from`).
    #[must_use]
    pub fn with_partition_one_way(
        mut self,
        from: ReplicaId,
        to: ReplicaId,
        rounds: Range<u64>,
    ) -> Self {
        self.partitions.push(Partition { from, to, rounds });
        self
    }

    /// Severs both directions between `a` and `b` for the round window.
    #[must_use]
    pub fn with_partition(self, a: ReplicaId, b: ReplicaId, rounds: Range<u64>) -> Self {
        self.with_partition_one_way(a, b, rounds.clone()).with_partition_one_way(b, a, rounds)
    }

    /// Crashes `replica` for the round window (no sends, no receipt,
    /// mailbox purged on poll).
    #[must_use]
    pub fn with_crash(mut self, replica: ReplicaId, rounds: Range<u64>) -> Self {
        self.crashes.push(CrashWindow { replica, rounds });
        self
    }

    /// The fault profile of the directed link `from → to`.
    #[must_use]
    pub fn link_faults(&self, from: ReplicaId, to: ReplicaId) -> LinkFaults {
        self.links
            .iter()
            .find(|(f, t, _)| *f == from && *t == to)
            .map_or(self.default_link, |(_, _, faults)| *faults)
    }

    /// Whether the directed link `from → to` is partitioned at `round`.
    #[must_use]
    pub fn partitioned(&self, from: ReplicaId, to: ReplicaId, round: u64) -> bool {
        self.partitions
            .iter()
            .any(|p| p.from == from && p.to == to && p.rounds.contains(&round))
    }

    /// Whether `replica` is inside a crash window at `round`.
    #[must_use]
    pub fn crashed(&self, replica: ReplicaId, round: u64) -> bool {
        self.crashes.iter().any(|c| c.replica == replica && c.rounds.contains(&round))
    }
}

/// Point-in-time fault counters, snapshotted by [`ChaosNetwork::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Messages handed to the chaos layer by senders.
    pub offered: u64,
    /// Extra copies created by duplication faults.
    pub duplicated: u64,
    /// Messages (or copies) that reached a mailbox.
    pub delivered: u64,
    /// Random per-link drops.
    pub dropped_random: u64,
    /// Drops by an active partition.
    pub dropped_partition: u64,
    /// Drops because an end of the link was crashed.
    pub dropped_crash: u64,
    /// Drops because the destination endpoint was gone (unregistered or
    /// dropped) when the chaos layer tried to deliver.
    pub dropped_disconnected: u64,
    /// Messages held for a bounded number of rounds.
    pub delayed: u64,
    /// Messages held past later same-round traffic.
    pub reordered: u64,
    /// Messages currently sitting in the held queue.
    pub in_flight: u64,
    /// Sends rejected with [`TransportError::Timeout`] by an injected
    /// stall — sender-visible loss, counted into
    /// [`dropped_total`](Self::dropped_total).
    pub stalled: u64,
    /// Mailbox messages discarded because their owner polled while
    /// crashed. These were already counted `delivered`, so they sit
    /// outside the reconciliation identity.
    pub purged_on_crash: u64,
}

impl ChaosStats {
    /// Every drop bucket summed.
    #[must_use]
    pub fn dropped_total(&self) -> u64 {
        self.dropped_random
            + self.dropped_partition
            + self.dropped_crash
            + self.dropped_disconnected
            + self.stalled
    }

    /// The conservation identity every snapshot must satisfy:
    /// `offered + duplicated = delivered + dropped + in_flight`.
    #[must_use]
    pub fn reconciles(&self) -> bool {
        self.offered + self.duplicated == self.delivered + self.dropped_total() + self.in_flight
    }
}

#[derive(Debug, Default)]
struct ChaosCounters {
    offered: AtomicU64,
    duplicated: AtomicU64,
    delivered: AtomicU64,
    dropped_random: AtomicU64,
    dropped_partition: AtomicU64,
    dropped_crash: AtomicU64,
    dropped_disconnected: AtomicU64,
    delayed: AtomicU64,
    reordered: AtomicU64,
    stalled: AtomicU64,
    purged_on_crash: AtomicU64,
}

/// A message parked in the held queue (delayed, reordered, or a late
/// duplicate copy).
#[derive(Debug)]
struct HeldMessage {
    release: u64,
    seq: u64,
    from: ReplicaId,
    to: ReplicaId,
    message: GossipMessage,
}

/// The chaos decorator over an [`InProcessNetwork`]: carve per-replica
/// [`ChaosEndpoint`]s with [`endpoint`](Self::endpoint), drive the virtual
/// clock with [`advance_round`](Self::advance_round), and stop all faults
/// with [`heal`](Self::heal).
#[derive(Debug)]
pub struct ChaosNetwork {
    inner: Arc<InProcessNetwork>,
    plan: FaultPlan,
    /// Current chaos round (virtual time; advanced by the harness).
    round: AtomicU64,
    /// Once set, every fault is disabled and held traffic is flushed.
    healed: AtomicBool,
    /// Per-directed-link message sequence numbers — the third input of
    /// every fault decision, so a link's fault sequence depends only on
    /// its own traffic order.
    link_seq: Mutex<BTreeMap<(u64, u64), u64>>,
    /// Tie-break for held-queue release order.
    hold_seq: AtomicU64,
    held: Mutex<Vec<HeldMessage>>,
    counters: ChaosCounters,
}

impl ChaosNetwork {
    /// Builds a chaos network executing `plan` over a fresh in-process
    /// network.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Arc<Self> {
        Arc::new(Self {
            inner: InProcessNetwork::new(),
            plan,
            round: AtomicU64::new(0),
            healed: AtomicBool::new(false),
            link_seq: Mutex::new(BTreeMap::new()),
            hold_seq: AtomicU64::new(0),
            held: Mutex::new(Vec::new()),
            counters: ChaosCounters::default(),
        })
    }

    /// Registers `id` and returns its fault-injected endpoint.
    #[must_use]
    pub fn endpoint(self: &Arc<Self>, id: ReplicaId) -> ChaosEndpoint {
        ChaosEndpoint { net: Arc::clone(self), inner: self.inner.endpoint(id) }
    }

    /// The scripted scenario this network executes.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The current chaos round.
    #[must_use]
    pub fn round(&self) -> u64 {
        self.round.load(Ordering::Relaxed)
    }

    /// Messages currently parked in the held queue.
    #[must_use]
    pub fn in_flight(&self) -> u64 {
        self.held.lock().len() as u64
    }

    /// Whether [`heal`](Self::heal) has been called.
    #[must_use]
    pub fn is_healed(&self) -> bool {
        self.healed.load(Ordering::Acquire)
    }

    /// Whether `replica` is currently inside a crash window (always
    /// `false` after [`heal`](Self::heal)).
    #[must_use]
    pub fn is_crashed(&self, replica: ReplicaId) -> bool {
        !self.is_healed() && self.plan.crashed(replica, self.round())
    }

    /// Advances the virtual clock one round and releases held messages
    /// that came due (re-checking partitions and crashes at release
    /// time). Returns the new round.
    pub fn advance_round(&self) -> u64 {
        let round = self.round.fetch_add(1, Ordering::Relaxed) + 1;
        self.release_due(round);
        round
    }

    /// Disables every fault from now on and flushes the held queue —
    /// "the network went quiet"; the convergence-after-heal invariant is
    /// asserted after this call.
    pub fn heal(&self) {
        self.healed.store(true, Ordering::Release);
        self.release_due(u64::MAX);
    }

    /// Point-in-time fault counters.
    #[must_use]
    pub fn stats(&self) -> ChaosStats {
        let c = &self.counters;
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        ChaosStats {
            offered: load(&c.offered),
            duplicated: load(&c.duplicated),
            delivered: load(&c.delivered),
            dropped_random: load(&c.dropped_random),
            dropped_partition: load(&c.dropped_partition),
            dropped_crash: load(&c.dropped_crash),
            dropped_disconnected: load(&c.dropped_disconnected),
            delayed: load(&c.delayed),
            reordered: load(&c.reordered),
            stalled: load(&c.stalled),
            in_flight: self.in_flight(),
            purged_on_crash: load(&c.purged_on_crash),
        }
    }

    fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Applies the fault plan to one offered message. Fault checks run in
    /// a fixed order (crash, partition, then one probabilistic fault:
    /// drop > duplicate > delay > reorder), each consuming one draw from
    /// the link's decision stream so later checks stay aligned across
    /// replays regardless of which fault fires.
    fn dispatch(
        &self,
        from: ReplicaId,
        to: ReplicaId,
        message: GossipMessage,
    ) -> Result<(), TransportError> {
        Self::add(&self.counters.offered, 1);
        if self.is_healed() {
            return self.deliver(from, to, message);
        }
        let round = self.round();
        if self.plan.crashed(from, round) || self.plan.crashed(to, round) {
            Self::add(&self.counters.dropped_crash, 1);
            return Ok(());
        }
        if self.plan.partitioned(from, to, round) {
            Self::add(&self.counters.dropped_partition, 1);
            return Ok(());
        }
        let faults = self.plan.link_faults(from, to);
        if faults.is_reliable() {
            return self.deliver(from, to, message);
        }
        let mut state = self.decision_state(from, to);
        if per_mille(&mut state, faults.drop_per_mille) {
            Self::add(&self.counters.dropped_random, 1);
            return Ok(());
        }
        if per_mille(&mut state, faults.stall_per_mille) {
            // Sender-visible loss: the write deadline expired. Same
            // failure the TCP transport surfaces for a wedged peer.
            Self::add(&self.counters.stalled, 1);
            return Err(TransportError::Timeout(to));
        }
        if per_mille(&mut state, faults.duplicate_per_mille) {
            // The extra copy trails one round behind, like a late
            // retransmission; the original goes through normally.
            Self::add(&self.counters.duplicated, 1);
            self.hold(round + 1, from, to, message.clone());
        }
        if per_mille(&mut state, faults.delay_per_mille) {
            let span = faults.max_delay_rounds.max(1);
            let delay = 1 + draw(&mut state) % span;
            Self::add(&self.counters.delayed, 1);
            self.hold(round + delay, from, to, message);
            return Ok(());
        }
        if per_mille(&mut state, faults.reorder_per_mille) {
            // Held to the next round boundary: everything sent later this
            // round overtakes it.
            Self::add(&self.counters.reordered, 1);
            self.hold(round + 1, from, to, message);
            return Ok(());
        }
        self.deliver(from, to, message)
    }

    /// Seeds the per-message decision stream: a pure function of the
    /// plan seed, the directed link, and that link's message ordinal.
    fn decision_state(&self, from: ReplicaId, to: ReplicaId) -> u64 {
        let key = (from.get(), to.get());
        let seq = {
            let mut map = self.link_seq.lock();
            let entry = map.entry(key).or_insert(0);
            *entry += 1;
            *entry
        };
        let link = hdhash_hashfn::mix64(
            from.get().wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ hdhash_hashfn::mix64(to.get()),
        );
        hdhash_hashfn::mix64(self.plan.seed ^ link ^ hdhash_hashfn::mix64(seq))
    }

    fn hold(&self, release: u64, from: ReplicaId, to: ReplicaId, message: GossipMessage) {
        let seq = self.hold_seq.fetch_add(1, Ordering::Relaxed);
        self.held.lock().push(HeldMessage { release, seq, from, to, message });
    }

    fn deliver(
        &self,
        from: ReplicaId,
        to: ReplicaId,
        message: GossipMessage,
    ) -> Result<(), TransportError> {
        match self.inner.route(from, to, message) {
            Ok(()) => {
                Self::add(&self.counters.delivered, 1);
                Ok(())
            }
            Err(err) => {
                Self::add(&self.counters.dropped_disconnected, 1);
                Err(err)
            }
        }
    }

    /// Releases held messages due at or before `round`, in hold order,
    /// re-checking receiver crash and partition state at release time (a
    /// message delayed *into* a partition window is lost, as it would be
    /// on a real wire).
    fn release_due(&self, round: u64) {
        let mut due: Vec<HeldMessage> = {
            let mut held = self.held.lock();
            let mut due = Vec::new();
            let mut keep = Vec::new();
            for entry in held.drain(..) {
                if entry.release <= round {
                    due.push(entry);
                } else {
                    keep.push(entry);
                }
            }
            *held = keep;
            due
        };
        due.sort_unstable_by_key(|m| m.seq);
        let healed = self.is_healed();
        for HeldMessage { from, to, message, .. } in due {
            if !healed && self.plan.crashed(to, round) {
                Self::add(&self.counters.dropped_crash, 1);
            } else if !healed && self.plan.partitioned(from, to, round) {
                Self::add(&self.counters.dropped_partition, 1);
            } else {
                // Disconnects are counted inside `deliver`; with no
                // caller to hand the error to, it ends there.
                let _ = self.deliver(from, to, message);
            }
        }
    }

    /// Discards everything in `inbox`, counting each message as purged —
    /// the "process restarted, inbox lost" half of crash semantics.
    fn purge_inbox(&self, inbox: &InProcessEndpoint) {
        while inbox.try_recv().is_some() {
            Self::add(&self.counters.purged_on_crash, 1);
        }
    }
}

/// Advances the decision stream one draw.
fn draw(state: &mut u64) -> u64 {
    *state = hdhash_hashfn::mix64(state.wrapping_add(0xD1B5_4A32_D192_ED03));
    *state
}

/// One probabilistic check: consumes a draw, fires with `p`/1000.
fn per_mille(state: &mut u64, p: u16) -> bool {
    draw(state) % 1000 < u64::from(p)
}

/// One replica's fault-injected connection to a [`ChaosNetwork`].
#[derive(Debug)]
pub struct ChaosEndpoint {
    net: Arc<ChaosNetwork>,
    inner: InProcessEndpoint,
}

impl ChaosEndpoint {
    /// The chaos network this endpoint is wired to.
    #[must_use]
    pub fn network(&self) -> &Arc<ChaosNetwork> {
        &self.net
    }
}

impl Transport for ChaosEndpoint {
    fn local(&self) -> ReplicaId {
        self.inner.local()
    }

    fn send(&self, to: ReplicaId, message: GossipMessage) -> Result<(), TransportError> {
        self.net.dispatch(self.local(), to, message)
    }

    fn try_recv(&self) -> Option<Envelope> {
        if self.net.is_crashed(self.local()) {
            self.net.purge_inbox(&self.inner);
            return None;
        }
        self.inner.try_recv()
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<Envelope> {
        if self.net.is_crashed(self.local()) {
            self.net.purge_inbox(&self.inner);
            // A crashed process doesn't spin; model the blocking poll as
            // the timeout elapsing with nothing to show.
            std::thread::sleep(timeout);
            return None;
        }
        self.inner.recv_timeout(timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn advert(round: u64) -> GossipMessage {
        GossipMessage::Advert { round, signatures: Vec::new(), ack: None }
    }

    fn ids(n: u64) -> Vec<ReplicaId> {
        (0..n).map(ReplicaId::new).collect()
    }

    #[test]
    fn reliable_plan_is_a_pass_through() {
        let net = ChaosNetwork::new(FaultPlan::new(1));
        let r = ids(2);
        let a = net.endpoint(r[0]);
        let b = net.endpoint(r[1]);
        for round in 0..8 {
            a.send(r[1], advert(round)).expect("registered");
        }
        let mut got = 0;
        while let Some(envelope) = b.try_recv() {
            assert_eq!(envelope.from, r[0]);
            got += 1;
        }
        assert_eq!(got, 8);
        let stats = net.stats();
        assert_eq!(stats.offered, 8);
        assert_eq!(stats.delivered, 8);
        assert_eq!(stats.dropped_total(), 0);
        assert!(stats.reconciles());
    }

    #[test]
    fn drop_rate_drops_and_counters_reconcile() {
        let plan = FaultPlan::new(42).with_default_link(LinkFaults::lossy(500));
        let net = ChaosNetwork::new(plan);
        let r = ids(2);
        let a = net.endpoint(r[0]);
        let b = net.endpoint(r[1]);
        for round in 0..200 {
            a.send(r[1], advert(round)).expect("registered");
        }
        let mut got = 0;
        while b.try_recv().is_some() {
            got += 1;
        }
        let stats = net.stats();
        assert_eq!(stats.offered, 200);
        assert_eq!(stats.delivered, got);
        assert!(stats.dropped_random > 50, "~50% of 200 should drop");
        assert!(stats.dropped_random < 150);
        assert!(stats.reconciles(), "{stats:?}");
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let run = |seed: u64| -> (Vec<u64>, ChaosStats) {
            let plan = FaultPlan::new(seed).with_default_link(LinkFaults {
                drop_per_mille: 300,
                duplicate_per_mille: 150,
                delay_per_mille: 150,
                max_delay_rounds: 3,
                reorder_per_mille: 150,
                stall_per_mille: 100,
            });
            let net = ChaosNetwork::new(plan);
            let r = ids(2);
            let a = net.endpoint(r[0]);
            let b = net.endpoint(r[1]);
            let mut order = Vec::new();
            for round in 0..64 {
                let _ = a.send(r[1], advert(round));
                net.advance_round();
                while let Some(env) = b.try_recv() {
                    if let GossipMessage::Advert { round, .. } = env.message {
                        order.push(round);
                    }
                }
            }
            net.heal();
            while let Some(env) = b.try_recv() {
                if let GossipMessage::Advert { round, .. } = env.message {
                    order.push(round);
                }
            }
            (order, net.stats())
        };
        let (order_a, stats_a) = run(7);
        let (order_b, stats_b) = run(7);
        assert_eq!(order_a, order_b, "same seed must replay identically");
        assert_eq!(stats_a, stats_b);
        let (order_c, _) = run(8);
        assert_ne!(order_a, order_c, "different seed must differ somewhere");
        assert!(stats_a.reconciles());
        assert_eq!(stats_a.in_flight, 0, "heal flushed the held queue");
    }

    #[test]
    fn stall_fault_surfaces_timeout_at_the_sender() {
        let plan = FaultPlan::new(5).with_default_link(LinkFaults {
            stall_per_mille: 1000,
            ..LinkFaults::RELIABLE
        });
        let net = ChaosNetwork::new(plan);
        let r = ids(2);
        let a = net.endpoint(r[0]);
        let b = net.endpoint(r[1]);
        for round in 0..10 {
            // Every send fails loudly — the same error the TCP transport
            // returns for a wedged peer — and the message is lost.
            match a.send(r[1], advert(round)) {
                Err(TransportError::Timeout(peer)) => assert_eq!(peer, r[1]),
                other => panic!("expected Timeout, got {other:?}"),
            }
        }
        net.advance_round();
        assert!(b.try_recv().is_none(), "stalled sends must not deliver");
        let stats = net.stats();
        assert_eq!(stats.offered, 10);
        assert_eq!(stats.stalled, 10);
        assert_eq!(stats.delivered, 0);
        assert!(stats.reconciles(), "{stats:?}");
    }

    #[test]
    fn asymmetric_partition_severs_one_direction_only() {
        let r = ids(2);
        let plan = FaultPlan::new(3).with_partition_one_way(r[0], r[1], 0..10);
        let net = ChaosNetwork::new(plan);
        let a = net.endpoint(r[0]);
        let b = net.endpoint(r[1]);
        a.send(r[1], advert(1)).expect("registered");
        b.send(r[0], advert(2)).expect("registered");
        assert!(b.try_recv().is_none(), "a→b severed");
        assert!(a.try_recv().is_some(), "b→a open");
        // Past the window the direction heals.
        while net.round() < 10 {
            net.advance_round();
        }
        a.send(r[1], advert(3)).expect("registered");
        assert!(b.try_recv().is_some(), "partition window ended");
        let stats = net.stats();
        assert_eq!(stats.dropped_partition, 1);
        assert!(stats.reconciles());
    }

    #[test]
    fn crash_window_blackholes_and_purges() {
        let r = ids(2);
        let plan = FaultPlan::new(4).with_crash(r[1], 2..4);
        let net = ChaosNetwork::new(plan);
        let a = net.endpoint(r[0]);
        let b = net.endpoint(r[1]);
        // Delivered before the crash, but polled during it: purged.
        a.send(r[1], advert(1)).expect("registered");
        net.advance_round(); // round 1
        net.advance_round(); // round 2 — crash window opens
        assert!(net.is_crashed(r[1]));
        assert!(b.try_recv().is_none(), "crashed replica receives nothing");
        // Sent during the crash: dropped at dispatch.
        a.send(r[1], advert(2)).expect("registered");
        b.send(r[0], advert(3)).expect("registered");
        assert!(a.try_recv().is_none(), "crashed replica sends nothing");
        net.advance_round(); // round 3
        net.advance_round(); // round 4 — restart
        assert!(!net.is_crashed(r[1]));
        a.send(r[1], advert(5)).expect("registered");
        let envelope = b.try_recv().expect("restarted replica receives");
        assert!(matches!(envelope.message, GossipMessage::Advert { round: 5, .. }));
        let stats = net.stats();
        assert_eq!(stats.purged_on_crash, 1);
        assert_eq!(stats.dropped_crash, 2, "one inbound + one outbound");
        assert!(stats.reconciles());
    }

    #[test]
    fn delayed_messages_release_in_order_at_round_boundaries() {
        let r = ids(2);
        // Delay every message 1..=2 rounds, nothing else.
        let plan = FaultPlan::new(11).with_default_link(LinkFaults {
            delay_per_mille: 1000,
            max_delay_rounds: 2,
            ..LinkFaults::RELIABLE
        });
        let net = ChaosNetwork::new(plan);
        let a = net.endpoint(r[0]);
        let b = net.endpoint(r[1]);
        // One send per round: a 1–2 round delay can shift each message
        // but never reorder a stream spaced a full round apart (a later
        // send releases no earlier, and same-release-round messages keep
        // send order).
        let mut got = Vec::new();
        let drain = |got: &mut Vec<u64>| {
            while let Some(env) = b.try_recv() {
                if let GossipMessage::Advert { round, .. } = env.message {
                    got.push(round);
                }
            }
        };
        a.send(r[1], advert(0)).expect("registered");
        assert_eq!(net.stats().in_flight, 1, "held, not delivered");
        assert!(b.try_recv().is_none());
        assert!(net.stats().reconciles(), "in-flight balances the identity");
        net.advance_round();
        drain(&mut got);
        for round in 1..6 {
            a.send(r[1], advert(round)).expect("registered");
            net.advance_round();
            drain(&mut got);
        }
        // Two more rounds flush the tail (max delay is 2).
        net.advance_round();
        drain(&mut got);
        net.advance_round();
        drain(&mut got);
        assert_eq!(got.len(), 6, "all released within max delay");
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(got, sorted, "1-2 round delays over a round-spaced stream stay sorted");
        assert_eq!(net.stats().in_flight, 0);
        assert!(net.stats().reconciles());
    }

    #[test]
    fn heal_disables_faults_and_flushes() {
        let r = ids(2);
        let plan = FaultPlan::new(5)
            .with_default_link(LinkFaults { delay_per_mille: 1000, max_delay_rounds: 30, ..LinkFaults::RELIABLE })
            .with_partition_one_way(r[0], r[1], 0..u64::MAX);
        let net = ChaosNetwork::new(plan);
        let a = net.endpoint(r[0]);
        let b = net.endpoint(r[1]);
        a.send(r[1], advert(1)).expect("registered"); // partition eats it
        b.send(r[0], advert(2)).expect("registered"); // delayed up to 30 rounds
        assert!(a.try_recv().is_none());
        net.heal();
        assert!(a.try_recv().is_some(), "heal flushed the delayed message");
        a.send(r[1], advert(3)).expect("registered");
        assert!(b.try_recv().is_some(), "healed network ignores the partition");
        let stats = net.stats();
        assert_eq!(stats.in_flight, 0);
        assert!(stats.reconciles());
    }
}
