//! Socket-native transport: framed loopback TCP with connection
//! supervision.
//!
//! [`TcpNetwork`] is one replica's seat on a real network: a listener
//! plus one supervised outbound connection per peer, speaking the
//! [`wire`] frame format (`std::net` only — no async
//! runtime, no socket crates). [`TcpEndpoint`] is the
//! [`Transport`] handle the gossip layer drives; nothing above this
//! module knows bytes are moving through the kernel instead of a
//! channel.
//!
//! ```text
//!             ┌──────────────── TcpNetwork (replica R) ────────────────┐
//!  send(to,m) │ per-peer outbox (bounded, drop-oldest)                 │
//!  ──────────►│   └─► writer thread: connect → hello-free framed       │
//!             │       write_all, reconnect w/ jittered exp backoff     │
//!             │ acceptor thread: accept → reader thread per conn       │
//!  try_recv ◄─│   └─► read frame → CRC/decode → inbox (MPMC channel)   │
//!             └────────────────────────────────────────────────────────┘
//! ```
//!
//! ## Supervision policy
//!
//! * **Reconnect** — a failed connect or broken write drops the
//!   connection and retries with exponential backoff
//!   (`base · 2ⁿ`, capped) plus deterministic per-`(local, peer,
//!   attempt)` jitter, so a restarted cluster doesn't thundering-herd
//!   its first peer back up. Queued messages survive the outage (up to
//!   the outbox bound) and flush on reconnect.
//! * **Deadlines** — every socket carries `set_read_timeout` /
//!   `set_write_timeout`. An idle timeout *between* frames is normal; a
//!   timeout *inside* a frame means the peer stalled mid-frame and the
//!   connection is dropped ([`TcpStats::partial_frames`]).
//! * **Garbage rejection** — a bad magic/version byte, an oversize
//!   length claim, a CRC mismatch or a non-canonical payload drops the
//!   connection ([`TcpStats::corrupt_frames`]) and never the process;
//!   the peer's supervisor reconnects and the stream re-aligns at a
//!   fresh frame boundary.
//! * **Slow peers** — the per-peer outbox is bounded; at capacity the
//!   *oldest* queued frame is dropped
//!   ([`TcpStats::peer_backpressure_drops`]) rather than blocking the
//!   gossip scheduler. Anti-entropy is memoryless across rounds, so a
//!   dropped advert or sync is re-derived from current state on a later
//!   round — exactly the failure model the chaos suite already proves
//!   convergence under.
//!
//! Peers may move: [`set_peer_addr`](TcpNetwork::set_peer_addr)
//! repoints a peer's supervisor (the next reconnect attempt dials the
//! new address), which is how a cluster driver re-wires survivors to a
//! replica restarted on a fresh port.

use std::collections::{BTreeMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use hdhash_obs::{SpanKind, Tracer};
use parking_lot::{Condvar, Mutex};

use crate::gossip::GossipMessage;
use crate::transport::{Envelope, ReplicaId, Transport, TransportError};
use crate::wire::{self, FrameError, FRAME_OVERHEAD};

/// Tuning knobs of a [`TcpNetwork`]. Defaults suit loopback clusters;
/// tests shrink the timeouts to keep failure paths fast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpConfig {
    /// Per-attempt outbound connect timeout.
    pub connect_timeout: Duration,
    /// Socket read deadline: bounds mid-frame stalls (a timeout inside a
    /// frame drops the connection) and shutdown latency (idle readers
    /// re-check the shutdown flag this often).
    pub read_timeout: Duration,
    /// Socket write deadline: a peer that stops draining its receive
    /// buffer fails the write instead of wedging the writer thread.
    pub write_timeout: Duration,
    /// Reconnect backoff base; attempt `n` waits `base · 2ⁿ` (capped at
    /// [`reconnect_cap`](Self::reconnect_cap)) plus jitter in `0..base`.
    pub reconnect_base: Duration,
    /// Ceiling on the exponential reconnect backoff.
    pub reconnect_cap: Duration,
    /// Bound of each per-peer outbox; at capacity the oldest queued
    /// message is dropped ([`TcpStats::peer_backpressure_drops`]).
    pub outbox_capacity: usize,
}

impl Default for TcpConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_millis(500),
            write_timeout: Duration::from_secs(1),
            reconnect_base: Duration::from_millis(50),
            reconnect_cap: Duration::from_secs(2),
            outbox_capacity: 1024,
        }
    }
}

/// Monotone transport counters, snapshotted by [`TcpNetwork::stats`] /
/// [`TcpEndpoint::stats`]. `bytes_sent` / `bytes_received` are
/// **measured** socket bytes (payload + [`FRAME_OVERHEAD`] per frame) —
/// the ground truth the `wire_size` accounting is asserted against in
/// `bench_cluster`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpStats {
    /// Outbound connections successfully established.
    pub connections_established: u64,
    /// The subset of established connections that replaced an earlier
    /// one on the same peer supervisor (the reconnect odometer the
    /// cluster driver's teardown table reports).
    pub connections_reconnected: u64,
    /// Inbound connections accepted.
    pub connections_accepted: u64,
    /// Outbound connect attempts that failed (each is followed by a
    /// backoff sleep — this is the reconnect-supervision odometer).
    pub connect_failures: u64,
    /// Frames fully written to a socket.
    pub frames_sent: u64,
    /// Frames fully received, CRC-verified and decoded.
    pub frames_received: u64,
    /// Measured bytes written (frame headers included).
    pub bytes_sent: u64,
    /// Measured bytes received over verified frames (headers included).
    pub bytes_received: u64,
    /// Writes that failed or timed out (the frame stays queued and the
    /// connection is rebuilt).
    pub send_errors: u64,
    /// Frames rejected for corruption (bad magic/version, oversize
    /// claim, CRC mismatch, non-canonical payload); each drops its
    /// connection.
    pub corrupt_frames: u64,
    /// Frames abandoned because the sender stalled mid-frame past the
    /// read deadline (or the stream ended inside a frame); each drops
    /// its connection.
    pub partial_frames: u64,
    /// Messages evicted from a full per-peer outbox (slow-peer
    /// backpressure: drop-oldest, never block the gossip scheduler).
    pub peer_backpressure_drops: u64,
}

#[derive(Debug, Default)]
struct Counters {
    connections_established: AtomicU64,
    connections_reconnected: AtomicU64,
    connections_accepted: AtomicU64,
    connect_failures: AtomicU64,
    frames_sent: AtomicU64,
    frames_received: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    send_errors: AtomicU64,
    corrupt_frames: AtomicU64,
    partial_frames: AtomicU64,
    peer_backpressure_drops: AtomicU64,
}

fn bump(counter: &AtomicU64, n: u64) {
    counter.fetch_add(n, Ordering::Relaxed);
}

/// One peer's supervised outbound state.
#[derive(Debug)]
struct PeerState {
    id: ReplicaId,
    /// Where the peer currently listens; re-read on every connect
    /// attempt so [`TcpNetwork::set_peer_addr`] takes effect at the next
    /// reconnect.
    addr: Mutex<SocketAddr>,
    outbox: Mutex<VecDeque<GossipMessage>>,
    /// Signals the writer thread that the outbox gained a message (or
    /// the network is shutting down).
    available: Condvar,
}

#[derive(Debug)]
struct Shared {
    local: ReplicaId,
    config: TcpConfig,
    inbox: Sender<Envelope>,
    peers: Mutex<BTreeMap<ReplicaId, Arc<PeerState>>>,
    counters: Counters,
    shutdown: AtomicBool,
    /// Span sink for connection lifecycle events (connect / reconnect /
    /// accept / condemn). All sites are cold — once per connection event,
    /// never per frame — so a mutex-guarded slot is fine and lets
    /// [`TcpNetwork::set_tracer`] swap it in after bind.
    tracer: Mutex<Arc<Tracer>>,
}

impl Shared {
    fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Records one connection-lifecycle trace event (no-op when the
    /// installed tracer is disabled). Lane is the local replica id.
    #[allow(clippy::cast_possible_truncation)]
    fn trace(&self, kind: SpanKind, subject: u64, amount: u64) {
        let tracer = Arc::clone(&self.tracer.lock());
        if tracer.is_enabled() {
            tracer.record(kind, 0, self.local.get() as u32, subject, amount);
        }
    }

    /// Sleeps the reconnect backoff for `attempt`, in small slices so
    /// shutdown is honored promptly. Returns `false` when shutdown
    /// interrupted the wait.
    fn backoff(&self, peer: ReplicaId, attempt: u32) -> bool {
        let base = self.config.reconnect_base.max(Duration::from_millis(1));
        let exp = base.saturating_mul(1u32 << attempt.min(6));
        let capped = exp.min(self.config.reconnect_cap);
        let jitter_ms = hdhash_hashfn::mix64(
            self.local.get()
                ^ peer.get().wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ u64::from(attempt),
        ) % base.as_millis().max(1) as u64;
        let mut left = capped + Duration::from_millis(jitter_ms);
        while !left.is_zero() {
            if self.is_shutdown() {
                return false;
            }
            let slice = left.min(Duration::from_millis(20));
            std::thread::sleep(slice);
            left -= slice;
        }
        !self.is_shutdown()
    }
}

/// Is this I/O error a deadline expiry (as opposed to a broken stream)?
fn is_timeout(err: &std::io::Error) -> bool {
    matches!(err.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}

/// Outcome of reading one frame off a connection.
enum FrameRead {
    /// A verified, decoded message.
    Message(ReplicaId, GossipMessage, usize),
    /// Clean end: EOF at a frame boundary, or shutdown.
    Closed,
    /// The stream stalled or ended mid-frame.
    Partial,
    /// The frame failed validation; the stream is no longer trustworthy.
    Corrupt,
}

/// Reads exactly `buf.len()` bytes of an in-progress frame. A deadline
/// expiry or EOF here is mid-frame — the connection is condemned.
fn read_exact_frame(stream: &mut TcpStream, buf: &mut [u8]) -> Result<(), ()> {
    let mut at = 0;
    while at < buf.len() {
        match stream.read(&mut buf[at..]) {
            Ok(0) => return Err(()),
            Ok(n) => at += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return Err(()),
        }
    }
    Ok(())
}

/// Reads one frame: tolerant of idleness at the frame boundary, strict
/// once the first byte has arrived.
fn read_frame(shared: &Shared, stream: &mut TcpStream) -> FrameRead {
    let mut header = [0u8; FRAME_OVERHEAD];
    // Frame boundary: idle timeouts are normal; poll until a byte
    // arrives, the peer closes, or the network shuts down.
    loop {
        if shared.is_shutdown() {
            return FrameRead::Closed;
        }
        match stream.read(&mut header[..1]) {
            Ok(0) => return FrameRead::Closed,
            Ok(_) => break,
            Err(e) if is_timeout(&e) || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return FrameRead::Closed,
        }
    }
    // In-frame: the rest of the header and the payload must arrive
    // within the read deadline each.
    if read_exact_frame(stream, &mut header[1..]).is_err() {
        return FrameRead::Partial;
    }
    let parsed = match wire::decode_frame_header(&header) {
        Ok(h) => h,
        Err(_) => return FrameRead::Corrupt,
    };
    let mut payload = vec![0u8; parsed.len];
    if read_exact_frame(stream, &mut payload).is_err() {
        return FrameRead::Partial;
    }
    match wire::decode_frame_payload(parsed, &payload) {
        Ok(message) => FrameRead::Message(parsed.from, message, FRAME_OVERHEAD + parsed.len),
        Err(_) => FrameRead::Corrupt,
    }
}

/// Inbound connection loop: frames → inbox until the stream breaks, a
/// frame is rejected, or the network shuts down.
fn reader_loop(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    loop {
        match read_frame(shared, &mut stream) {
            FrameRead::Message(from, message, frame_bytes) => {
                bump(&shared.counters.frames_received, 1);
                bump(&shared.counters.bytes_received, frame_bytes as u64);
                if shared.inbox.send(Envelope { from, message }).is_err() {
                    return;
                }
            }
            FrameRead::Closed => return,
            FrameRead::Partial => {
                bump(&shared.counters.partial_frames, 1);
                shared.trace(SpanKind::TcpCondemn, 0, 0);
                return;
            }
            FrameRead::Corrupt => {
                bump(&shared.counters.corrupt_frames, 1);
                shared.trace(SpanKind::TcpCondemn, 0, 1);
                return;
            }
        }
    }
}

/// Acceptor loop: hand every inbound connection its own reader thread.
fn acceptor_loop(shared: &Arc<Shared>, listener: &TcpListener, readers: &Mutex<Vec<std::thread::JoinHandle<()>>>) {
    while !shared.is_shutdown() {
        match listener.accept() {
            Ok((stream, _)) => {
                // The listener is non-blocking (for shutdown); the
                // accepted stream must not inherit that.
                let _ = stream.set_nonblocking(false);
                bump(&shared.counters.connections_accepted, 1);
                shared.trace(SpanKind::TcpAccept, 0, 0);
                let shared = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name(format!("hdhash-tcp-read-{}", shared.local))
                    .spawn(move || reader_loop(&shared, stream))
                    .expect("spawn tcp reader");
                readers.lock().push(handle);
            }
            Err(e) if is_timeout(&e) => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Outbound supervisor for one peer: connect (with backoff), drain the
/// outbox through framed writes, rebuild the connection on any error.
fn writer_loop(shared: &Shared, peer: &PeerState) {
    let mut stream: Option<TcpStream> = None;
    let mut attempt: u32 = 0;
    let mut connected_before = false;
    loop {
        // Wait until a message is queued (or shutdown).
        let message = {
            let mut outbox = peer.outbox.lock();
            loop {
                if shared.is_shutdown() {
                    return;
                }
                if let Some(front) = outbox.front() {
                    break front.clone();
                }
                let _ =
                    peer.available.wait_for(&mut outbox, Duration::from_millis(50));
            }
        };
        // Ensure a connection; on failure, back off and re-enter the
        // loop (the message stays queued; the address is re-read so a
        // moved peer is picked up).
        let connection = match stream.take() {
            Some(s) => s,
            None => {
                let addr = *peer.addr.lock();
                match TcpStream::connect_timeout(&addr, shared.config.connect_timeout) {
                    Ok(s) => {
                        let _ = s.set_nodelay(true);
                        let _ = s.set_write_timeout(Some(shared.config.write_timeout));
                        bump(&shared.counters.connections_established, 1);
                        let kind = if connected_before {
                            bump(&shared.counters.connections_reconnected, 1);
                            SpanKind::TcpReconnect
                        } else {
                            SpanKind::TcpConnect
                        };
                        shared.trace(kind, peer.id.get(), u64::from(attempt));
                        connected_before = true;
                        attempt = 0;
                        s
                    }
                    Err(_) => {
                        bump(&shared.counters.connect_failures, 1);
                        if !shared.backoff(peer.id, attempt) {
                            return;
                        }
                        attempt = attempt.saturating_add(1);
                        continue;
                    }
                }
            }
        };
        let mut connection = connection;
        let frame = wire::encode_frame(shared.local, &message);
        match connection.write_all(&frame).and_then(|()| connection.flush()) {
            Ok(()) => {
                bump(&shared.counters.frames_sent, 1);
                bump(&shared.counters.bytes_sent, frame.len() as u64);
                // Dequeue only after the write landed: a frame never
                // vanishes into a dead connection.
                peer.outbox.lock().pop_front();
                stream = Some(connection);
            }
            Err(_) => {
                // Broken or stalled connection: count it, drop the
                // socket, and let the next iteration reconnect. The
                // message stays at the front of the outbox.
                bump(&shared.counters.send_errors, 1);
            }
        }
    }
}

/// One replica's socket stack: listener + per-peer supervised outbound
/// connections. Create with [`bind`](Self::bind), wire peers with
/// [`add_peer`](Self::add_peer), then hand [`endpoint`](Self::endpoint)
/// to a [`GossipNode`](crate::gossip::GossipNode).
///
/// # Examples
///
/// ```
/// use hdhash_serve::tcp::{TcpConfig, TcpNetwork};
/// use hdhash_serve::transport::{ReplicaId, Transport};
/// use hdhash_serve::gossip::GossipMessage;
/// use std::time::Duration;
///
/// let mut a = TcpNetwork::bind(ReplicaId::new(0), "127.0.0.1:0", TcpConfig::default())?;
/// let mut b = TcpNetwork::bind(ReplicaId::new(1), "127.0.0.1:0", TcpConfig::default())?;
/// a.add_peer(ReplicaId::new(1), b.local_addr());
/// b.add_peer(ReplicaId::new(0), a.local_addr());
/// let (ea, eb) = (a.endpoint(), b.endpoint());
/// ea.send(ReplicaId::new(1), GossipMessage::Advert { round: 1, signatures: vec![], ack: None })?;
/// let envelope = eb.recv_timeout(Duration::from_secs(5)).expect("delivered over TCP");
/// assert_eq!(envelope.from, ReplicaId::new(0));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct TcpNetwork {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    inbox_rx: Receiver<Envelope>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    writers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    readers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl TcpNetwork {
    /// Binds the listener (use port 0 to let the OS pick; read the
    /// outcome with [`local_addr`](Self::local_addr)) and starts the
    /// acceptor.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind<A: ToSocketAddrs>(
        local: ReplicaId,
        addr: A,
        config: TcpConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let (inbox_tx, inbox_rx) = unbounded();
        let shared = Arc::new(Shared {
            local,
            config,
            inbox: inbox_tx,
            peers: Mutex::new(BTreeMap::new()),
            counters: Counters::default(),
            shutdown: AtomicBool::new(false),
            tracer: Mutex::new(Arc::new(Tracer::disabled())),
        });
        let readers = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let readers = Arc::clone(&readers);
            std::thread::Builder::new()
                .name(format!("hdhash-tcp-accept-{local}"))
                .spawn(move || acceptor_loop(&shared, &listener, &readers))
                .expect("spawn tcp acceptor")
        };
        Ok(Self {
            shared,
            local_addr,
            inbox_rx,
            acceptor: Some(acceptor),
            writers: Mutex::new(Vec::new()),
            readers,
        })
    }

    /// The replica this network belongs to.
    #[must_use]
    pub fn local(&self) -> ReplicaId {
        self.shared.local
    }

    /// Where the listener actually bound (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Registers `peer` at `addr` and starts its connection supervisor.
    /// Registering the local id or an already-known peer just updates
    /// the address (see [`set_peer_addr`](Self::set_peer_addr)).
    pub fn add_peer(&self, peer: ReplicaId, addr: SocketAddr) {
        if peer == self.shared.local {
            return;
        }
        let state = {
            let mut peers = self.shared.peers.lock();
            if peers.contains_key(&peer) {
                drop(peers);
                self.set_peer_addr(peer, addr);
                return;
            }
            let state = Arc::new(PeerState {
                id: peer,
                addr: Mutex::new(addr),
                outbox: Mutex::new(VecDeque::new()),
                available: Condvar::new(),
            });
            peers.insert(peer, Arc::clone(&state));
            state
        };
        let shared = Arc::clone(&self.shared);
        let handle = std::thread::Builder::new()
            .name(format!("hdhash-tcp-write-{}-to-{}", self.shared.local, peer))
            .spawn(move || writer_loop(&shared, &state))
            .expect("spawn tcp writer");
        self.writers.lock().push(handle);
    }

    /// Repoints a known peer to a new address; the supervisor dials it
    /// on the next (re)connect attempt. Returns whether the peer was
    /// known. The live connection, if any, is left to drain — a moved
    /// peer's old connection dies on its own and the reconnect follows
    /// the new address.
    pub fn set_peer_addr(&self, peer: ReplicaId, addr: SocketAddr) -> bool {
        match self.shared.peers.lock().get(&peer) {
            Some(state) => {
                *state.addr.lock() = addr;
                true
            }
            None => false,
        }
    }

    /// Installs a span sink for connection lifecycle events
    /// (connect / reconnect / accept / condemn). Takes effect for events
    /// after the call; safe while supervisors are already running.
    pub fn set_tracer(&self, tracer: Arc<Tracer>) {
        *self.shared.tracer.lock() = tracer;
    }

    /// The registered peer ids, sorted.
    #[must_use]
    pub fn peers(&self) -> Vec<ReplicaId> {
        self.shared.peers.lock().keys().copied().collect()
    }

    /// A [`Transport`] handle onto this network. Endpoints share the
    /// inbox: give the gossip node exactly one (a second endpoint would
    /// *compete* for incoming messages, not observe them).
    #[must_use]
    pub fn endpoint(&self) -> TcpEndpoint {
        TcpEndpoint { shared: Arc::clone(&self.shared), inbox: self.inbox_rx.clone() }
    }

    /// Point-in-time transport counters.
    #[must_use]
    pub fn stats(&self) -> TcpStats {
        let c = &self.shared.counters;
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        TcpStats {
            connections_established: load(&c.connections_established),
            connections_reconnected: load(&c.connections_reconnected),
            connections_accepted: load(&c.connections_accepted),
            connect_failures: load(&c.connect_failures),
            frames_sent: load(&c.frames_sent),
            frames_received: load(&c.frames_received),
            bytes_sent: load(&c.bytes_sent),
            bytes_received: load(&c.bytes_received),
            send_errors: load(&c.send_errors),
            corrupt_frames: load(&c.corrupt_frames),
            partial_frames: load(&c.partial_frames),
            peer_backpressure_drops: load(&c.peer_backpressure_drops),
        }
    }

    /// Messages queued in outboxes but not yet written to a socket.
    /// Benches drain this to zero before comparing measured bytes
    /// against the `wire_size` accounting.
    #[must_use]
    pub fn pending_frames(&self) -> usize {
        self.shared.peers.lock().values().map(|p| p.outbox.lock().len()).sum()
    }

    /// Stops every thread (acceptor, readers, writers) and closes the
    /// listener. Queued-but-unsent messages are discarded. Idempotent;
    /// also runs on drop.
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Wake idle writers so they observe the flag.
        for peer in self.shared.peers.lock().values() {
            peer.available.notify_all();
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for handle in self.writers.lock().drain(..) {
            let _ = handle.join();
        }
        for handle in self.readers.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for TcpNetwork {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One replica's [`Transport`] handle onto its [`TcpNetwork`].
/// [`send`](Transport::send) enqueues onto the peer's bounded outbox and
/// never blocks on the kernel; receiving drains the shared inbox the
/// reader threads feed.
#[derive(Debug)]
pub struct TcpEndpoint {
    shared: Arc<Shared>,
    inbox: Receiver<Envelope>,
}

impl TcpEndpoint {
    /// Point-in-time transport counters (same as
    /// [`TcpNetwork::stats`]).
    #[must_use]
    pub fn stats(&self) -> TcpStats {
        let c = &self.shared.counters;
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        TcpStats {
            connections_established: load(&c.connections_established),
            connections_reconnected: load(&c.connections_reconnected),
            connections_accepted: load(&c.connections_accepted),
            connect_failures: load(&c.connect_failures),
            frames_sent: load(&c.frames_sent),
            frames_received: load(&c.frames_received),
            bytes_sent: load(&c.bytes_sent),
            bytes_received: load(&c.bytes_received),
            send_errors: load(&c.send_errors),
            corrupt_frames: load(&c.corrupt_frames),
            partial_frames: load(&c.partial_frames),
            peer_backpressure_drops: load(&c.peer_backpressure_drops),
        }
    }
}

impl Transport for TcpEndpoint {
    fn local(&self) -> ReplicaId {
        self.shared.local
    }

    fn send(&self, to: ReplicaId, message: GossipMessage) -> Result<(), TransportError> {
        if self.shared.is_shutdown() {
            return Err(TransportError::Disconnected(to));
        }
        let peer = self
            .shared
            .peers
            .lock()
            .get(&to)
            .cloned()
            .ok_or(TransportError::UnknownPeer(to))?;
        let mut outbox = peer.outbox.lock();
        if outbox.len() >= self.shared.config.outbox_capacity.max(1) {
            outbox.pop_front();
            bump(&self.shared.counters.peer_backpressure_drops, 1);
        }
        outbox.push_back(message);
        drop(outbox);
        peer.available.notify_one();
        Ok(())
    }

    fn try_recv(&self) -> Option<Envelope> {
        self.inbox.try_recv().ok()
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<Envelope> {
        self.inbox.recv_timeout(timeout).ok()
    }
}

// Keep the unused-field lint honest: FrameError is re-exported for
// callers matching on decode failures surfaced through stats-adjacent
// APIs; the module itself consumes it via the wire helpers.
const _: fn(FrameError) -> TransportError = TransportError::Corrupt;

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> TcpConfig {
        TcpConfig {
            connect_timeout: Duration::from_millis(200),
            read_timeout: Duration::from_millis(100),
            write_timeout: Duration::from_millis(500),
            reconnect_base: Duration::from_millis(10),
            reconnect_cap: Duration::from_millis(100),
            outbox_capacity: 64,
        }
    }

    fn advert(round: u64) -> GossipMessage {
        GossipMessage::Advert { round, signatures: Vec::new(), ack: None }
    }

    #[test]
    fn two_endpoints_exchange_frames_with_measured_bytes() {
        let a = TcpNetwork::bind(ReplicaId::new(0), "127.0.0.1:0", fast()).expect("bind");
        let b = TcpNetwork::bind(ReplicaId::new(1), "127.0.0.1:0", fast()).expect("bind");
        a.add_peer(ReplicaId::new(1), b.local_addr());
        b.add_peer(ReplicaId::new(0), a.local_addr());
        let ea = a.endpoint();
        let eb = b.endpoint();
        assert_eq!(ea.local(), ReplicaId::new(0));
        let message = advert(3);
        let expected = (message.wire_size() + FRAME_OVERHEAD) as u64;
        ea.send(ReplicaId::new(1), message.clone()).expect("queued");
        let envelope = eb.recv_timeout(Duration::from_secs(5)).expect("delivered");
        assert_eq!(envelope.from, ReplicaId::new(0));
        assert_eq!(envelope.message, message);
        // Reply in the other direction.
        eb.send(ReplicaId::new(0), advert(4)).expect("queued");
        assert!(ea.recv_timeout(Duration::from_secs(5)).is_some());
        let stats = a.stats();
        assert_eq!(stats.frames_sent, 1);
        assert_eq!(stats.bytes_sent, expected, "measured = wire_size + frame overhead");
        assert_eq!(stats.frames_received, 1);
        assert_eq!(stats.corrupt_frames, 0);
    }

    #[test]
    fn unknown_peer_is_an_error_and_shutdown_disconnects() {
        let mut a = TcpNetwork::bind(ReplicaId::new(0), "127.0.0.1:0", fast()).expect("bind");
        let ea = a.endpoint();
        assert_eq!(
            ea.send(ReplicaId::new(9), advert(1)),
            Err(TransportError::UnknownPeer(ReplicaId::new(9)))
        );
        a.shutdown();
        assert_eq!(
            ea.send(ReplicaId::new(9), advert(1)),
            Err(TransportError::Disconnected(ReplicaId::new(9)))
        );
        assert!(ea.try_recv().is_none());
    }

    #[test]
    fn garbage_connection_is_dropped_without_killing_the_listener() {
        let b = TcpNetwork::bind(ReplicaId::new(1), "127.0.0.1:0", fast()).expect("bind");
        let eb = b.endpoint();
        // A hostile stream: a full-size header with valid magic but a
        // version this build does not speak.
        let mut junk = [0xABu8; FRAME_OVERHEAD];
        junk[0] = wire::FRAME_MAGIC;
        junk[1] = 0xFF;
        let mut garbage = TcpStream::connect(b.local_addr()).expect("connect");
        garbage.write_all(&junk).expect("write junk");
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while b.stats().corrupt_frames == 0 {
            assert!(std::time::Instant::now() < deadline, "corrupt frame not counted");
            std::thread::sleep(Duration::from_millis(10));
        }
        // The listener survived: a well-formed connection still works.
        let a = TcpNetwork::bind(ReplicaId::new(0), "127.0.0.1:0", fast()).expect("bind");
        a.add_peer(ReplicaId::new(1), b.local_addr());
        a.endpoint().send(ReplicaId::new(1), advert(7)).expect("queued");
        let envelope = eb.recv_timeout(Duration::from_secs(5)).expect("delivered");
        assert!(matches!(envelope.message, GossipMessage::Advert { round: 7, .. }));
    }

    #[test]
    fn stalled_mid_frame_connection_is_condemned() {
        let b = TcpNetwork::bind(ReplicaId::new(1), "127.0.0.1:0", fast()).expect("bind");
        // Half a header, then silence: the reader must give up after its
        // read deadline and count a partial frame.
        let mut stall = TcpStream::connect(b.local_addr()).expect("connect");
        stall.write_all(&[wire::FRAME_MAGIC, wire::WIRE_VERSION, 0, 0]).expect("half header");
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while b.stats().partial_frames == 0 {
            assert!(std::time::Instant::now() < deadline, "partial frame not counted");
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    #[test]
    fn messages_queue_across_reconnect_to_a_moved_peer() {
        let a = TcpNetwork::bind(ReplicaId::new(0), "127.0.0.1:0", fast()).expect("bind");
        // Point at a dead address first: sends must queue, the
        // supervisor must keep retrying with backoff.
        let dead: SocketAddr = "127.0.0.1:1".parse().expect("addr");
        a.add_peer(ReplicaId::new(1), dead);
        let ea = a.endpoint();
        ea.send(ReplicaId::new(1), advert(11)).expect("queued despite dead peer");
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while a.stats().connect_failures < 2 {
            assert!(std::time::Instant::now() < deadline, "no reconnect attempts");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(a.stats().frames_sent, 0);
        assert_eq!(a.pending_frames(), 1);
        // The peer comes up elsewhere; repoint and the queue drains.
        let b = TcpNetwork::bind(ReplicaId::new(1), "127.0.0.1:0", fast()).expect("bind");
        assert!(a.set_peer_addr(ReplicaId::new(1), b.local_addr()));
        let envelope = b.endpoint().recv_timeout(Duration::from_secs(10)).expect("drained");
        assert!(matches!(envelope.message, GossipMessage::Advert { round: 11, .. }));
        assert_eq!(a.pending_frames(), 0);
        assert!(!a.set_peer_addr(ReplicaId::new(9), b.local_addr()), "unknown peer");
    }

    #[test]
    fn slow_peer_overflow_drops_oldest_without_blocking() {
        let config = TcpConfig { outbox_capacity: 4, ..fast() };
        let a = TcpNetwork::bind(ReplicaId::new(0), "127.0.0.1:0", config).expect("bind");
        let dead: SocketAddr = "127.0.0.1:1".parse().expect("addr");
        a.add_peer(ReplicaId::new(1), dead);
        let ea = a.endpoint();
        for round in 0..10 {
            ea.send(ReplicaId::new(1), advert(round)).expect("never blocks");
        }
        assert!(a.pending_frames() <= 4, "outbox stays bounded");
        assert!(a.stats().peer_backpressure_drops >= 6, "oldest frames evicted");
    }
}
