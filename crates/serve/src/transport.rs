//! Pluggable message carriage between replicas.
//!
//! The gossip layer ([`gossip`](crate::gossip)) is transport-agnostic: it
//! speaks [`GossipMessage`]s through the
//! [`Transport`] trait and never assumes how the bytes move. This module
//! provides the trait plus the in-process implementation —
//! [`InProcessNetwork`] hands out per-replica [`InProcessEndpoint`]s wired
//! together with `crossbeam::channel` mailboxes — which is what most
//! tests, the bench and the CLI demo run on. The socket implementation
//! lives in [`tcp`](crate::tcp): a [`TcpNetwork`](crate::tcp::TcpNetwork)
//! moves the same messages over framed loopback TCP
//! ([`wire`](crate::wire) defines the frame format), and nothing above
//! this module can tell the difference. All three transports — in-process,
//! chaos ([`crate::chaos`]) and TCP — fail through the one
//! [`TransportError`] vocabulary.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::gossip::GossipMessage;
use crate::wire::FrameError;

/// Identifies one replica (one [`ServeEngine`](crate::ServeEngine) plus
/// its gossip node) inside a replica set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReplicaId(u64);

impl ReplicaId {
    /// Wraps a raw id.
    #[must_use]
    pub const fn new(id: u64) -> Self {
        Self(id)
    }

    /// The raw id.
    #[must_use]
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl core::fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "replica{}", self.0)
    }
}

/// A received message plus its sender.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Which replica sent the message.
    pub from: ReplicaId,
    /// The message itself.
    pub message: GossipMessage,
}

/// The one failure vocabulary every transport speaks — in-process
/// mailboxes, the chaos harness and the TCP endpoints all surface these
/// same variants, so gossip-layer error handling is transport-blind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportError {
    /// The destination replica is not registered on this network.
    UnknownPeer(ReplicaId),
    /// The path to the destination is gone: its mailbox was dropped
    /// (in-process), or the local network was shut down (TCP).
    Disconnected(ReplicaId),
    /// A deadline expired talking to the peer (TCP read/write timeout;
    /// the chaos harness injects this to model stalls).
    Timeout(ReplicaId),
    /// Bytes from the peer failed frame validation — bad magic, version,
    /// length, checksum or payload encoding ([`FrameError`] says which).
    Corrupt(FrameError),
}

impl core::fmt::Display for TransportError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TransportError::UnknownPeer(id) => write!(f, "unknown peer {id}"),
            TransportError::Disconnected(id) => write!(f, "peer {id} disconnected"),
            TransportError::Timeout(id) => write!(f, "timed out talking to {id}"),
            TransportError::Corrupt(err) => write!(f, "corrupt frame: {err}"),
        }
    }
}

impl From<FrameError> for TransportError {
    fn from(err: FrameError) -> Self {
        TransportError::Corrupt(err)
    }
}

impl std::error::Error for TransportError {}

/// One replica's view of the wire: send to any peer, receive what peers
/// sent here.
///
/// Implementations must be usable from the gossip scheduler thread
/// (`Send`). Message delivery may be delayed or reordered across peers;
/// the gossip protocol tolerates both (every round re-adverts current
/// state — anti-entropy is memoryless across rounds).
pub trait Transport: Send {
    /// The replica this endpoint belongs to.
    fn local(&self) -> ReplicaId;

    /// Queues `message` for delivery to `to`.
    ///
    /// # Errors
    ///
    /// [`TransportError`] when the peer is unknown or gone.
    fn send(&self, to: ReplicaId, message: GossipMessage) -> Result<(), TransportError>;

    /// Returns the next incoming message without blocking, or `None` when
    /// the mailbox is empty.
    fn try_recv(&self) -> Option<Envelope>;

    /// Blocks up to `timeout` for an incoming message.
    fn recv_timeout(&self, timeout: Duration) -> Option<Envelope>;
}

/// The switchboard of an in-process replica set: a registry of per-replica
/// mailboxes, from which [`endpoint`](Self::endpoint) carves one
/// [`InProcessEndpoint`] per replica.
///
/// # Examples
///
/// ```
/// use hdhash_serve::transport::{InProcessNetwork, ReplicaId, Transport};
/// use hdhash_serve::gossip::GossipMessage;
///
/// let network = InProcessNetwork::new();
/// let a = network.endpoint(ReplicaId::new(0));
/// let b = network.endpoint(ReplicaId::new(1));
/// a.send(ReplicaId::new(1), GossipMessage::Advert { round: 1, signatures: vec![], ack: None })?;
/// let envelope = b.try_recv().expect("delivered");
/// assert_eq!(envelope.from, ReplicaId::new(0));
/// # Ok::<(), hdhash_serve::transport::TransportError>(())
/// ```
#[derive(Debug, Default)]
pub struct InProcessNetwork {
    mailboxes: Mutex<HashMap<ReplicaId, Sender<Envelope>>>,
}

impl InProcessNetwork {
    /// Creates an empty network; register replicas with
    /// [`endpoint`](Self::endpoint).
    #[must_use]
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Registers `id` and returns its endpoint. Re-registering an id
    /// replaces its mailbox (the old endpoint keeps draining already
    /// delivered messages but receives no new ones).
    #[must_use]
    pub fn endpoint(self: &Arc<Self>, id: ReplicaId) -> InProcessEndpoint {
        let (sender, receiver) = unbounded();
        self.mailboxes.lock().insert(id, sender);
        InProcessEndpoint { id, network: Arc::clone(self), inbox: receiver }
    }

    /// The registered replica ids, sorted.
    #[must_use]
    pub fn peers(&self) -> Vec<ReplicaId> {
        let mut ids: Vec<ReplicaId> = self.mailboxes.lock().keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Delivers `message` into `to`'s mailbox as if sent by `from`.
    /// Shared with the chaos layer ([`crate::chaos`]), which injects
    /// faults *before* routing and needs direct delivery for messages it
    /// releases from its held queue.
    pub(crate) fn route(
        &self,
        from: ReplicaId,
        to: ReplicaId,
        message: GossipMessage,
    ) -> Result<(), TransportError> {
        let sender = self
            .mailboxes
            .lock()
            .get(&to)
            .cloned()
            .ok_or(TransportError::UnknownPeer(to))?;
        sender
            .send(Envelope { from, message })
            .map_err(|_| TransportError::Disconnected(to))
    }
}

/// One replica's connection to an [`InProcessNetwork`].
#[derive(Debug)]
pub struct InProcessEndpoint {
    id: ReplicaId,
    network: Arc<InProcessNetwork>,
    inbox: Receiver<Envelope>,
}

impl Transport for InProcessEndpoint {
    fn local(&self) -> ReplicaId {
        self.id
    }

    fn send(&self, to: ReplicaId, message: GossipMessage) -> Result<(), TransportError> {
        self.network.route(self.id, to, message)
    }

    fn try_recv(&self) -> Option<Envelope> {
        self.inbox.try_recv().ok()
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<Envelope> {
        self.inbox.recv_timeout(timeout).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gossip::GossipMessage;

    fn advert(round: u64) -> GossipMessage {
        GossipMessage::Advert { round, signatures: Vec::new(), ack: None }
    }

    #[test]
    fn routes_between_endpoints() {
        let network = InProcessNetwork::new();
        let a = network.endpoint(ReplicaId::new(1));
        let b = network.endpoint(ReplicaId::new(2));
        assert_eq!(network.peers(), vec![ReplicaId::new(1), ReplicaId::new(2)]);
        a.send(ReplicaId::new(2), advert(7)).expect("registered");
        b.send(ReplicaId::new(1), advert(8)).expect("registered");
        let at_b = b.try_recv().expect("delivered");
        assert_eq!(at_b.from, ReplicaId::new(1));
        assert!(matches!(at_b.message, GossipMessage::Advert { round: 7, .. }));
        let at_a = a.recv_timeout(Duration::from_millis(100)).expect("delivered");
        assert_eq!(at_a.from, ReplicaId::new(2));
        assert!(a.try_recv().is_none());
    }

    #[test]
    fn unknown_peer_is_an_error() {
        let network = InProcessNetwork::new();
        let a = network.endpoint(ReplicaId::new(1));
        assert_eq!(
            a.send(ReplicaId::new(9), advert(1)),
            Err(TransportError::UnknownPeer(ReplicaId::new(9)))
        );
    }

    #[test]
    fn dropped_endpoint_disconnects() {
        let network = InProcessNetwork::new();
        let a = network.endpoint(ReplicaId::new(1));
        let b = network.endpoint(ReplicaId::new(2));
        drop(b);
        assert_eq!(
            a.send(ReplicaId::new(2), advert(1)),
            Err(TransportError::Disconnected(ReplicaId::new(2)))
        );
    }

    #[test]
    fn recv_timeout_expires_when_idle() {
        let network = InProcessNetwork::new();
        let a = network.endpoint(ReplicaId::new(1));
        assert!(a.recv_timeout(Duration::from_millis(5)).is_none());
    }

    #[test]
    fn transport_error_display_covers_all_variants() {
        use crate::wire::FrameError;
        assert_eq!(
            TransportError::UnknownPeer(ReplicaId::new(9)).to_string(),
            "unknown peer replica9"
        );
        assert_eq!(
            TransportError::Disconnected(ReplicaId::new(2)).to_string(),
            "peer replica2 disconnected"
        );
        assert_eq!(
            TransportError::Timeout(ReplicaId::new(3)).to_string(),
            "timed out talking to replica3"
        );
        let corrupt: TransportError = FrameError::BadChecksum.into();
        assert!(corrupt.to_string().starts_with("corrupt frame:"));
    }

    #[test]
    fn replica_id_display_and_order() {
        assert_eq!(ReplicaId::new(3).to_string(), "replica3");
        assert_eq!(ReplicaId::new(3).get(), 3);
        assert!(ReplicaId::new(1) < ReplicaId::new(2));
    }
}
