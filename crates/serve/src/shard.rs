//! Shards: epoch-published HD-table snapshots with a shadow writer.
//!
//! Each shard owns two views of one HD hash table:
//!
//! * the **shadow** — the writer-side table, mutated in place by joins and
//!   leaves. Membership changes ride the incremental counter-plane
//!   machinery (`MembershipCentroid` inside `HdHashTable`), so a change is
//!   `O(words · log n)` plane updates, never a re-bundle;
//! * the **published snapshot** — an immutable `Arc<ShardSnapshot>` the
//!   lookup workers load. Publication is a pointer swap under a
//!   micro-lock: the expensive work (applying the change, cloning the
//!   shadow — cheap, the codebook basis is `Arc`-shared) happens *before*
//!   the swap, so readers never wait on a reconfiguration in progress.
//!
//! Every snapshot carries the epoch that published it; responses echo the
//! epoch, which is what lets the churn tests prove a response was computed
//! against a consistent membership (no torn reads).

use std::sync::Arc;

use parking_lot::Mutex;

use hdhash_core::HdHashTable;
use hdhash_hdc::{maintenance::signature_diff, Hypervector, SignatureDelta};
use hdhash_table::{DynamicHashTable, RequestKey, ServerId, TableError};

/// An immutable, epoch-stamped view of one shard's table, shared with the
/// lookup workers behind an [`Arc`].
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    /// Which shard this snapshot belongs to.
    pub shard: usize,
    /// Monotone per-shard publication counter (0 = the empty genesis
    /// snapshot, before any membership change).
    pub epoch: u64,
    /// The membership live in this epoch, in join order.
    pub members: Vec<ServerId>,
    /// The pool's membership signature at publication (the incremental
    /// majority centroid) — the anti-entropy comparison point.
    pub signature: Hypervector,
    table: HdHashTable,
}

impl ShardSnapshot {
    /// Routes a batch of keys through this epoch's table (the
    /// slot-deduplicated batched scan).
    #[must_use]
    pub fn lookup_batch(&self, keys: &[RequestKey]) -> Vec<Result<ServerId, TableError>> {
        self.table.lookup_batch(keys)
    }

    /// Routes a single key through this epoch's table.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::EmptyPool`] when no members are live.
    pub fn lookup(&self, key: RequestKey) -> Result<ServerId, TableError> {
        self.table.lookup(key)
    }

    /// Whether `server` was live in this epoch.
    #[must_use]
    pub fn contains(&self, server: ServerId) -> bool {
        self.members.contains(&server)
    }

    /// The membership as a **sorted** id set — the canonical form replica
    /// reconciliation compares ([`members`](Self::members) keeps
    /// replica-local join order).
    #[must_use]
    pub fn member_ids(&self) -> Vec<ServerId> {
        self.table.member_ids()
    }
}

/// Receipt of one published reconfiguration: the new epoch and the full
/// membership it serves. Churn drivers log receipts to validate responses
/// epoch-by-epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardReceipt {
    /// Which shard published.
    pub shard: usize,
    /// The epoch the change created.
    pub epoch: u64,
    /// Membership live from this epoch on (until the next receipt).
    pub members: Vec<ServerId>,
}

/// One shard: shadow writer + epoch-published snapshot.
#[derive(Debug)]
pub(crate) struct Shard {
    index: usize,
    /// Writer side; the lock serializes reconfigurations.
    shadow: Mutex<HdHashTable>,
    /// Reader side; the lock guards only the `Arc` pointer swap/clone.
    published: Mutex<Arc<ShardSnapshot>>,
}

impl Shard {
    pub(crate) fn new(index: usize, table: HdHashTable) -> Self {
        let genesis = Arc::new(ShardSnapshot {
            shard: index,
            epoch: 0,
            members: table.servers(),
            signature: table.membership_signature(),
            table: table.clone(),
        });
        Self { index, shadow: Mutex::new(table), published: Mutex::new(genesis) }
    }

    /// The current snapshot (readers: one `Arc` clone under a micro-lock).
    pub(crate) fn load(&self) -> Arc<ShardSnapshot> {
        Arc::clone(&self.published.lock())
    }

    /// Applies `change` to the shadow table and publishes the result as a
    /// new epoch. The change runs under the shadow lock (one writer at a
    /// time); the publish is a pointer swap. A failed change publishes
    /// nothing and burns no epoch.
    pub(crate) fn reconfigure<F>(&self, change: F) -> Result<ShardReceipt, TableError>
    where
        F: FnOnce(&mut HdHashTable) -> Result<(), TableError>,
    {
        let shadow = &mut *self.shadow.lock();
        change(shadow)?;
        Ok(self.publish_locked(shadow))
    }

    /// Drives the shadow membership to exactly `target` and publishes the
    /// result as a new epoch — the anti-entropy application path. A target
    /// the shadow already matches publishes nothing and burns no epoch
    /// (reconciliation is idempotent), hence the `Option`.
    pub(crate) fn reconcile(
        &self,
        target: &[ServerId],
    ) -> Result<Option<ShardReceipt>, TableError> {
        let shadow = &mut *self.shadow.lock();
        let (joined, left) = shadow.reconcile_members(target)?;
        if joined == 0 && left == 0 {
            return Ok(None);
        }
        Ok(Some(self.publish_locked(shadow)))
    }

    /// Publishes the shadow as the next epoch. Callers hold the shadow
    /// lock (`shadow` borrows from it), which is what orders epochs.
    fn publish_locked(&self, shadow: &HdHashTable) -> ShardReceipt {
        let epoch = self.load().epoch + 1;
        let snapshot = Arc::new(ShardSnapshot {
            shard: self.index,
            epoch,
            members: shadow.servers(),
            signature: shadow.membership_signature(),
            table: shadow.clone(),
        });
        let receipt = ShardReceipt {
            shard: self.index,
            epoch,
            members: snapshot.members.clone(),
        };
        *self.published.lock() = snapshot;
        receipt
    }

    /// Anti-entropy check: the Hamming delta between the shadow's live
    /// membership signature and the published snapshot's. Between
    /// reconfigurations this is exactly zero; a persistent nonzero delta
    /// means a change was applied but never published.
    pub(crate) fn pending_divergence(&self, threshold: usize) -> SignatureDelta {
        // Hold the shadow lock across the published load so a concurrent
        // reconfiguration cannot slip its publication between the two
        // reads and report spurious divergence (lock order shadow →
        // published matches `reconfigure`).
        let shadow = self.shadow.lock();
        let published = self.load();
        signature_diff(&shadow.membership_signature(), &published.signature, threshold)
            .expect("shadow and snapshot share one dimension")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> HdHashTable {
        HdHashTable::builder()
            .dimension(2048)
            .codebook_size(64)
            .seed(5)
            .build()
            .expect("valid config")
    }

    #[test]
    fn genesis_snapshot_is_epoch_zero_and_empty() {
        let shard = Shard::new(2, table());
        let snap = shard.load();
        assert_eq!((snap.shard, snap.epoch), (2, 0));
        assert!(snap.members.is_empty());
        assert_eq!(snap.lookup(RequestKey::new(1)), Err(TableError::EmptyPool));
    }

    #[test]
    fn reconfigure_publishes_new_epochs() {
        let shard = Shard::new(0, table());
        let r1 = shard.reconfigure(|t| t.join(ServerId::new(7))).expect("fresh");
        assert_eq!(r1.epoch, 1);
        assert_eq!(r1.members, vec![ServerId::new(7)]);
        let r2 = shard.reconfigure(|t| t.join(ServerId::new(8))).expect("fresh");
        assert_eq!(r2.epoch, 2);
        let snap = shard.load();
        assert_eq!(snap.epoch, 2);
        assert!(snap.contains(ServerId::new(7)) && snap.contains(ServerId::new(8)));
        assert!(snap.lookup(RequestKey::new(3)).is_ok());
    }

    #[test]
    fn failed_change_burns_no_epoch() {
        let shard = Shard::new(0, table());
        shard.reconfigure(|t| t.join(ServerId::new(1))).expect("fresh");
        let dup = shard.reconfigure(|t| t.join(ServerId::new(1)));
        assert_eq!(dup, Err(TableError::ServerAlreadyPresent(ServerId::new(1))));
        assert_eq!(shard.load().epoch, 1);
    }

    #[test]
    fn old_snapshots_stay_consistent_after_churn() {
        let shard = Shard::new(0, table());
        for id in 0..6 {
            shard.reconfigure(|t| t.join(ServerId::new(id))).expect("fresh");
        }
        let old = shard.load();
        let keys: Vec<RequestKey> = (0..64).map(RequestKey::new).collect();
        let before = old.lookup_batch(&keys);
        shard.reconfigure(|t| t.leave(ServerId::new(0))).expect("present");
        shard.reconfigure(|t| t.join(ServerId::new(99))).expect("fresh");
        // The retained old snapshot still answers from its own epoch.
        assert_eq!(old.lookup_batch(&keys), before);
        assert_eq!(old.epoch, 6);
        assert_eq!(shard.load().epoch, 8);
    }

    #[test]
    fn reconcile_publishes_only_on_change() {
        let shard = Shard::new(0, table());
        for id in 0..4 {
            shard.reconfigure(|t| t.join(ServerId::new(id))).expect("fresh");
        }
        let target: Vec<ServerId> = [1u64, 3, 7].into_iter().map(ServerId::new).collect();
        let receipt = shard.reconcile(&target).expect("fits").expect("moved");
        assert_eq!(receipt.epoch, 5);
        assert_eq!(shard.load().member_ids(), target);
        // Fixed point: no moves, no epoch, no publication.
        assert!(shard.reconcile(&target).expect("no-op").is_none());
        assert_eq!(shard.load().epoch, 5);
        assert!(!shard.pending_divergence(0).diverged);
    }

    #[test]
    fn divergence_is_zero_between_reconfigurations() {
        let shard = Shard::new(0, table());
        for id in 0..4 {
            shard.reconfigure(|t| t.join(ServerId::new(id))).expect("fresh");
        }
        let delta = shard.pending_divergence(0);
        assert_eq!(delta.distance, 0);
        assert!(!delta.diverged);
        // Mutating the shadow without publishing (white-box: reach in
        // directly) makes the delta visible.
        shard.shadow.lock().join(ServerId::new(50)).expect("fresh");
        assert!(shard.pending_divergence(8).diverged);
    }
}
