//! The scenario engine: discrete-event workload simulation against live
//! engines.
//!
//! Every driver before this module offered uniform closed-loop traffic —
//! the engine was only ever as busy as it chose to be. A *scenario* is
//! open-loop: a virtual clock advances in ticks, each tick offers a
//! scripted number of requests (diurnal curves, flash crowds, correlated
//! probe bursts from [`hdhash_emulator::shaping`]), keys follow a scripted
//! distribution (uniform or Zipf hotspots), and the membership itself is
//! part of the script (churn storms, replica crash/rejoin through the
//! [`chaos`](crate::chaos) transport). The simulator drives one
//! [`ServeEngine`] or a gossiping [`ReplicatedEngine`] set and reports
//! per-phase telemetry trajectories.
//!
//! ## Determinism
//!
//! Scenario runs are bit-for-bit reproducible from one seed even though
//! the engines under test run real worker threads. Three rules make the
//! deterministic counters immune to scheduling:
//!
//! 1. **Tick-boundary quiescence** — membership changes, gossip exchange
//!    and chaos rounds happen only at tick boundaries, *after* every
//!    outstanding ticket of the previous tick has been reaped. No lookup
//!    is ever in flight across an epoch change, so each response's verdict
//!    and epoch are pure functions of the script.
//! 2. **Driver-side shedding** — each tick submits at most `window`
//!    lookups (`window ≤ queue_capacity`, so the engine-level
//!    [`QueueFull`](crate::ServeError::QueueFull) backpressure is
//!    unreachable) and sheds the remainder itself: the shed count per tick
//!    is `max(0, arrivals − window)` by construction, not a race outcome.
//! 3. **Fingerprint discipline** — [`ScenarioReport::fingerprint`] folds
//!    only deterministic fields (counts, epochs, membership, signature
//!    hashes); wall-clock latency is reported alongside but never
//!    fingerprinted.
//!
//! The regression suite (`crates/serve/tests/scenarios.rs`) asserts
//! equal fingerprints *and* equal per-phase metric vectors for same-seed
//! reruns of every catalog scenario.
//!
//! ## Example
//!
//! ```
//! use hdhash_serve::scenario::{self, Scenario, ScenarioConfig};
//!
//! let scenario = Scenario::by_name("steady").expect("catalog scenario");
//! let report = scenario::run(&scenario, &ScenarioConfig::small(), 7)?;
//! assert_eq!(report.hung_tickets, 0);
//! assert_eq!(report.epoch_mismatches, 0);
//! let rerun = scenario::run(&scenario, &ScenarioConfig::small(), 7)?;
//! assert_eq!(report.fingerprint(), rerun.fingerprint());
//! # Ok::<(), hdhash_serve::ServeError>(())
//! ```

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hdhash_emulator::shaping::{ArrivalProcess, ArrivalShape, BurstProcess, BurstShape};
use hdhash_emulator::{KeyDistribution, KeySampler, Request, Trace};
use hdhash_hashfn::{mix64, SplitMix64};
use hdhash_hdc::Hypervector;
use hdhash_obs::HistogramSnapshot;
use hdhash_table::{RequestKey, ServerId};

use crate::chaos::{ChaosEndpoint, ChaosNetwork, FaultPlan, LinkFaults};
use crate::config::ServeConfig;
use crate::engine::ServeEngine;
use crate::gossip::{converged, GossipConfig, GossipNode};
use crate::load::REAP_TIMEOUT;
use crate::replication::ReplicatedEngine;
use crate::request::Ticket;
use crate::transport::ReplicaId;
use crate::ServeError;

/// Seed-stream salts: every random stream a scenario consumes derives
/// from `mix64(seed ^ SALT)`, so streams are independent but all replay
/// from the single printed seed.
const KEY_SALT: u64 = 0x5CE4_A210_0001;
const CHURN_SALT: u64 = 0x5CE4_A210_0002;
const BURST_SALT: u64 = 0x5CE4_A210_0003;
const CHAOS_SALT: u64 = 0x5CE4_A210_0004;
const ENGINE_SALT: u64 = 0x5CE4_A210_0005;

/// Post-run anti-entropy budget for replicated scenarios: drain rounds
/// before giving up on convergence, and the round at which lingering
/// faults are healed (fault windows are usually already expired; healing
/// also flushes messages the chaos plan still holds in flight).
const RECOVERY_CAP: u64 = 96;
const RECOVERY_HEAL_AFTER: u64 = 16;

/// Membership churn overlay of a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnShape {
    /// Membership is fixed after the initial joins.
    None,
    /// Every `every`-th tick applies a storm of `ops` membership
    /// operations (a deterministic mix of joins of fresh servers and
    /// leaves of live ones; the pool never drains below one member).
    Storm {
        /// Ticks between storms.
        every: usize,
        /// Operations per storm.
        ops: usize,
    },
}

/// A replica crash/rejoin overlay (replicated scenarios only): the chaos
/// transport purges the victim's inbox for the half-open tick window, so
/// it misses all gossip until rejoin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSpec {
    /// Which replica crashes (index into the replica set).
    pub replica: u64,
    /// First tick of the outage.
    pub from_tick: u64,
    /// First tick after the outage.
    pub to_tick: u64,
}

/// A complete scenario description: the script of one simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scenario {
    /// Catalog name (whitespace-free; doubles as the trace name).
    pub name: &'static str,
    /// Virtual ticks to simulate.
    pub ticks: usize,
    /// Ticks per reported phase.
    pub phase_ticks: usize,
    /// The offered-load curve.
    pub arrivals: ArrivalShape,
    /// The lookup-key distribution.
    pub keys: KeyDistribution,
    /// Optional correlated probe bursts layered on the base curve.
    pub bursts: Option<BurstShape>,
    /// Membership churn overlay.
    pub churn: ChurnShape,
    /// Servers joined before the clock starts.
    pub initial_servers: u64,
    /// Maximum lookups submitted per tick; arrivals beyond it are shed by
    /// the driver (clamped to the engine's `queue_capacity` at run time).
    pub window: usize,
    /// Replica count: 1 drives a single engine, ≥ 2 a gossiping set over
    /// the chaos transport.
    pub replicas: usize,
    /// Optional crash/rejoin overlay (requires `replicas ≥ 2`).
    pub crash: Option<CrashSpec>,
    /// Per-link message drop probability (per mille) on the chaos
    /// transport; ignored for single-engine scenarios.
    pub drop_per_mille: u16,
}

impl Scenario {
    /// Structural validation (shape parameters are validated by the
    /// shaping constructors themselves).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), ServeError> {
        let positive = [
            ("ticks", self.ticks),
            ("phase_ticks", self.phase_ticks),
            ("window", self.window),
            ("replicas", self.replicas),
            ("initial_servers", self.initial_servers as usize),
        ];
        for (name, value) in positive {
            if value == 0 {
                return Err(ServeError::InvalidConfig(format!(
                    "scenario {name} must be positive"
                )));
            }
        }
        if let Some(crash) = self.crash {
            if self.replicas < 2 {
                return Err(ServeError::InvalidConfig(
                    "a crash overlay needs at least 2 replicas".into(),
                ));
            }
            if crash.replica as usize >= self.replicas {
                return Err(ServeError::InvalidConfig(format!(
                    "crash replica {} out of range (replicas: {})",
                    crash.replica, self.replicas
                )));
            }
        }
        Ok(())
    }

    /// Looks a scenario up in the [`catalog`] by name.
    #[must_use]
    pub fn by_name(name: &str) -> Option<Scenario> {
        catalog().into_iter().find(|s| s.name == name)
    }

    /// Materializes the scenario's deterministic script for a seed: the
    /// initial membership plus, per tick, the control operations and the
    /// sampled lookup keys.
    ///
    /// # Panics
    ///
    /// Panics if a shape parameter is degenerate (see
    /// [`ArrivalShape::validate`] and the shaping constructors).
    #[must_use]
    pub fn script(&self, seed: u64) -> ScenarioScript {
        let mut arrivals = ArrivalProcess::new(self.arrivals);
        let mut sampler = KeySampler::new(self.keys, mix64(seed ^ KEY_SALT));
        let mut bursts = self.bursts.map(|b| BurstProcess::new(b, mix64(seed ^ BURST_SALT)));
        let mut churn_rng = SplitMix64::new(mix64(seed ^ CHURN_SALT));

        let initial: Vec<ServerId> = (0..self.initial_servers).map(ServerId::new).collect();
        let mut live: BTreeSet<u64> = (0..self.initial_servers).collect();
        let mut next_id = self.initial_servers;

        let mut ticks = Vec::with_capacity(self.ticks);
        for t in 0..self.ticks {
            let mut controls = Vec::new();
            if let ChurnShape::Storm { every, ops } = self.churn {
                if t > 0 && every > 0 && t % every == 0 {
                    for _ in 0..ops {
                        if churn_rng.next_below(2) == 1 && live.len() > 1 {
                            let nth = churn_rng.next_below(live.len() as u64) as usize;
                            let victim = *live.iter().nth(nth).expect("index in range");
                            live.remove(&victim);
                            controls.push(Request::Leave(ServerId::new(victim)));
                        } else {
                            live.insert(next_id);
                            controls.push(Request::Join(ServerId::new(next_id)));
                            next_id += 1;
                        }
                    }
                }
            }
            let offered =
                arrivals.next_tick() + bursts.as_mut().map_or(0, BurstProcess::next_tick);
            let lookups: Vec<RequestKey> = (0..offered).map(|_| sampler.next_key()).collect();
            ticks.push(TickScript { controls, lookups });
        }
        ScenarioScript { initial, ticks }
    }

    /// Records the scenario's full request stream as an
    /// [`hdhash_emulator::Trace`] — replayable through the emulator module
    /// *and* the serve driver (`load::drive_trace`), which is the seam the
    /// cross-world regression test exercises.
    #[must_use]
    pub fn trace(&self, seed: u64) -> Trace {
        Trace::new(self.name, self.script(seed).requests())
    }
}

/// One virtual tick's scripted inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TickScript {
    /// Membership operations applied at the tick boundary.
    pub controls: Vec<Request>,
    /// Lookup keys offered this tick (before windowing/shedding).
    pub lookups: Vec<RequestKey>,
}

/// A fully materialized scenario script (pure function of scenario ×
/// seed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioScript {
    /// Servers joined before the clock starts.
    pub initial: Vec<ServerId>,
    /// Per-tick inputs.
    pub ticks: Vec<TickScript>,
}

impl ScenarioScript {
    /// Flattens the script into one request stream: initial joins, then
    /// per tick the control operations followed by the lookups.
    #[must_use]
    pub fn requests(&self) -> Vec<Request> {
        let mut out: Vec<Request> =
            self.initial.iter().map(|&s| Request::Join(s)).collect();
        for tick in &self.ticks {
            out.extend(tick.controls.iter().copied());
            out.extend(tick.lookups.iter().map(|&k| Request::Lookup(k)));
        }
        out
    }

    /// Total lookups offered across all ticks.
    #[must_use]
    pub fn offered_lookups(&self) -> usize {
        self.ticks.iter().map(|t| t.lookups.len()).sum()
    }
}

/// The built-in scenario catalog (see `docs/SCENARIOS.md` for the knob
/// and invariant reference).
#[must_use]
pub fn catalog() -> Vec<Scenario> {
    let base = Scenario {
        name: "steady",
        ticks: 48,
        phase_ticks: 8,
        arrivals: ArrivalShape::Constant { rate: 150.0 },
        keys: KeyDistribution::Uniform,
        bursts: None,
        churn: ChurnShape::None,
        initial_servers: 16,
        window: 512,
        replicas: 1,
        crash: None,
        drop_per_mille: 0,
    };
    vec![
        base,
        Scenario {
            name: "diurnal",
            arrivals: ArrivalShape::Diurnal { mean: 120.0, amplitude: 0.8, period: 16 },
            ..base
        },
        Scenario {
            name: "flash-crowd",
            arrivals: ArrivalShape::FlashCrowd {
                base: 80.0,
                peak: 900.0,
                start: 16,
                duration: 8,
            },
            window: 256,
            ..base
        },
        Scenario {
            name: "zipf-hotspot",
            keys: KeyDistribution::Zipf { universe: 512, exponent: 1.1 },
            ..base
        },
        Scenario {
            name: "correlated-bursts",
            arrivals: ArrivalShape::Constant { rate: 60.0 },
            bursts: Some(BurstShape {
                machines: 24,
                probes_per_upset: 40,
                model: hdhash_emulator::CorrelatedErrorModel {
                    monthly_error_rate: 0.08,
                    correlation_factor: 8.0,
                    events_per_error: 2,
                },
            }),
            ..base
        },
        Scenario {
            name: "churn-storm",
            arrivals: ArrivalShape::Constant { rate: 100.0 },
            churn: ChurnShape::Storm { every: 6, ops: 4 },
            initial_servers: 12,
            ..base
        },
        Scenario {
            name: "crash-rejoin",
            arrivals: ArrivalShape::Constant { rate: 90.0 },
            churn: ChurnShape::Storm { every: 8, ops: 3 },
            initial_servers: 12,
            replicas: 3,
            crash: Some(CrashSpec { replica: 2, from_tick: 12, to_tick: 28 }),
            drop_per_mille: 150,
            ..base
        },
    ]
}

/// Engine-side configuration of a scenario run (the scenario scripts the
/// *traffic*; this configures the *system under test*).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioConfig {
    /// Per-replica engine configuration. The `seed` field is overridden
    /// by the run (derived from the scenario seed) so one printed seed
    /// reproduces the codebook geometry too.
    pub engine: ServeConfig,
    /// Gossip tuning for replicated scenarios.
    pub gossip: GossipConfig,
}

impl ScenarioConfig {
    /// A small test-scale configuration: 2 shards × 2 workers,
    /// 2048-dimensional tables over a 64-slot codebook.
    #[must_use]
    pub fn small() -> Self {
        Self {
            engine: ServeConfig {
                shards: 2,
                workers: 2,
                batch_capacity: 16,
                queue_capacity: 1024,
                dimension: 2048,
                codebook_size: 64,
                ..ServeConfig::default()
            },
            gossip: GossipConfig::default(),
        }
    }
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        Self::small()
    }
}

/// Deterministic + measured telemetry of one reported phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseMetrics {
    /// Phase index (0-based).
    pub phase: usize,
    /// Lookups offered by the script this phase.
    pub arrivals: u64,
    /// Lookups submitted to an engine.
    pub submitted: u64,
    /// Lookups shed by the per-tick window (open-loop overload).
    pub shed: u64,
    /// Submitted lookups reaped with a response.
    pub completed: u64,
    /// Completed lookups whose verdict was an error.
    pub lookup_failures: u64,
    /// Submitted lookups abandoned at the reap timeout (hung tickets).
    pub timed_out: u64,
    /// Membership operations applied this phase.
    pub controls: u64,
    /// Membership operations rejected.
    pub control_failures: u64,
    /// Live members at phase end (replica 0's merged view).
    pub members: u64,
    /// Highest shard epoch at phase end on replica 0.
    pub epoch_max: u64,
    /// Reconfiguration skew across the replica set at phase end: the
    /// worst per-shard spread (max − min) of published epochs. Always 0
    /// for single-engine scenarios.
    pub epoch_lag: u64,
    /// Anti-entropy distance at phase end: summed over shards, the worst
    /// Hamming distance between replica 0's signature and any peer's.
    /// Always 0 for single-engine scenarios; 0 at the end of a converged
    /// replicated run.
    pub divergence: u64,
    /// Hash of replica 0's per-shard membership signatures at phase end.
    pub signature_hash: u64,
    /// Engine-side submit-to-response latency distribution of this phase
    /// (nanoseconds; aggregated over every shard of every replica, then
    /// delta'd against the previous phase). Wall-clock — excluded from
    /// the fingerprint.
    pub latency: HistogramSnapshot,
    /// Wall time of the phase. Excluded from the fingerprint.
    pub wall: Duration,
}

impl PhaseMetrics {
    /// Folds the deterministic fields into a running fingerprint.
    fn fold(&self, acc: u64) -> u64 {
        [
            self.phase as u64,
            self.arrivals,
            self.submitted,
            self.shed,
            self.completed,
            self.lookup_failures,
            self.timed_out,
            self.controls,
            self.control_failures,
            self.members,
            self.epoch_max,
            self.epoch_lag,
            self.divergence,
            self.signature_hash,
        ]
        .into_iter()
        .fold(acc, |a, v| mix64(a ^ v))
    }

    /// Completed lookups over the phase's wall time.
    #[must_use]
    pub fn throughput_rps(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.completed as f64 / self.wall.as_secs_f64()
        }
    }
}

/// The outcome of one scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Scenario name.
    pub scenario: &'static str,
    /// The seed that reproduces this run bit-for-bit.
    pub seed: u64,
    /// Per-phase telemetry trajectories.
    pub phases: Vec<PhaseMetrics>,
    /// Responses whose epoch disagreed with the membership snapshot
    /// serving their tick. Zero is an invariant of the tick-boundary
    /// quiescence design.
    pub epoch_mismatches: u64,
    /// Tickets abandoned at the reap timeout across the whole run. Zero
    /// against healthy engines.
    pub hung_tickets: u64,
    /// Whether the replica set ended byte-identical (trivially `true`
    /// for single-engine scenarios).
    pub converged: bool,
    /// Quiescent anti-entropy rounds needed after the last tick before
    /// the set converged (0 when it was already converged, or for
    /// single-engine scenarios).
    pub recovery_rounds: u64,
    /// Per-replica hash of the final per-shard signatures; all equal iff
    /// `converged`.
    pub replica_signatures: Vec<u64>,
    /// Wall time of the whole run. Excluded from the fingerprint.
    pub wall: Duration,
}

impl ScenarioReport {
    /// A 64-bit digest of every deterministic field of the run. Two runs
    /// of the same scenario, config and seed produce equal fingerprints;
    /// any divergence in counts, epochs, membership or signatures changes
    /// it.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut acc = mix64(self.seed);
        // Fold the scenario name too: distributions that happen to yield
        // identical counters (uniform vs zipf keys, say) must still get
        // distinct digests.
        for &byte in self.scenario.as_bytes() {
            acc = mix64(acc ^ u64::from(byte));
        }
        for phase in &self.phases {
            acc = phase.fold(acc);
        }
        for &sig in &self.replica_signatures {
            acc = mix64(acc ^ sig);
        }
        for v in [
            self.epoch_mismatches,
            self.hung_tickets,
            self.recovery_rounds,
            u64::from(self.converged),
        ] {
            acc = mix64(acc ^ v);
        }
        acc
    }

    /// Sums a per-phase counter over the whole run.
    #[must_use]
    pub fn total(&self, field: impl Fn(&PhaseMetrics) -> u64) -> u64 {
        self.phases.iter().map(field).sum()
    }
}

/// Per-phase counter accumulator (reset at each phase boundary).
#[derive(Default)]
struct PhaseAccum {
    arrivals: u64,
    submitted: u64,
    shed: u64,
    completed: u64,
    lookup_failures: u64,
    timed_out: u64,
    controls: u64,
    control_failures: u64,
}

/// Runs a scenario to completion. See [`run_with_observer`] for the
/// phase-boundary hook variant.
///
/// # Errors
///
/// Propagates [`ServeError`] from scenario/engine validation or from the
/// initial membership bootstrap.
pub fn run(
    scenario: &Scenario,
    config: &ScenarioConfig,
    seed: u64,
) -> Result<ScenarioReport, ServeError> {
    run_with_observer(scenario, config, seed, |_, _| {})
}

/// Runs a scenario, invoking `observe` at every phase boundary with the
/// just-completed phase's metrics and replica 0's engine (the hook the
/// CLI uses for periodic telemetry dumps). The observer cannot perturb
/// the deterministic counters — it runs while the clock is quiescent.
///
/// # Errors
///
/// Propagates [`ServeError`] from scenario/engine validation or from the
/// initial membership bootstrap.
pub fn run_with_observer(
    scenario: &Scenario,
    config: &ScenarioConfig,
    seed: u64,
    mut observe: impl FnMut(&PhaseMetrics, &ServeEngine),
) -> Result<ScenarioReport, ServeError> {
    scenario.validate()?;
    let mut engine_config = config.engine;
    engine_config.seed = mix64(seed ^ ENGINE_SALT);
    engine_config.validate()?;
    let window = scenario.window.min(engine_config.queue_capacity).max(1);

    let script = scenario.script(seed);

    let replicas: Vec<Arc<ReplicatedEngine>> = (0..scenario.replicas)
        .map(|i| ReplicatedEngine::new(ReplicaId::new(i as u64), engine_config).map(Arc::new))
        .collect::<Result<_, _>>()?;

    // Replicated scenarios gossip over the chaos transport so crash and
    // loss overlays replay from the seed; time is the shared virtual
    // round counter, advanced once per tick.
    let (net, nodes) = if scenario.replicas > 1 {
        let mut plan = FaultPlan::new(mix64(seed ^ CHAOS_SALT));
        if scenario.drop_per_mille > 0 {
            plan = plan.with_default_link(LinkFaults::lossy(scenario.drop_per_mille));
        }
        if let Some(crash) = scenario.crash {
            plan = plan
                .with_crash(ReplicaId::new(crash.replica), crash.from_tick..crash.to_tick);
        }
        let net = ChaosNetwork::new(plan);
        let ids: Vec<ReplicaId> =
            (0..scenario.replicas as u64).map(ReplicaId::new).collect();
        let nodes: Vec<GossipNode<ChaosEndpoint>> = replicas
            .iter()
            .zip(&ids)
            .map(|(replica, &id)| {
                GossipNode::new(Arc::clone(replica), net.endpoint(id), ids.clone(), config.gossip)
            })
            .collect();
        (Some(net), nodes)
    } else {
        (None, Vec::new())
    };

    // Bootstrap membership is provisioned on every replica directly (it
    // is configuration, not discovered state); runtime churn then flows
    // through replica 0 and propagates by gossip.
    for replica in &replicas {
        for &server in &script.initial {
            replica.join(server)?;
        }
    }

    let exchange = |net: &Arc<ChaosNetwork>| {
        net.advance_round();
        for node in &nodes {
            node.tick();
        }
        loop {
            let moved: usize = nodes.iter().map(GossipNode::pump).sum();
            if moved == 0 {
                break;
            }
        }
    };

    let started = Instant::now();
    let mut phase_started = Instant::now();
    let mut acc = PhaseAccum::default();
    let mut prev_hist = HistogramSnapshot::empty();
    let mut phases: Vec<PhaseMetrics> = Vec::new();
    let mut epoch_mismatches = 0u64;
    let mut hung_tickets = 0u64;
    let mut rr = 0usize;
    let mut tickets: Vec<(Ticket, usize)> = Vec::with_capacity(window);

    for (t, tick) in script.ticks.iter().enumerate() {
        // 1. Tick boundary: one chaos round + a drained gossip exchange.
        if let Some(net) = &net {
            exchange(net);
        }

        // 2. Scripted membership operations, through replica 0 (the
        //    membership authority; peers learn by anti-entropy).
        for request in &tick.controls {
            let outcome = match *request {
                Request::Join(server) => Some(replicas[0].join(server).map(|_| ())),
                Request::Leave(server) => Some(replicas[0].leave(server).map(|_| ())),
                Request::Lookup(_) => None,
            };
            if let Some(result) = outcome {
                acc.controls += 1;
                if result.is_err() {
                    acc.control_failures += 1;
                }
            }
        }

        // 3. The membership is now quiescent for the rest of the tick:
        //    capture the per-replica serving epochs responses must match.
        let epochs: Vec<Vec<u64>> = replicas
            .iter()
            .map(|r| r.engine().snapshots().iter().map(|s| s.epoch).collect())
            .collect();

        // Clients fail over away from a crashed replica deterministically.
        let mut live: Vec<usize> = (0..replicas.len())
            .filter(|&i| {
                net.as_ref().is_none_or(|n| !n.is_crashed(ReplicaId::new(i as u64)))
            })
            .collect();
        if live.is_empty() {
            live.push(0);
        }

        // 4. Open-loop submission under the per-tick window.
        acc.arrivals += tick.lookups.len() as u64;
        for &key in &tick.lookups {
            if tickets.len() >= window {
                acc.shed += 1;
                continue;
            }
            let idx = live[rr % live.len()];
            rr += 1;
            match replicas[idx].submit(key) {
                Ok(ticket) => {
                    acc.submitted += 1;
                    tickets.push((ticket, idx));
                }
                // Unreachable while window ≤ queue_capacity (only the
                // workers dequeue); counted as shed defensively.
                Err(_) => acc.shed += 1,
            }
        }

        // 5. Reap every outstanding ticket through the async surface
        //    before the clock may advance — the quiescence rule.
        for (ticket, idx) in tickets.drain(..) {
            match crate::executor::block_on_timeout(ticket, REAP_TIMEOUT) {
                Some(response) => {
                    acc.completed += 1;
                    if response.result.is_err() {
                        acc.lookup_failures += 1;
                    }
                    if epochs[idx].get(response.shard).copied() != Some(response.epoch) {
                        epoch_mismatches += 1;
                    }
                }
                None => {
                    acc.timed_out += 1;
                    hung_tickets += 1;
                }
            }
        }

        // 6. Phase boundary: snapshot the trajectory point.
        if (t + 1) % scenario.phase_ticks == 0 || t + 1 == script.ticks.len() {
            let agg = aggregate_latency(&replicas);
            let phase = PhaseMetrics {
                phase: phases.len(),
                arrivals: acc.arrivals,
                submitted: acc.submitted,
                shed: acc.shed,
                completed: acc.completed,
                lookup_failures: acc.lookup_failures,
                timed_out: acc.timed_out,
                controls: acc.controls,
                control_failures: acc.control_failures,
                members: replicas[0].member_ids().len() as u64,
                epoch_max: replicas[0]
                    .engine()
                    .snapshots()
                    .iter()
                    .map(|s| s.epoch)
                    .max()
                    .unwrap_or(0),
                epoch_lag: epoch_lag(&replicas),
                divergence: divergence_bits(&replicas),
                signature_hash: signature_hash(&replicas[0].shard_signatures()),
                latency: agg.delta_since(&prev_hist),
                wall: phase_started.elapsed(),
            };
            prev_hist = agg;
            observe(&phase, replicas[0].engine());
            phases.push(phase);
            acc = PhaseAccum::default();
            phase_started = Instant::now();
        }
    }

    // 7. Post-run drain: quiescent anti-entropy rounds until the set is
    //    byte-identical (bounded; lingering faults healed part-way).
    let mut recovery_rounds = 0u64;
    let mut is_converged = true;
    if let Some(net) = &net {
        let refs: Vec<&ReplicatedEngine> = replicas.iter().map(Arc::as_ref).collect();
        is_converged = converged(&refs);
        for round in 0..RECOVERY_CAP {
            if is_converged {
                break;
            }
            if round == RECOVERY_HEAL_AFTER {
                net.heal();
            }
            exchange(net);
            recovery_rounds += 1;
            is_converged = converged(&refs);
        }
        debug_assert!(net.stats().reconciles(), "chaos conservation identity violated");
    }

    let replica_signatures: Vec<u64> =
        replicas.iter().map(|r| signature_hash(&r.shard_signatures())).collect();

    Ok(ScenarioReport {
        scenario: scenario.name,
        seed,
        phases,
        epoch_mismatches,
        hung_tickets,
        converged: is_converged,
        recovery_rounds,
        replica_signatures,
        wall: started.elapsed(),
    })
}

/// Engine-side latency distributions of every shard of every replica,
/// merged into one cumulative histogram.
fn aggregate_latency(replicas: &[Arc<ReplicatedEngine>]) -> HistogramSnapshot {
    let mut agg = HistogramSnapshot::empty();
    for replica in replicas {
        for shard in replica.engine().metrics().shards {
            agg = agg.merge(&shard.latency_hist);
        }
    }
    agg
}

/// Worst per-shard spread of published epochs across the replica set.
fn epoch_lag(replicas: &[Arc<ReplicatedEngine>]) -> u64 {
    if replicas.len() < 2 {
        return 0;
    }
    let epochs: Vec<Vec<u64>> = replicas
        .iter()
        .map(|r| r.engine().snapshots().iter().map(|s| s.epoch).collect())
        .collect();
    let shards = epochs.iter().map(Vec::len).min().unwrap_or(0);
    (0..shards)
        .map(|s| {
            let column = epochs.iter().map(|e| e[s]);
            column.clone().max().unwrap_or(0) - column.min().unwrap_or(0)
        })
        .max()
        .unwrap_or(0)
}

/// Summed worst-case Hamming distance between replica 0's per-shard
/// signatures and any peer's.
fn divergence_bits(replicas: &[Arc<ReplicatedEngine>]) -> u64 {
    if replicas.len() < 2 {
        return 0;
    }
    let reference = replicas[0].shard_signatures();
    let mut total = 0u64;
    for (shard, sig) in reference.iter().enumerate() {
        let worst = replicas[1..]
            .iter()
            .map(|r| {
                let theirs = r.shard_signatures();
                theirs
                    .get(shard)
                    .map_or(sig.dimension(), |other| sig.hamming_distance(other))
            })
            .max()
            .unwrap_or(0);
        total += worst as u64;
    }
    total
}

/// Order-sensitive hash of a signature vector's raw words.
fn signature_hash(signatures: &[Hypervector]) -> u64 {
    let mut acc = 0x51_6E41_u64;
    for signature in signatures {
        for &word in signature.as_words() {
            acc = mix64(acc ^ word);
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_are_unique_and_resolvable() {
        let names: Vec<&str> = catalog().iter().map(|s| s.name).collect();
        let unique: BTreeSet<&str> = names.iter().copied().collect();
        assert_eq!(names.len(), unique.len());
        assert!(names.len() >= 7, "catalog should cover the issue's scenario list");
        for name in names {
            let scenario = Scenario::by_name(name).expect("by_name resolves catalog entries");
            assert_eq!(scenario.name, name);
            scenario.validate().expect("catalog scenarios validate");
        }
        assert!(Scenario::by_name("no-such-scenario").is_none());
    }

    #[test]
    fn script_conserves_offered_load() {
        let scenario = Scenario::by_name("diurnal").expect("catalog");
        let script = scenario.script(11);
        assert_eq!(script.ticks.len(), scenario.ticks);
        let offered = scenario.arrivals.offered(scenario.ticks);
        let total = script.offered_lookups() as f64;
        assert!((total - offered).abs() < 1.0, "total {total} vs integral {offered}");
    }

    #[test]
    fn script_churn_never_drains_the_pool() {
        let scenario = Scenario::by_name("churn-storm").expect("catalog");
        let script = scenario.script(23);
        let mut live: BTreeSet<u64> =
            script.initial.iter().map(|s| s.get()).collect();
        for tick in &script.ticks {
            for control in &tick.controls {
                match *control {
                    Request::Join(s) => {
                        assert!(live.insert(s.get()), "joins are always fresh ids");
                    }
                    Request::Leave(s) => {
                        assert!(live.remove(&s.get()), "leaves target live members");
                    }
                    Request::Lookup(_) => panic!("controls only"),
                }
                assert!(!live.is_empty(), "pool must never drain");
            }
        }
    }

    #[test]
    fn script_is_deterministic_and_seed_sensitive() {
        let scenario = Scenario::by_name("zipf-hotspot").expect("catalog");
        assert_eq!(scenario.script(5), scenario.script(5));
        assert_ne!(scenario.script(5), scenario.script(6));
    }

    #[test]
    fn trace_flattens_the_script() {
        let scenario = Scenario::by_name("churn-storm").expect("catalog");
        let script = scenario.script(3);
        let trace = scenario.trace(3);
        assert_eq!(trace.name(), "churn-storm");
        let controls: usize = script.ticks.iter().map(|t| t.controls.len()).sum();
        assert_eq!(
            trace.len(),
            script.initial.len() + controls + script.offered_lookups()
        );
    }

    #[test]
    fn validation_rejects_structural_nonsense() {
        let good = Scenario::by_name("steady").expect("catalog");
        assert!(Scenario { ticks: 0, ..good }.validate().is_err());
        assert!(Scenario { replicas: 0, ..good }.validate().is_err());
        assert!(Scenario {
            crash: Some(CrashSpec { replica: 0, from_tick: 0, to_tick: 4 }),
            ..good
        }
        .validate()
        .is_err(), "crash needs ≥ 2 replicas");
        assert!(Scenario {
            replicas: 2,
            crash: Some(CrashSpec { replica: 5, from_tick: 0, to_tick: 4 }),
            ..good
        }
        .validate()
        .is_err(), "crash replica must exist");
    }

    #[test]
    fn flash_crowd_script_exceeds_window_only_at_peak() {
        let scenario = Scenario::by_name("flash-crowd").expect("catalog");
        let script = scenario.script(17);
        let ArrivalShape::FlashCrowd { start, duration, .. } = scenario.arrivals else {
            panic!("flash-crowd shape");
        };
        for (t, tick) in script.ticks.iter().enumerate() {
            if t >= start && t < start + duration {
                assert!(tick.lookups.len() > scenario.window, "peak tick {t} overloads");
            } else {
                assert!(tick.lookups.len() <= scenario.window, "off-peak tick {t} fits");
            }
        }
    }
}
