//! Worker panic containment: a panicking lookup batch must resolve every
//! ticket with an error response and leave the engine serving.

use std::time::Duration;

use hdhash_serve::{ServeConfig, ServeEngine};
use hdhash_table::{RequestKey, ServerId, TableError};

fn engine(workers: usize) -> ServeEngine {
    let engine = ServeEngine::new(ServeConfig {
        shards: 2,
        workers,
        dimension: 2048,
        codebook_size: 64,
        seed: 77,
        ..ServeConfig::default()
    })
    .expect("valid config");
    for id in 0..6 {
        engine.join(ServerId::new(id)).expect("fresh server");
    }
    engine
}

/// Silences the default panic hook for the injected panic, so the test
/// log is not littered with intentional worker backtraces. Installed once
/// for the whole test binary — every test here injects panics.
fn quiet_panics() {
    static QUIET: std::sync::Once = std::sync::Once::new();
    QUIET.call_once(|| {
        std::panic::set_hook(Box::new(|_| {}));
    });
}

#[test]
fn panicking_batch_resolves_every_ticket_and_engine_keeps_serving() {
    quiet_panics();
    let mut engine = engine(2);
    engine.inject_worker_panic(RequestKey::new(13));
    // A burst containing the armed key: the batch it lands in is
    // abandoned, everything else serves normally.
    let tickets: Vec<_> = (0..100u64)
        .map(|k| engine.submit(RequestKey::new(k)).expect("accepted"))
        .collect();
    let mut panicked = 0;
    let mut served = 0;
    for ticket in tickets {
        // Bounded wait: a hang here is exactly the bug containment exists
        // to prevent, so fail the test with a timeout instead.
        let response = ticket
            .wait_timeout(Duration::from_secs(30))
            .expect("every ticket resolves");
        match response.result {
            Err(TableError::WorkerPanicked) => panicked += 1,
            Ok(_) => served += 1,
            Err(other) => panic!("unexpected verdict {other}"),
        }
    }
    assert!(panicked >= 1, "the armed key's batch was backfilled");
    assert!(served >= 1, "the engine kept serving around the panic");

    // The worker survived: a fresh burst after the panic serves cleanly.
    let tickets: Vec<_> = (100..150u64)
        .map(|k| engine.submit(RequestKey::new(k)).expect("still accepting"))
        .collect();
    for ticket in tickets {
        let response = ticket
            .wait_timeout(Duration::from_secs(30))
            .expect("post-panic tickets resolve");
        assert!(response.result.is_ok(), "post-panic serving is clean");
    }

    engine.shutdown();
    let metrics = engine.metrics();
    assert_eq!(metrics.panics_contained, 1, "one injected panic, contained");
    assert_eq!(metrics.submitted, 150);
    assert_eq!(metrics.completed, 150, "backfilled tickets count as completed");
}

#[test]
fn single_worker_engine_survives_a_panic() {
    quiet_panics();
    // With one worker there is no sibling to hide behind: the same thread
    // must catch its own panic and loop back for the next pickup.
    let mut engine = engine(1);
    engine.inject_worker_panic(RequestKey::new(5));
    let first = engine.submit(RequestKey::new(5)).expect("accepted");
    let response = first
        .wait_timeout(Duration::from_secs(30))
        .expect("contained, not hung");
    assert_eq!(response.result, Err(TableError::WorkerPanicked));
    let second = engine.submit(RequestKey::new(6)).expect("still accepting");
    let response = second
        .wait_timeout(Duration::from_secs(30))
        .expect("the sole worker is still alive");
    assert!(response.result.is_ok());
    engine.shutdown();
    assert_eq!(engine.metrics().panics_contained, 1);
}
