//! Replica convergence under gossip: quiescent sets converge in a bounded
//! number of rounds, and sets under **concurrent churn** (joins/leaves
//! racing the gossip scheduler threads) converge to byte-identical
//! per-shard membership signatures once the churn stops.
//!
//! CI runs this suite with `--test-threads=1` and repeats the soak test,
//! mirroring the concurrent-churn suite's discipline: the churn-vs-gossip
//! race inside each test is the only concurrency in play.

use std::sync::Arc;
use std::time::{Duration, Instant};

use hdhash_serve::gossip::{converged, run_until_converged, GossipConfig, GossipNode};
use hdhash_serve::replication::ReplicatedEngine;
use hdhash_serve::transport::{InProcessEndpoint, InProcessNetwork, ReplicaId};
use hdhash_serve::ServeConfig;
use hdhash_table::{RequestKey, ServerId};

/// Soak rounds per test execution; CI multiplies by re-running the test.
const SOAK_ROUNDS: usize = 5;
/// Churn operations each replica applies per soak round.
const CHURN_OPS: usize = 40;

fn serve_config(shards: usize, seed: u64) -> ServeConfig {
    ServeConfig {
        shards,
        workers: 1,
        batch_capacity: 16,
        queue_capacity: 512,
        dimension: 2048,
        codebook_size: 64,
        seed,
        scheduler: hdhash_serve::SchedulerKind::default(),
        engine: Default::default(),
        trace: Default::default(),
    }
}

/// Builds `n` replicas on one in-process network, full-mesh peer lists
/// (the default fanout restricts how many are *adverted* per round once
/// `n` grows past it).
fn replica_set(
    n: u64,
    shards: usize,
    seed: u64,
    period: Duration,
) -> Vec<(Arc<ReplicatedEngine>, GossipNode<InProcessEndpoint>)> {
    replica_set_with_fanout(n, shards, seed, period, GossipConfig::default().fanout)
}

fn replica_set_with_fanout(
    n: u64,
    shards: usize,
    seed: u64,
    period: Duration,
    fanout: usize,
) -> Vec<(Arc<ReplicatedEngine>, GossipNode<InProcessEndpoint>)> {
    let network = InProcessNetwork::new();
    let peers: Vec<ReplicaId> = (0..n).map(ReplicaId::new).collect();
    (0..n)
        .map(|i| {
            let id = ReplicaId::new(i);
            let replica = Arc::new(
                ReplicatedEngine::new(id, serve_config(shards, seed)).expect("valid config"),
            );
            let node = GossipNode::new(
                Arc::clone(&replica),
                network.endpoint(id),
                peers.clone(),
                GossipConfig { period, fanout, ..GossipConfig::default() },
            );
            (replica, node)
        })
        .collect()
}

fn assert_byte_identical_signatures(replicas: &[&ReplicatedEngine]) {
    let reference = replicas[0].shard_signatures();
    let members = replicas[0].member_ids();
    for replica in &replicas[1..] {
        assert_eq!(replica.member_ids(), members, "memberships diverged");
        let signatures = replica.shard_signatures();
        assert_eq!(signatures.len(), reference.len());
        for (shard, (ours, theirs)) in reference.iter().zip(&signatures).enumerate() {
            assert_eq!(
                ours.as_words(),
                theirs.as_words(),
                "shard {shard} signatures differ at the word level"
            );
        }
    }
}

#[test]
fn two_quiescent_replicas_converge_in_bounded_rounds() {
    for shards in [1usize, 2, 4] {
        let set = replica_set(2, shards, 1000 + shards as u64, Duration::from_millis(50));
        let (a, b) = (&set[0].0, &set[1].0);
        // Divergent histories: overlapping joins, one conflicting leave.
        for id in 0..12u64 {
            a.join(ServerId::new(id)).expect("fresh");
        }
        for id in 8..20u64 {
            b.join(ServerId::new(id)).expect("fresh");
        }
        a.leave(ServerId::new(3)).expect("present");
        let nodes: Vec<GossipNode<InProcessEndpoint>> =
            set.into_iter().map(|(_, n)| n).collect();
        // One push-pull round must converge a quiescent pair.
        let rounds = run_until_converged(&nodes, 8).expect("must converge");
        assert!(rounds <= 2, "quiescent pair took {rounds} rounds (shards={shards})");
        let replicas: Vec<&ReplicatedEngine> =
            nodes.iter().map(GossipNode::replica).collect();
        assert_byte_identical_signatures(&replicas);
        // The union minus the tombstoned member.
        let want: Vec<ServerId> =
            (0..20u64).filter(|&id| id != 3).map(ServerId::new).collect();
        assert_eq!(replicas[0].member_ids(), want);
    }
}

#[test]
fn three_replica_mesh_converges() {
    let set = replica_set(3, 2, 7, Duration::from_millis(50));
    set[0].0.join(ServerId::new(1)).expect("fresh");
    set[1].0.join(ServerId::new(2)).expect("fresh");
    set[2].0.join(ServerId::new(3)).expect("fresh");
    set[2].0.leave(ServerId::new(3)).expect("present");
    let nodes: Vec<GossipNode<InProcessEndpoint>> =
        set.into_iter().map(|(_, n)| n).collect();
    let rounds = run_until_converged(&nodes, 8).expect("must converge");
    assert!(rounds <= 2, "3-mesh took {rounds} rounds");
    let replicas: Vec<&ReplicatedEngine> = nodes.iter().map(GossipNode::replica).collect();
    assert_byte_identical_signatures(&replicas);
    assert_eq!(replicas[0].member_ids(), vec![ServerId::new(1), ServerId::new(2)]);
}

#[test]
fn six_replica_set_converges_under_restricted_fanout() {
    // 6 replicas, fanout 2: each round adverts to 2 of 5 peers (chosen by
    // the deterministic per-round shuffle), yet the epidemic still
    // converges — in more rounds than full mesh, but bounded.
    for fanout in [2usize, 3] {
        let set = replica_set_with_fanout(6, 2, 60 + fanout as u64, Duration::from_millis(50), fanout);
        // Disjoint histories: replica i joins servers 10i..10i+3, and
        // replica 1 tombstones one of its own members so removal
        // propagation is exercised across the sparse rounds too.
        for (i, (replica, _)) in set.iter().enumerate() {
            for s in 0..3u64 {
                replica.join(ServerId::new(10 * i as u64 + s)).expect("fresh");
            }
        }
        set[1].0.leave(ServerId::new(11)).expect("present");
        let nodes: Vec<GossipNode<InProcessEndpoint>> =
            set.into_iter().map(|(_, n)| n).collect();
        let rounds = run_until_converged(&nodes, 64)
            .unwrap_or_else(|| panic!("6-replica fanout-{fanout} set failed to converge"));
        assert!(rounds <= 16, "fanout {fanout} took {rounds} rounds");
        let replicas: Vec<&ReplicatedEngine> =
            nodes.iter().map(GossipNode::replica).collect();
        assert_byte_identical_signatures(&replicas);
        // Union of all joins minus the tombstoned member.
        let want: Vec<ServerId> = (0..6u64)
            .flat_map(|i| (0..3u64).map(move |s| 10 * i + s))
            .filter(|&id| id != 11)
            .map(ServerId::new)
            .collect();
        assert_eq!(replicas[0].member_ids(), want, "fanout {fanout}");
        // Sparse rounds really happened: with fanout f each tick sends f
        // adverts, not peers-1.
        for node in &nodes {
            let m = node.metrics();
            assert_eq!(m.adverts_sent, m.rounds * fanout as u64, "fanout {fanout}");
        }
    }
}

#[test]
fn lookups_agree_after_convergence() {
    let set = replica_set(2, 2, 99, Duration::from_millis(50));
    set[0].0.join(ServerId::new(5)).expect("fresh");
    set[1].0.join(ServerId::new(6)).expect("fresh");
    let nodes: Vec<GossipNode<InProcessEndpoint>> =
        set.into_iter().map(|(_, n)| n).collect();
    run_until_converged(&nodes, 8).expect("must converge");
    // Converged replicas route every key identically — the operational
    // payoff of signature convergence.
    for k in 0..256u64 {
        let a = nodes[0].replica().submit(RequestKey::new(k)).expect("accepted").wait();
        let b = nodes[1].replica().submit(RequestKey::new(k)).expect("accepted").wait();
        assert_eq!(a.result, b.result, "key {k} routed differently");
        assert_eq!(a.shard, b.shard);
    }
}

/// The soak: churn threads race the gossip scheduler threads, then churn
/// stops and the set must converge within a bounded window while workers
/// keep serving lookups.
#[test]
fn concurrent_churn_soak_converges() {
    for round in 0..SOAK_ROUNDS {
        let seed = 0xC0FFEE + round as u64;
        let set = replica_set(2, 2, seed, Duration::from_millis(2));
        let (a, b) = (Arc::clone(&set[0].0), Arc::clone(&set[1].0));
        // Base membership both replicas agree on, so lookups always route.
        for id in 0..8u64 {
            a.join(ServerId::new(id)).expect("fresh");
        }
        let mut nodes = set.into_iter().map(|(_, n)| n);
        let handle_a = nodes.next().expect("two nodes").spawn();
        let handle_b = nodes.next().expect("two nodes").spawn();

        std::thread::scope(|scope| {
            // Two churners on disjoint id ranges plus a contended range,
            // racing the gossip threads.
            for (replica, base) in [(&a, 100u64), (&b, 200u64)] {
                scope.spawn(move || {
                    for op in 0..CHURN_OPS {
                        let id = base + (op as u64 % 10);
                        // Join/leave alternation; errors (already present /
                        // not found, depending on what gossip merged first)
                        // are part of the race and acceptable.
                        let _ = if op % 2 == 0 {
                            replica.join(ServerId::new(id))
                        } else {
                            replica.leave(ServerId::new(id))
                        };
                        // Contended id both replicas fight over.
                        let _ = if op % 3 == 0 {
                            replica.join(ServerId::new(50))
                        } else {
                            replica.leave(ServerId::new(50))
                        };
                        std::thread::yield_now();
                    }
                });
            }
            // A lookup client streams throughout the churn+gossip race.
            let a = &a;
            scope.spawn(move || {
                for k in 0..400u64 {
                    if let Ok(ticket) = a.submit(RequestKey::new(k)) {
                        let response = ticket.wait();
                        assert!(
                            response.result.is_ok(),
                            "base members 0..8 never leave, pool can't be empty"
                        );
                    }
                }
            });
        });

        // Churn stopped; the schedulers must now converge the set.
        let deadline = Instant::now() + Duration::from_secs(30);
        while !converged(&[&a, &b]) {
            assert!(
                Instant::now() < deadline,
                "soak round {round}: replicas failed to converge after churn stopped"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        let node_a = handle_a.stop();
        let node_b = handle_b.stop();
        // Stopping drains in-flight messages; the set must still agree.
        assert!(converged(&[&a, &b]), "soak round {round}: diverged during shutdown");
        assert_byte_identical_signatures(&[&a, &b]);
        // Base members survived every race.
        let members = a.member_ids();
        for id in 0..8u64 {
            assert!(members.contains(&ServerId::new(id)), "base member {id} lost");
        }
        let rounds = node_a.metrics().rounds + node_b.metrics().rounds;
        assert!(rounds >= 2, "schedulers barely ran ({rounds} rounds)");
    }
}
