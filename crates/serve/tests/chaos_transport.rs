//! Property suite for the chaos transport decorator: under arbitrary
//! seeded fault plans and arbitrary traffic scripts, the fault counters
//! always **reconcile** (`offered + duplicated = delivered + dropped +
//! in_flight`) and a replay from the same seed reproduces the **identical
//! fault sequence** — same deliveries, same order, same counters.

use std::sync::Arc;

use hdhash_serve::chaos::{ChaosEndpoint, ChaosNetwork, FaultPlan, LinkFaults};
use hdhash_serve::gossip::GossipMessage;
use hdhash_serve::transport::{ReplicaId, Transport};
use proptest::prelude::*;

const REPLICAS: u64 = 3;

/// One scripted traffic step: a directed send, optionally followed by a
/// round advance (which releases held messages).
#[derive(Debug, Clone)]
struct Step {
    from: u64,
    to_offset: u64,
    advance: bool,
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        (0..REPLICAS, 0..REPLICAS - 1, any::<bool>())
            .prop_map(|(from, to_offset, advance)| Step { from, to_offset, advance }),
        1..48,
    )
}

fn fault_plans() -> impl Strategy<Value = FaultPlan> {
    (
        any::<u64>(),
        0u16..600,
        0u16..400,
        0u16..400,
        1u64..4,
        0u16..400,
        any::<bool>(),
    )
        .prop_map(|(seed, drop, dup, delay, max_delay, reorder, partition)| {
            let mut plan = FaultPlan::new(seed).with_default_link(LinkFaults {
                drop_per_mille: drop,
                duplicate_per_mille: dup,
                delay_per_mille: delay,
                max_delay_rounds: max_delay,
                reorder_per_mille: reorder,
                ..LinkFaults::RELIABLE
            });
            if partition {
                plan = plan.with_partition_one_way(ReplicaId::new(0), ReplicaId::new(1), 2..6);
            }
            plan
        })
}

/// Replays `script` over a fresh network running `plan`; returns the
/// delivery log (receiver, sender, message round, chaos round) and the
/// final stats. Drains deterministically: every endpoint after each step,
/// again after each advance, and a final flush via `heal`.
fn run_script(
    plan: FaultPlan,
    script: &[Step],
) -> (Vec<(u64, u64, u64, u64)>, hdhash_serve::ChaosStats) {
    let net = ChaosNetwork::new(plan);
    let endpoints: Vec<ChaosEndpoint> =
        (0..REPLICAS).map(|i| net.endpoint(ReplicaId::new(i))).collect();
    let mut log = Vec::new();
    let drain = |endpoints: &[ChaosEndpoint], log: &mut Vec<(u64, u64, u64, u64)>,
                 net: &Arc<ChaosNetwork>| {
        for (i, endpoint) in endpoints.iter().enumerate() {
            while let Some(env) = endpoint.try_recv() {
                let GossipMessage::Advert { round, .. } = env.message else {
                    panic!("script sends only adverts");
                };
                log.push((i as u64, env.from.get(), round, net.round()));
            }
        }
    };
    for (ordinal, step) in script.iter().enumerate() {
        let to = ReplicaId::new((step.from + 1 + step.to_offset) % REPLICAS);
        let message = GossipMessage::Advert {
            round: ordinal as u64,
            signatures: Vec::new(),
            ack: None,
        };
        endpoints[step.from as usize].send(to, message).expect("registered peer");
        assert!(net.stats().reconciles(), "mid-script reconcile failure");
        drain(&endpoints, &mut log, &net);
        if step.advance {
            net.advance_round();
            drain(&endpoints, &mut log, &net);
        }
    }
    // Flush everything still parked so the log captures the whole run.
    net.heal();
    drain(&endpoints, &mut log, &net);
    (log, net.stats())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The conservation identity holds at every observation point of any
    /// scripted run, and after the final flush nothing is left in flight.
    #[test]
    fn counters_reconcile_under_arbitrary_plans(plan in fault_plans(), script in steps()) {
        let offered = script.len() as u64;
        let (log, stats) = run_script(plan, &script);
        prop_assert!(stats.reconciles(), "final stats must reconcile: {:?}", stats);
        prop_assert_eq!(stats.offered, offered);
        prop_assert_eq!(stats.in_flight, 0, "heal flushed the held queue");
        prop_assert_eq!(
            stats.delivered,
            log.len() as u64,
            "every delivered message was observed exactly once"
        );
        prop_assert_eq!(
            stats.offered + stats.duplicated,
            stats.delivered + stats.dropped_total()
        );
    }

    /// Determinism: the same plan (same seed) over the same script yields
    /// the identical delivery log and identical counters.
    #[test]
    fn same_seed_replays_identically(plan in fault_plans(), script in steps()) {
        let first = run_script(plan.clone(), &script);
        let second = run_script(plan, &script);
        prop_assert_eq!(first.0, second.0, "delivery sequences diverged");
        prop_assert_eq!(first.1, second.1, "fault counters diverged");
    }

    /// A different seed over the same script is allowed to differ — and
    /// with any fault probability present it almost always does; what must
    /// never differ is the conservation identity.
    #[test]
    fn different_seeds_still_reconcile(plan in fault_plans(), script in steps()) {
        let mut other = plan.clone();
        other.seed = plan.seed.wrapping_add(1);
        let (_, a) = run_script(plan, &script);
        let (_, b) = run_script(other, &script);
        prop_assert!(a.reconciles());
        prop_assert!(b.reconciles());
        prop_assert_eq!(a.offered, b.offered, "offered counts are script-driven");
    }
}
