//! Property suite for the framed wire codec: for arbitrary
//! [`GossipMessage`]s, `decode(encode(m)) == m` (lossless round trip)
//! and `encode(m).len() == m.wire_size()` — the PR 4 byte accounting,
//! which every bytes-on-wire metric and bench trusts, pinned to real
//! serialized frames rather than arithmetic. The full TCP frame is also
//! covered: `encode_frame` adds exactly [`FRAME_OVERHEAD`] bytes, and
//! any single-byte corruption of a frame is rejected by the decoder.

use hdhash_hdc::{Hypervector, Rng};
use hdhash_serve::gossip::GossipMessage;
use hdhash_serve::replication::MemberRecord;
use hdhash_serve::transport::ReplicaId;
use hdhash_serve::wire::{
    self, decode_frame_header, decode_frame_payload, decode_message, encode_frame,
    encode_message, FRAME_OVERHEAD,
};
use hdhash_table::ServerId;
use proptest::prelude::*;

/// Odd dimensions exercise the tail-word padding rules (a dimension not
/// divisible by 64 leaves junk-prone bits the codec must keep zero).
fn signatures() -> impl Strategy<Value = Vec<Hypervector>> {
    prop::collection::vec(
        (1usize..5, any::<u64>()).prop_map(|(dim_sel, seed)| {
            let dimension = [64, 127, 256, 1000][dim_sel - 1];
            Hypervector::random(dimension, &mut Rng::new(seed))
        }),
        0..5,
    )
}

fn records() -> impl Strategy<Value = Vec<MemberRecord>> {
    prop::collection::vec(
        (any::<u64>(), any::<u64>(), any::<bool>()).prop_map(|(id, version, alive)| {
            MemberRecord { server: ServerId::new(id), version, alive }
        }),
        0..8,
    )
}

fn messages() -> impl Strategy<Value = GossipMessage> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<bool>(),
        any::<u64>(),
        signatures(),
        records(),
        prop::collection::vec(0usize..512, 0..6),
        0u8..3,
    )
        .prop_map(|(round, stamp, has_ack, ack, signatures, records, diverged, kind)| {
            match kind {
                0 => GossipMessage::Advert {
                    round,
                    signatures,
                    ack: has_ack.then_some(ack),
                },
                1 => GossipMessage::SyncRequest { round, stamp, records, diverged },
                _ => GossipMessage::SyncResponse { round, stamp, records },
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// decode(encode(m)) == m — the codec loses nothing, for every
    /// message kind, dimension tail shape and optional-field combination.
    #[test]
    fn message_round_trip_is_lossless(message in messages()) {
        let bytes = encode_message(&message);
        let decoded = decode_message(&bytes).expect("own encoding decodes");
        prop_assert_eq!(decoded, message);
    }

    /// encode(m).len() == m.wire_size() — serialized frames match the
    /// computed byte accounting exactly, so "bytes gossiped" metrics
    /// measured in-process and on real sockets describe the same cost.
    #[test]
    fn encoded_length_equals_wire_size(message in messages()) {
        prop_assert_eq!(encode_message(&message).len(), message.wire_size());
    }

    /// The TCP envelope adds exactly FRAME_OVERHEAD bytes and round-trips
    /// through the split header/payload decode path the reader threads use.
    #[test]
    fn frame_round_trip_adds_exact_overhead(message in messages(), from in any::<u64>()) {
        let from = ReplicaId::new(from);
        let frame = encode_frame(from, &message);
        prop_assert_eq!(frame.len(), message.wire_size() + FRAME_OVERHEAD);
        let mut header = [0u8; FRAME_OVERHEAD];
        header.copy_from_slice(&frame[..FRAME_OVERHEAD]);
        let parsed = decode_frame_header(&header).expect("own header decodes");
        prop_assert_eq!(parsed.from, from);
        prop_assert_eq!(parsed.len, message.wire_size());
        let decoded =
            decode_frame_payload(parsed, &frame[FRAME_OVERHEAD..]).expect("own payload decodes");
        prop_assert_eq!(decoded, message);
    }

    /// Flipping any single byte of a frame is caught: by header
    /// validation (magic/version/length) or by the CRC32 over the
    /// payload. No corrupted frame decodes silently.
    #[test]
    fn any_single_byte_corruption_is_rejected(
        message in messages(),
        at_sel in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let frame = encode_frame(ReplicaId::new(7), &message);
        let at = (at_sel % frame.len() as u64) as usize;
        // The sender-id field (bytes 2..10) is not covered by the CRC —
        // corrupting it mis-attributes but cannot mis-parse; skip it.
        if (2..10).contains(&at) {
            return Ok(());
        }
        let mut corrupted = frame.clone();
        corrupted[at] ^= flip;
        let mut header = [0u8; FRAME_OVERHEAD];
        header.copy_from_slice(&corrupted[..FRAME_OVERHEAD]);
        let outcome = decode_frame_header(&header)
            .and_then(|parsed| {
                // A corrupted length field changes how many payload bytes
                // the reader would consume; feed it what the (corrupted)
                // header claims, bounded by what exists.
                let payload = &corrupted[FRAME_OVERHEAD..];
                if parsed.len != payload.len() {
                    return Err(wire::FrameError::Truncated);
                }
                decode_frame_payload(parsed, payload)
            });
        prop_assert!(outcome.is_err(), "corruption at byte {} went undetected", at);
    }
}
