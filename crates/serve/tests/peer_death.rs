//! Permanent peer death, end to end: a peer that stops participating and
//! never comes back must walk the full detector ladder
//! (Alive → Suspect → Dead at the configured round boundaries), its
//! in-flight sync exchange must drain through bounded retries to
//! `sync_abandoned` (never retrying forever), and once Dead it must stop
//! consuming fanout slots — the only traffic it sees afterwards is the
//! probe advert every `probe_period`-th round that would notice a
//! recovery. The survivors stay converged with each other throughout.

use std::sync::Arc;
use std::time::Duration;

use hdhash_serve::gossip::{converged, GossipConfig, GossipMessage, GossipNode, PeerHealth};
use hdhash_serve::replication::ReplicatedEngine;
use hdhash_serve::transport::{InProcessEndpoint, InProcessNetwork, ReplicaId, Transport};
use hdhash_serve::ServeConfig;
use hdhash_table::ServerId;

fn serve_config(seed: u64) -> ServeConfig {
    ServeConfig {
        shards: 2,
        workers: 1,
        batch_capacity: 16,
        queue_capacity: 256,
        dimension: 1024,
        codebook_size: 32,
        seed,
        scheduler: hdhash_serve::SchedulerKind::default(),
        engine: Default::default(),
        trace: Default::default(),
    }
}

/// Tight detector/retry windows so the whole ladder fits in a short
/// deterministic round script.
fn gossip_config() -> GossipConfig {
    GossipConfig {
        period: Duration::from_millis(5),
        fanout: 3,
        suspect_after: 2,
        dead_after: 5,
        probe_period: 4,
        sync_retry_rounds: 2,
        sync_retry_cap: 2,
        ..GossipConfig::default()
    }
}

struct DeadPeerCluster {
    network: Arc<InProcessNetwork>,
    replicas: Vec<Arc<ReplicatedEngine>>,
    nodes: Vec<GossipNode<InProcessEndpoint>>,
}

/// Three replicas; replica 2 holds extra members (so its one advert is
/// visibly divergent and provokes a sync exchange), then goes silent
/// forever after round 1.
fn cluster() -> DeadPeerCluster {
    let network = InProcessNetwork::new();
    let peers: Vec<ReplicaId> = (0..3).map(ReplicaId::new).collect();
    let mut replicas = Vec::new();
    let mut nodes = Vec::new();
    for i in 0..3u64 {
        let id = ReplicaId::new(i);
        let replica =
            Arc::new(ReplicatedEngine::new(id, serve_config(0xDEAD)).expect("valid config"));
        for server in 0..10u64 {
            replica.join(ServerId::new(server)).expect("fresh");
        }
        if i == 2 {
            for server in 20..24u64 {
                replica.join(ServerId::new(server)).expect("fresh");
            }
        }
        nodes.push(GossipNode::new(
            Arc::clone(&replica),
            network.endpoint(id),
            peers.clone(),
            gossip_config(),
        ));
        replicas.push(replica);
    }
    DeadPeerCluster { network, replicas, nodes }
}

#[test]
fn silent_peer_walks_the_detector_ladder_and_syncs_drain_to_abandoned() {
    let DeadPeerCluster { network, replicas, nodes } = cluster();
    let config = gossip_config();
    let dead_peer = ReplicaId::new(2);

    // Round 1: everyone speaks once. Replicas 0 and 1 hear replica 2's
    // divergent advert and open sync exchanges it will never answer.
    for node in &nodes {
        node.tick();
    }
    nodes[0].pump();
    nodes[1].pump();
    // Replica 2 never ticks or pumps again.
    assert_eq!(nodes[0].peer_health(dead_peer), PeerHealth::Alive, "heard this round");
    assert!(
        nodes[0].metrics().divergence_detections >= 1,
        "replica 2's advert must register as divergent"
    );

    // Rounds 2..=20: survivors keep gossiping; the detector must walk
    // Alive (heard at round 1, elapsed ≤ suspect_after) → Suspect
    // (elapsed ≤ dead_after) → Dead, on exact boundaries.
    for round in 2..=20u64 {
        nodes[0].tick();
        nodes[1].tick();
        nodes[0].pump();
        nodes[1].pump();
        let elapsed = round - 1;
        let expected = if elapsed <= config.suspect_after {
            PeerHealth::Alive
        } else if elapsed <= config.dead_after {
            PeerHealth::Suspect
        } else {
            PeerHealth::Dead
        };
        for node in &nodes[..2] {
            assert_eq!(
                node.peer_health(dead_peer),
                expected,
                "round {round}: elapsed {elapsed} must read {expected:?}"
            );
        }
    }

    // The sync exchanges opened at round 1 must have been retried (with
    // backoff) and then abandoned — bounded, never infinite.
    for (i, node) in nodes[..2].iter().enumerate() {
        let metrics = node.metrics();
        assert!(
            metrics.sync_retries >= 1,
            "node {i}: the unanswered sync was never retransmitted"
        );
        assert_eq!(
            metrics.sync_abandoned, 1,
            "node {i}: the retry chain must drain to exactly one abandonment"
        );
        assert!(metrics.retry_bytes > 0, "node {i}: retransmissions must be accounted");
        assert_eq!(metrics.peers_dead, 1, "node {i}: detector must report one dead peer");
    }

    // Survivors stayed converged with each other, and nothing of replica
    // 2's unexchanged extra members leaked across (adverts carry
    // signatures, not records).
    assert!(converged(&[&replicas[0], &replicas[1]]), "survivors diverged");
    assert!(
        !replicas[0].member_ids().contains(&ServerId::new(20)),
        "no record exchange happened, so replica 2's extras must not appear"
    );

    // Dead peers stop consuming fanout slots: steal replica 2's mailbox
    // (re-registering an id replaces it) and observe exactly the probe
    // adverts — one redirected slot every probe_period-th round per
    // survivor — and nothing else.
    let graveyard = network.endpoint(dead_peer);
    let probes_before: u64 = nodes[..2].iter().map(|n| n.metrics().probes_sent).sum();
    for _ in 21..=40u64 {
        nodes[0].tick();
        nodes[1].tick();
        nodes[0].pump();
        nodes[1].pump();
    }
    let probes_delta: u64 =
        nodes[..2].iter().map(|n| n.metrics().probes_sent).sum::<u64>() - probes_before;
    let mut delivered = 0u64;
    while let Some(envelope) = graveyard.try_recv() {
        assert!(
            matches!(envelope.message, GossipMessage::Advert { .. }),
            "a dead peer may only receive probe adverts, got {:?}",
            envelope.message
        );
        delivered += 1;
    }
    assert!(probes_delta >= 1, "probe rounds must keep testing the dead peer");
    assert_eq!(
        delivered, probes_delta,
        "every message to a dead peer must be a redirected probe slot"
    );
}
