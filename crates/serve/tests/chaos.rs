//! The chaos suite: replica gossip over a hostile, fault-injected
//! network.
//!
//! Every scenario is fully deterministic from the seed printed at the top
//! of its output (`chaos seed: 0x…`) — the fault plan, the gossip target
//! selection, and the retry jitter are all pure functions of seeds and
//! round ordinals, so a failure replays bit-for-bit.
//!
//! The two invariants this suite pins:
//!
//! * **Convergence after heal** — whatever the fault plan did (drops up
//!   to 50%, bounded delay, duplication, reordering, asymmetric
//!   partitions, crash/restart), once the network heals the replica set
//!   reaches byte-identical per-shard membership signatures within a
//!   bounded number of rounds.
//! * **No resurrection** — tombstone GC is gated on the *full* peer set
//!   (dead or partitioned peers included), so a removed member never
//!   reappears when a stale replica rejoins, no matter how long its acks
//!   were delayed.

use std::sync::Arc;
use std::time::Duration;

use hdhash_serve::chaos::{ChaosEndpoint, ChaosNetwork, FaultPlan, LinkFaults};
use hdhash_serve::gossip::{converged, GossipConfig, GossipNode, PeerHealth};
use hdhash_serve::replication::ReplicatedEngine;
use hdhash_serve::transport::ReplicaId;
use hdhash_serve::ServeConfig;
use hdhash_table::ServerId;

fn serve_config(shards: usize, seed: u64) -> ServeConfig {
    ServeConfig {
        shards,
        workers: 1,
        batch_capacity: 16,
        queue_capacity: 512,
        dimension: 2048,
        codebook_size: 64,
        seed,
        scheduler: hdhash_serve::SchedulerKind::default(),
        engine: Default::default(),
        trace: Default::default(),
    }
}

/// A replica set on a chaos network: each engine paired with its node.
type ChaosSet = Vec<(Arc<ReplicatedEngine>, GossipNode<ChaosEndpoint>)>;

/// Builds `n` replicas on one chaos network executing `plan`, full-mesh
/// peer lists.
fn chaos_set(n: u64, shards: usize, engine_seed: u64, plan: FaultPlan) -> (Arc<ChaosNetwork>, ChaosSet) {
    println!("chaos seed: {:#x}", plan.seed);
    let net = ChaosNetwork::new(plan);
    let peers: Vec<ReplicaId> = (0..n).map(ReplicaId::new).collect();
    let set = (0..n)
        .map(|i| {
            let id = ReplicaId::new(i);
            // Every replica shares the engine seed: identical codebook
            // geometry is what makes converged memberships byte-identical.
            let replica = Arc::new(
                ReplicatedEngine::new(id, serve_config(shards, engine_seed))
                    .expect("valid config"),
            );
            let node = GossipNode::new(
                Arc::clone(&replica),
                net.endpoint(id),
                peers.clone(),
                GossipConfig { period: Duration::from_millis(50), ..GossipConfig::default() },
            );
            (replica, node)
        })
        .collect();
    (net, set)
}

/// One chaos round: the virtual clock advances (releasing held traffic),
/// every node adverts, then the set pumps until the mailboxes drain.
/// Delayed/reordered messages stay parked in the chaos layer's held queue
/// until a later round.
fn chaos_round(net: &ChaosNetwork, nodes: &[GossipNode<ChaosEndpoint>]) {
    net.advance_round();
    for node in nodes {
        node.tick();
    }
    loop {
        let moved: usize = nodes.iter().map(GossipNode::pump).sum();
        if moved == 0 {
            break;
        }
    }
}

/// Drives chaos rounds until the set converges or `max` rounds pass.
fn rounds_to_converge(
    net: &ChaosNetwork,
    nodes: &[GossipNode<ChaosEndpoint>],
    max: usize,
) -> Option<usize> {
    let replicas: Vec<&ReplicatedEngine> = nodes.iter().map(GossipNode::replica).collect();
    if converged(&replicas) {
        return Some(0);
    }
    for round in 1..=max {
        chaos_round(net, nodes);
        if converged(&replicas) {
            return Some(round);
        }
    }
    None
}

fn assert_byte_identical_signatures(replicas: &[&ReplicatedEngine]) {
    let reference = replicas[0].shard_signatures();
    let members = replicas[0].member_ids();
    for replica in &replicas[1..] {
        assert_eq!(replica.member_ids(), members, "memberships diverged");
        let signatures = replica.shard_signatures();
        assert_eq!(signatures.len(), reference.len());
        for (shard, (ours, theirs)) in reference.iter().zip(&signatures).enumerate() {
            assert_eq!(
                ours.as_words(),
                theirs.as_words(),
                "shard {shard} signatures differ at the word level"
            );
        }
    }
}

/// Seeds divergent histories across the set: disjoint joins per replica
/// plus one removal, so reconciliation has real work on every link.
fn diverge(set: &[(Arc<ReplicatedEngine>, GossipNode<ChaosEndpoint>)]) {
    for (i, (replica, _)) in set.iter().enumerate() {
        for s in 0..3u64 {
            replica.join(ServerId::new(10 * i as u64 + s)).expect("fresh");
        }
    }
    set[0].0.leave(ServerId::new(1)).expect("present");
}

/// The expected converged membership after [`diverge`]: the union of all
/// joins minus the tombstoned member.
fn diverged_want(n: u64) -> Vec<ServerId> {
    (0..n)
        .flat_map(|i| (0..3u64).map(move |s| 10 * i + s))
        .filter(|&id| id != 1)
        .map(ServerId::new)
        .collect()
}

/// The headline grid: drop rate × replica count, each run under random
/// loss (plus duplication and reordering at the heaviest tier) for a
/// fixed fault window, then healed. Convergence after heal must be
/// bounded at every point — including 50% loss.
#[test]
fn convergence_after_heal_across_drop_rate_grid() {
    for &drop in &[100u16, 250, 500] {
        for &n in &[2u64, 3, 5] {
            let seed = 0xC4A0_5000 + u64::from(drop) * 100 + n;
            let faults = LinkFaults {
                drop_per_mille: drop,
                duplicate_per_mille: if drop == 500 { 100 } else { 0 },
                reorder_per_mille: if drop == 500 { 100 } else { 0 },
                ..LinkFaults::RELIABLE
            };
            let plan = FaultPlan::new(seed).with_default_link(faults);
            let (net, set) = chaos_set(n, 2, 0x11_000 + seed, plan);
            diverge(&set);
            let nodes: Vec<GossipNode<ChaosEndpoint>> =
                set.into_iter().map(|(_, node)| node).collect();
            // The fault window: the set may or may not converge under
            // loss — no assertion here, the faults are the point.
            for _ in 0..10 {
                chaos_round(&net, &nodes);
            }
            net.heal();
            let rounds = rounds_to_converge(&net, &nodes, 48).unwrap_or_else(|| {
                panic!("drop={drop}‰ n={n} failed to converge after heal (seed {seed:#x})")
            });
            assert!(
                rounds <= 48,
                "drop={drop}‰ n={n}: {rounds} rounds after heal"
            );
            let replicas: Vec<&ReplicatedEngine> =
                nodes.iter().map(GossipNode::replica).collect();
            assert_byte_identical_signatures(&replicas);
            assert_eq!(replicas[0].member_ids(), diverged_want(n), "drop={drop}‰ n={n}");
            let stats = net.stats();
            assert!(stats.reconciles(), "drop={drop}‰ n={n}: {stats:?}");
            if drop >= 250 {
                assert!(stats.dropped_random > 0, "the lossy plan actually dropped");
            }
        }
    }
}

/// An asymmetric partition (0 → 1 severed, 1 → 0 alive) layered over 50%
/// random loss: the hardest scenario the issue names. The detector must
/// steer traffic, retries must bound the bleeding, and heal must still
/// converge the set.
#[test]
fn asymmetric_partition_under_heavy_loss_converges_after_heal() {
    let seed = 0xA57_EC7;
    let r0 = ReplicaId::new(0);
    let r1 = ReplicaId::new(1);
    let plan = FaultPlan::new(seed)
        .with_default_link(LinkFaults::lossy(500))
        .with_partition_one_way(r0, r1, 2..14);
    let (net, set) = chaos_set(3, 2, 0x22_000, plan);
    diverge(&set);
    let nodes: Vec<GossipNode<ChaosEndpoint>> =
        set.into_iter().map(|(_, node)| node).collect();
    for _ in 0..16 {
        chaos_round(&net, &nodes);
    }
    let mid_stats = net.stats();
    assert!(mid_stats.dropped_partition > 0, "the one-way partition fired");
    assert!(mid_stats.dropped_random > 0, "the loss plan fired");
    net.heal();
    let rounds = rounds_to_converge(&net, &nodes, 48)
        .unwrap_or_else(|| panic!("failed to converge after heal (seed {seed:#x})"));
    println!("asymmetric partition healed in {rounds} rounds");
    let replicas: Vec<&ReplicatedEngine> = nodes.iter().map(GossipNode::replica).collect();
    assert_byte_identical_signatures(&replicas);
    assert_eq!(replicas[0].member_ids(), diverged_want(3));
    assert!(net.stats().reconciles());
    // The sync retry machinery actually ran under this much loss.
    let retries: u64 = nodes.iter().map(|n| n.metrics().sync_retries).sum();
    let retry_bytes: u64 = nodes.iter().map(|n| n.metrics().retry_bytes).sum();
    assert!(retries > 0, "50% loss without a single sync retry");
    assert!(retry_bytes > 0, "retries moved bytes");
}

/// No resurrection: a member removed while a replica is partitioned away
/// must stay removed after the partition heals. The tombstone's GC is
/// gated on the isolated replica's ack, so the stale "alive" record it
/// still holds loses the LWW merge instead of resurrecting the member.
#[test]
fn removed_member_stays_dead_across_a_partition() {
    let seed = 0x10_5EED;
    let r2 = ReplicaId::new(2);
    // Rounds 0..5 are clean (initial convergence); replica 2 is then cut
    // off from both peers for 15 rounds — long enough for the detector to
    // declare it Dead and for GC to fire if it (wrongly) ignored dead
    // peers.
    let plan = FaultPlan::new(seed)
        .with_partition(r2, ReplicaId::new(0), 5..20)
        .with_partition(r2, ReplicaId::new(1), 5..20);
    let (net, set) = chaos_set(3, 2, 0x33_000, plan);
    // Shared base membership, installed on replica 0 and gossiped out.
    for id in 0..6u64 {
        set[0].0.join(ServerId::new(id)).expect("fresh");
    }
    let nodes: Vec<GossipNode<ChaosEndpoint>> =
        set.into_iter().map(|(_, node)| node).collect();
    let replicas: Vec<&ReplicatedEngine> = nodes.iter().map(GossipNode::replica).collect();
    let cleanly = rounds_to_converge(&net, &nodes, 5).expect("clean rounds converge");
    assert!(cleanly <= 5, "pre-partition convergence took {cleanly}");
    assert_eq!(replicas[2].member_ids().len(), 6, "replica 2 saw the base set");

    // Partition opens at round 5; remove member 3 while replica 2 is
    // unreachable.
    while net.round() < 6 {
        chaos_round(&net, &nodes);
    }
    replicas[0].leave(ServerId::new(3)).expect("present");
    for _ in 0..12 {
        chaos_round(&net, &nodes);
    }
    // Mid-partition checks: the connected majority agrees on the removal,
    // the isolated replica still has the stale member, and the detector
    // on a connected node reads the isolated one as Suspect or Dead.
    assert!(!replicas[0].member_ids().contains(&ServerId::new(3)));
    assert!(!replicas[1].member_ids().contains(&ServerId::new(3)));
    assert!(
        replicas[2].member_ids().contains(&ServerId::new(3)),
        "isolation kept the stale record alive on replica 2"
    );
    assert_ne!(
        nodes[0].peer_health(r2),
        PeerHealth::Alive,
        "the detector noticed the silence"
    );

    // Heal and converge: the stale record must lose, everywhere.
    net.heal();
    let rounds = rounds_to_converge(&net, &nodes, 48)
        .unwrap_or_else(|| panic!("failed to converge after heal (seed {seed:#x})"));
    println!("partition healed, converged in {rounds} rounds");
    assert_byte_identical_signatures(&replicas);
    assert!(
        !replicas.iter().any(|r| r.member_ids().contains(&ServerId::new(3))),
        "resurrection: removed member came back after the partition healed"
    );
    assert!(net.stats().reconciles());
}

/// A replica crashes (process pause: sends and receipt blackholed, inbox
/// purged on poll) and restarts with stale in-memory state; membership
/// changes applied during the outage must reach it afterwards.
#[test]
fn crashed_replica_catches_up_after_restart() {
    let seed = 0xCA_5CADE;
    let plan = FaultPlan::new(seed).with_crash(ReplicaId::new(1), 2..10);
    let (net, set) = chaos_set(3, 2, 0x44_000, plan);
    for id in 0..4u64 {
        set[0].0.join(ServerId::new(id)).expect("fresh");
    }
    let nodes: Vec<GossipNode<ChaosEndpoint>> =
        set.into_iter().map(|(_, node)| node).collect();
    let replicas: Vec<&ReplicatedEngine> = nodes.iter().map(GossipNode::replica).collect();
    // Rounds 0..2 clean; then the crash window opens.
    chaos_round(&net, &nodes);
    chaos_round(&net, &nodes);
    assert!(net.is_crashed(ReplicaId::new(1)));
    // Changes land while replica 1 is down.
    replicas[0].join(ServerId::new(40)).expect("fresh");
    replicas[0].leave(ServerId::new(2)).expect("present");
    for _ in 0..8 {
        chaos_round(&net, &nodes);
    }
    assert!(!net.is_crashed(ReplicaId::new(1)), "crash window closed");
    let rounds = rounds_to_converge(&net, &nodes, 32)
        .unwrap_or_else(|| panic!("restarted replica failed to catch up (seed {seed:#x})"));
    println!("restart caught up in {rounds} rounds");
    assert_byte_identical_signatures(&replicas);
    let members = replicas[1].member_ids();
    assert!(members.contains(&ServerId::new(40)), "missed the join during its crash");
    assert!(!members.contains(&ServerId::new(2)), "missed the leave during its crash");
    let stats = net.stats();
    assert!(stats.dropped_crash > 0, "the crash window blackholed traffic");
    assert!(stats.reconciles());
}

/// Determinism end to end: the same seed drives the same fault sequence,
/// the same gossip traffic, and the same final state — the property that
/// makes every failure in this suite replayable from its printed seed.
#[test]
fn same_seed_replays_the_same_scenario() {
    let run = || {
        let plan = FaultPlan::new(0xD37_E2A).with_default_link(LinkFaults {
            drop_per_mille: 300,
            duplicate_per_mille: 100,
            delay_per_mille: 200,
            max_delay_rounds: 2,
            reorder_per_mille: 100,
            ..LinkFaults::RELIABLE
        });
        let (net, set) = chaos_set(3, 2, 0x55_000, plan);
        diverge(&set);
        let nodes: Vec<GossipNode<ChaosEndpoint>> =
            set.into_iter().map(|(_, node)| node).collect();
        for _ in 0..12 {
            chaos_round(&net, &nodes);
        }
        net.heal();
        let rounds = rounds_to_converge(&net, &nodes, 48).expect("converges after heal");
        let signatures: Vec<_> =
            nodes.iter().flat_map(|n| n.replica().shard_signatures()).collect();
        let metrics: Vec<(u64, u64, u64)> = nodes
            .iter()
            .map(|n| {
                let m = n.metrics();
                (m.adverts_sent, m.syncs_sent, m.sync_retries)
            })
            .collect();
        (net.stats(), rounds, signatures, metrics)
    };
    let first = run();
    let second = run();
    assert_eq!(first.0, second.0, "fault counters diverged between replays");
    assert_eq!(first.1, second.1, "convergence rounds diverged");
    assert_eq!(first.2, second.2, "final signatures diverged");
    assert_eq!(first.3, second.3, "gossip traffic diverged");
}

/// Randomized soak: a fresh seed each run (printed for replay; pin it
/// with `CHAOS_SEED=0x…`). CI runs this a handful of times — over weeks
/// of CI history the soak walks a seed space no fixed grid covers.
#[test]
fn randomized_soak_converges_after_heal() {
    let seed = match std::env::var("CHAOS_SEED") {
        Ok(s) => {
            let s = s.trim().trim_start_matches("0x").to_owned();
            u64::from_str_radix(&s, 16).expect("CHAOS_SEED is hex")
        }
        Err(_) => {
            // Seed from wall time; the printed value is the replay handle.
            let now = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock after epoch");
            now.as_nanos() as u64
        }
    };
    println!("soak replay: CHAOS_SEED={seed:#x} cargo test -p hdhash-serve --test chaos randomized_soak");
    // Derive fault intensities from the seed itself, spanning mild to
    // hostile (up to 50% drop, delays, duplication, one random one-way
    // partition).
    let drop = 100 + (seed % 401) as u16; // 100..=500 ‰
    let n = 2 + (seed / 7) % 3; // 2..=4 replicas
    let victim = ReplicaId::new((seed / 11) % n);
    let other = ReplicaId::new(((seed / 11) % n + 1) % n);
    let plan = FaultPlan::new(seed)
        .with_default_link(LinkFaults {
            drop_per_mille: drop,
            duplicate_per_mille: 50,
            delay_per_mille: 150,
            max_delay_rounds: 3,
            reorder_per_mille: 50,
            ..LinkFaults::RELIABLE
        })
        .with_partition_one_way(victim, other, 3..9);
    let (net, set) = chaos_set(n, 2, seed ^ 0x66_000, plan);
    diverge(&set);
    let nodes: Vec<GossipNode<ChaosEndpoint>> =
        set.into_iter().map(|(_, node)| node).collect();
    for _ in 0..12 {
        chaos_round(&net, &nodes);
    }
    net.heal();
    let rounds = rounds_to_converge(&net, &nodes, 64).unwrap_or_else(|| {
        panic!("soak failed to converge after heal — replay with CHAOS_SEED={seed:#x}")
    });
    println!("soak converged in {rounds} rounds (drop={drop}‰ n={n})");
    let replicas: Vec<&ReplicatedEngine> = nodes.iter().map(GossipNode::replica).collect();
    assert_byte_identical_signatures(&replicas);
    assert_eq!(replicas[0].member_ids(), diverged_want(n));
    assert!(net.stats().reconciles(), "soak counters must reconcile: {:?}", net.stats());
}

/// Baseline: a fault-free plan through the full chaos stack behaves like
/// the plain in-process transport — quiescent pairs converge in a couple
/// of rounds, with zero retries and zero drops.
#[test]
fn reliable_plan_full_stack_is_transparent() {
    let plan = FaultPlan::new(1);
    let (net, set) = chaos_set(2, 2, 0x99_000, plan);
    diverge(&set);
    let nodes: Vec<GossipNode<ChaosEndpoint>> =
        set.into_iter().map(|(_, node)| node).collect();
    let rounds = rounds_to_converge(&net, &nodes, 8).expect("reliable chaos converges");
    assert!(rounds <= 2, "quiescent pair took {rounds} rounds through the chaos stack");
    let replicas: Vec<&ReplicatedEngine> = nodes.iter().map(GossipNode::replica).collect();
    assert_byte_identical_signatures(&replicas);
    assert_eq!(replicas[0].member_ids(), diverged_want(2));
    let stats = net.stats();
    assert_eq!(stats.dropped_total(), 0);
    assert_eq!(stats.in_flight, 0);
    assert!(stats.reconciles());
    assert_eq!(nodes.iter().map(|n| n.metrics().sync_retries).sum::<u64>(), 0);
}
