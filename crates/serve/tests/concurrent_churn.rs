//! Concurrent churn: lookups from four client threads racing a churn
//! thread that joins/leaves members through the epoch path.
//!
//! The property under test is the serving layer's consistency contract:
//! **every response routes to a server that was live in the epoch that
//! served it** — no torn reads, no response computed against a
//! half-applied membership. The epoch log is reconstructible because every
//! publication produces exactly one receipt; the validator replays the
//! receipts and checks each `(shard, epoch, server)` triple against the
//! membership live at that exact epoch.
//!
//! CI runs this with `--test-threads=1`; the inner `ROUNDS` loop plus the
//! driver-side repetition give the "100 consecutive runs" soak the
//! acceptance criteria ask for.

use std::collections::{HashMap, HashSet};

use hdhash_serve::{ServeConfig, ServeEngine, ShardReceipt};
use hdhash_table::{RequestKey, ServerId, TableError};

/// Full engine rounds per test execution (each round builds a fresh
/// engine, races clients against churn, validates every response).
const ROUNDS: usize = 4;
/// Lookup clients racing the churn thread.
const CLIENTS: usize = 4;
/// Lookups per client per round.
const LOOKUPS_PER_CLIENT: usize = 200;
/// Membership changes the churn thread applies per round.
const CHURN_OPS: usize = 30;

fn config(seed: u64) -> ServeConfig {
    ServeConfig {
        shards: 2,
        workers: 4,
        batch_capacity: 16,
        queue_capacity: 1024,
        dimension: 2048,
        codebook_size: 64,
        seed,
    }
}

/// Epoch → membership, per shard, reconstructed from receipts.
fn log_receipts(
    log: &mut HashMap<(usize, u64), HashSet<ServerId>>,
    receipts: &[ShardReceipt],
) {
    for receipt in receipts {
        let previous = log.insert(
            (receipt.shard, receipt.epoch),
            receipt.members.iter().copied().collect(),
        );
        assert!(previous.is_none(), "epoch {} published twice", receipt.epoch);
    }
}

#[test]
fn lookups_race_churn_without_torn_reads() {
    for round in 0..ROUNDS {
        let engine = ServeEngine::new(config(round as u64 + 1)).expect("valid config");
        let mut epoch_log: HashMap<(usize, u64), HashSet<ServerId>> = HashMap::new();
        // Genesis: every shard starts at epoch 0 with no members.
        for snapshot in engine.snapshots() {
            epoch_log.insert((snapshot.shard, snapshot.epoch), HashSet::new());
        }
        // Base membership before the race, so the pool is never empty.
        for id in 0..8u64 {
            log_receipts(&mut epoch_log, &engine.join(ServerId::new(id)).expect("fresh"));
        }

        let (churn_receipts, responses) = std::thread::scope(|scope| {
            let engine = &engine;
            let churner = scope.spawn(move || {
                // Alternate leave/join over a rolling window so membership
                // stays at 7–8 members throughout.
                let mut receipts = Vec::new();
                let mut next_leave = 0u64;
                let mut next_join = 8u64;
                for op in 0..CHURN_OPS {
                    let result = if op % 2 == 0 {
                        let r = engine.leave(ServerId::new(next_leave));
                        next_leave += 1;
                        r
                    } else {
                        let r = engine.join(ServerId::new(next_join));
                        next_join += 1;
                        r
                    };
                    receipts.extend(result.expect("churn ops target known members"));
                    std::thread::yield_now();
                }
                receipts
            });
            let clients: Vec<_> = (0..CLIENTS)
                .map(|c| {
                    scope.spawn(move || {
                        let mut collected = Vec::with_capacity(LOOKUPS_PER_CLIENT);
                        let mut window = std::collections::VecDeque::new();
                        for i in 0..LOOKUPS_PER_CLIENT {
                            let key =
                                RequestKey::new((c * LOOKUPS_PER_CLIENT + i) as u64 * 31 + 7);
                            // Closed loop with a small in-flight window so
                            // batches actually coalesce.
                            if window.len() >= 8 {
                                let ticket: hdhash_serve::Ticket =
                                    window.pop_front().expect("non-empty");
                                collected.push(ticket.wait());
                            }
                            match engine.submit(key) {
                                Ok(ticket) => window.push_back(ticket),
                                Err(e) => panic!("queue sized for the load: {e}"),
                            }
                        }
                        for ticket in window {
                            collected.push(ticket.wait());
                        }
                        collected
                    })
                })
                .collect();
            let receipts = churner.join().expect("churner must not panic");
            let responses: Vec<_> = clients
                .into_iter()
                .flat_map(|c| c.join().expect("client must not panic"))
                .collect();
            (receipts, responses)
        });
        log_receipts(&mut epoch_log, &churn_receipts);

        assert_eq!(responses.len(), CLIENTS * LOOKUPS_PER_CLIENT, "round {round}");
        for response in &responses {
            let members = epoch_log
                .get(&(response.shard, response.epoch))
                .unwrap_or_else(|| {
                    panic!(
                        "round {round}: response cites unknown epoch {} on shard {}",
                        response.epoch, response.shard
                    )
                });
            match response.result {
                Ok(server) => assert!(
                    members.contains(&server),
                    "round {round}: shard {} epoch {} routed to {server}, \
                     which was not live in that epoch (live: {members:?})",
                    response.shard,
                    response.epoch,
                ),
                Err(TableError::EmptyPool) => assert!(
                    members.is_empty(),
                    "round {round}: empty-pool verdict in a populated epoch"
                ),
                Err(other) => panic!("round {round}: unexpected verdict {other:?}"),
            }
        }

        // Post-race invariants: the anti-entropy check reads zero delta
        // and the shards all reached the same epoch count.
        assert!(engine
            .shard_divergence(0)
            .iter()
            .all(|delta| delta.distance == 0 && !delta.diverged));
        let final_epoch = 8 + CHURN_OPS as u64;
        for snapshot in engine.snapshots() {
            assert_eq!(snapshot.epoch, final_epoch, "round {round}");
            assert_eq!(snapshot.members.len(), 8, "round {round}");
        }
    }
}

#[test]
fn reconfiguration_never_blocks_readers_for_long() {
    // A coarse liveness check: while a churn thread hammers
    // reconfigurations, single lookups keep completing (the publish path
    // is a pointer swap, not a rebuild-under-lock).
    let engine = ServeEngine::new(config(99)).expect("valid config");
    for id in 0..8u64 {
        engine.join(ServerId::new(id)).expect("fresh");
    }
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let engine = &engine;
        let stop = &stop;
        let churner = scope.spawn(move || {
            let mut id = 100u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                engine.join(ServerId::new(id)).expect("fresh");
                engine.leave(ServerId::new(id)).expect("present");
                id += 1;
            }
        });
        for k in 0..500u64 {
            let response =
                engine.submit(RequestKey::new(k)).expect("accepted").wait();
            assert!(response.result.is_ok());
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        churner.join().expect("churner must not panic");
    });
}
