//! Concurrent churn: lookups from four client threads racing a churn
//! thread that joins/leaves members through the epoch path.
//!
//! The property under test is the serving layer's consistency contract:
//! **every response routes to a server that was live in the epoch that
//! served it** — no torn reads, no response computed against a
//! half-applied membership. The epoch log is reconstructible because every
//! publication produces exactly one receipt; the validator replays the
//! receipts and checks each `(shard, epoch, server)` triple against the
//! membership live at that exact epoch.
//!
//! Every test here is **parameterized over both scheduling substrates**
//! ([`SchedulerKind::SharedQueue`] and [`SchedulerKind::WorkStealing`]):
//! the consistency contract must not depend on where a job parked between
//! submit and pickup — a stolen batch serves against the same epoch
//! snapshots as a locally drained one.
//!
//! CI runs this with `--test-threads=1`; the inner `ROUNDS` loop plus the
//! driver-side repetition give the "100 consecutive runs" soak the
//! acceptance criteria ask for.

use std::collections::{HashMap, HashSet};

use hdhash_serve::{SchedulerKind, ServeConfig, ServeEngine, ShardReceipt};
use hdhash_table::{RequestKey, ServerId, TableError};

/// Full engine rounds per test execution and substrate (each round builds
/// a fresh engine, races clients against churn, validates every
/// response).
const ROUNDS: usize = 2;
/// Lookup clients racing the churn thread.
const CLIENTS: usize = 4;
/// Lookups per client per round.
const LOOKUPS_PER_CLIENT: usize = 200;
/// Membership changes the churn thread applies per round.
const CHURN_OPS: usize = 30;
/// Both substrates, the parameterization axis.
const SCHEDULERS: [SchedulerKind; 2] =
    [SchedulerKind::SharedQueue, SchedulerKind::WorkStealing];

fn config(seed: u64, scheduler: SchedulerKind) -> ServeConfig {
    ServeConfig {
        shards: 2,
        workers: 4,
        batch_capacity: 16,
        queue_capacity: 1024,
        dimension: 2048,
        codebook_size: 64,
        seed,
        scheduler,
        engine: Default::default(),
        trace: Default::default(),
    }
}

/// Epoch → membership, per shard, reconstructed from receipts.
fn log_receipts(
    log: &mut HashMap<(usize, u64), HashSet<ServerId>>,
    receipts: &[ShardReceipt],
) {
    for receipt in receipts {
        let previous = log.insert(
            (receipt.shard, receipt.epoch),
            receipt.members.iter().copied().collect(),
        );
        assert!(previous.is_none(), "epoch {} published twice", receipt.epoch);
    }
}

#[test]
fn lookups_race_churn_without_torn_reads() {
    for scheduler in SCHEDULERS {
        for round in 0..ROUNDS {
            let engine =
                ServeEngine::new(config(round as u64 + 1, scheduler)).expect("valid config");
            let mut epoch_log: HashMap<(usize, u64), HashSet<ServerId>> = HashMap::new();
            // Genesis: every shard starts at epoch 0 with no members.
            for snapshot in engine.snapshots() {
                epoch_log.insert((snapshot.shard, snapshot.epoch), HashSet::new());
            }
            // Base membership before the race, so the pool is never empty.
            for id in 0..8u64 {
                log_receipts(&mut epoch_log, &engine.join(ServerId::new(id)).expect("fresh"));
            }

            let (churn_receipts, responses) = std::thread::scope(|scope| {
                let engine = &engine;
                let churner = scope.spawn(move || {
                    // Alternate leave/join over a rolling window so membership
                    // stays at 7–8 members throughout.
                    let mut receipts = Vec::new();
                    let mut next_leave = 0u64;
                    let mut next_join = 8u64;
                    for op in 0..CHURN_OPS {
                        let result = if op % 2 == 0 {
                            let r = engine.leave(ServerId::new(next_leave));
                            next_leave += 1;
                            r
                        } else {
                            let r = engine.join(ServerId::new(next_join));
                            next_join += 1;
                            r
                        };
                        receipts.extend(result.expect("churn ops target known members"));
                        std::thread::yield_now();
                    }
                    receipts
                });
                let clients: Vec<_> = (0..CLIENTS)
                    .map(|c| {
                        scope.spawn(move || {
                            let mut collected = Vec::with_capacity(LOOKUPS_PER_CLIENT);
                            let mut window = std::collections::VecDeque::new();
                            for i in 0..LOOKUPS_PER_CLIENT {
                                let key = RequestKey::new(
                                    (c * LOOKUPS_PER_CLIENT + i) as u64 * 31 + 7,
                                );
                                // Closed loop with a small in-flight window so
                                // batches actually coalesce.
                                if window.len() >= 8 {
                                    let ticket: hdhash_serve::Ticket =
                                        window.pop_front().expect("non-empty");
                                    collected.push(ticket.wait());
                                }
                                match engine.submit(key) {
                                    Ok(ticket) => window.push_back(ticket),
                                    Err(e) => panic!("queue sized for the load: {e}"),
                                }
                            }
                            for ticket in window {
                                collected.push(ticket.wait());
                            }
                            collected
                        })
                    })
                    .collect();
                let receipts = churner.join().expect("churner must not panic");
                let responses: Vec<_> = clients
                    .into_iter()
                    .flat_map(|c| c.join().expect("client must not panic"))
                    .collect();
                (receipts, responses)
            });
            log_receipts(&mut epoch_log, &churn_receipts);

            assert_eq!(
                responses.len(),
                CLIENTS * LOOKUPS_PER_CLIENT,
                "{scheduler:?} round {round}"
            );
            for response in &responses {
                let members = epoch_log
                    .get(&(response.shard, response.epoch))
                    .unwrap_or_else(|| {
                        panic!(
                            "{scheduler:?} round {round}: response cites unknown epoch {} \
                             on shard {}",
                            response.epoch, response.shard
                        )
                    });
                match response.result {
                    Ok(server) => assert!(
                        members.contains(&server),
                        "{scheduler:?} round {round}: shard {} epoch {} routed to {server}, \
                         which was not live in that epoch (live: {members:?})",
                        response.shard,
                        response.epoch,
                    ),
                    Err(TableError::EmptyPool) => assert!(
                        members.is_empty(),
                        "{scheduler:?} round {round}: empty-pool verdict in a populated epoch"
                    ),
                    Err(other) => {
                        panic!("{scheduler:?} round {round}: unexpected verdict {other:?}")
                    }
                }
            }

            // Post-race invariants: the anti-entropy check reads zero delta
            // and the shards all reached the same epoch count.
            assert!(engine
                .shard_divergence(0)
                .iter()
                .all(|delta| delta.distance == 0 && !delta.diverged));
            let final_epoch = 8 + CHURN_OPS as u64;
            for snapshot in engine.snapshots() {
                assert_eq!(snapshot.epoch, final_epoch, "{scheduler:?} round {round}");
                assert_eq!(snapshot.members.len(), 8, "{scheduler:?} round {round}");
            }
        }
    }
}

#[test]
fn reconfiguration_never_blocks_readers_for_long() {
    // A coarse liveness check: while a churn thread hammers
    // reconfigurations, single lookups keep completing (the publish path
    // is a pointer swap, not a rebuild-under-lock) — under both
    // substrates.
    for scheduler in SCHEDULERS {
        let engine = ServeEngine::new(config(99, scheduler)).expect("valid config");
        for id in 0..8u64 {
            engine.join(ServerId::new(id)).expect("fresh");
        }
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            let engine = &engine;
            let stop = &stop;
            let churner = scope.spawn(move || {
                let mut id = 100u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    engine.join(ServerId::new(id)).expect("fresh");
                    engine.leave(ServerId::new(id)).expect("present");
                    id += 1;
                }
            });
            for k in 0..500u64 {
                let response =
                    engine.submit(RequestKey::new(k)).expect("accepted").wait();
                assert!(response.result.is_ok(), "{scheduler:?}");
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            churner.join().expect("churner must not panic");
        });
    }
}

#[test]
fn work_stealing_backpressure_surfaces_queue_full() {
    // A 1-worker engine with a tiny injector and a slow open-loop client
    // burst: once the injector is at capacity, submits must reject with
    // QueueFull — and every *accepted* ticket must still resolve.
    let mut engine = ServeEngine::new(ServeConfig {
        shards: 1,
        workers: 1,
        batch_capacity: 4,
        queue_capacity: 8,
        dimension: 2048,
        codebook_size: 64,
        seed: 7,
        scheduler: SchedulerKind::WorkStealing,
        engine: Default::default(),
        trace: Default::default(),
    })
    .expect("valid config");
    engine.join(ServerId::new(1)).expect("fresh");
    let mut accepted = Vec::new();
    let mut rejected = 0usize;
    for k in 0..5_000u64 {
        match engine.submit(RequestKey::new(k)) {
            Ok(ticket) => accepted.push(ticket),
            Err(hdhash_serve::ServeError::QueueFull) => rejected += 1,
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }
    let accepted_count = accepted.len() as u64;
    for ticket in accepted {
        assert!(ticket.wait().result.is_ok());
    }
    // An open-loop burst of 5000 against capacity 8 must trip
    // backpressure at least once on a single worker.
    assert!(rejected > 0, "backpressure never engaged");
    engine.shutdown();
    let metrics = engine.metrics();
    assert_eq!(metrics.rejected as usize, rejected);
    assert_eq!(metrics.submitted, accepted_count);
    assert_eq!(metrics.completed, accepted_count);
    assert_eq!(metrics.queue_depth, 0);
}

#[test]
fn stragglers_in_stolen_batches_complete_at_shutdown() {
    // Force jobs into work-stealing local deques (pickup chunks are 2 ×
    // batch_capacity, so a burst parks surplus locally), then shut down
    // mid-flight: every accepted ticket must resolve — the shutdown drain
    // reaps local deques, not just the injector.
    for round in 0..20u64 {
        let mut engine = ServeEngine::new(ServeConfig {
            shards: 2,
            workers: 4,
            batch_capacity: 8,
            queue_capacity: 2048,
            dimension: 2048,
            codebook_size: 64,
            seed: 1000 + round,
            scheduler: SchedulerKind::WorkStealing,
            engine: Default::default(),
            trace: Default::default(),
        })
        .expect("valid config");
        engine.join(ServerId::new(1)).expect("fresh");
        engine.join(ServerId::new(2)).expect("fresh");
        let tickets: Vec<_> = (0..600u64)
            .filter_map(|k| engine.submit(RequestKey::new(k)).ok())
            .collect();
        // No sleep: shutdown races the workers while their local deques
        // still hold stolen/surplus jobs.
        engine.shutdown();
        for (i, ticket) in tickets.into_iter().enumerate() {
            let response = ticket.wait();
            assert!(response.result.is_ok(), "round {round}, ticket {i} must resolve");
        }
        let metrics = engine.metrics();
        assert_eq!(metrics.completed, metrics.submitted, "round {round}");
        assert_eq!(metrics.queue_depth, 0, "round {round}: nothing left parked");
    }
}
