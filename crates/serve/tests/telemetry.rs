//! The unified telemetry contract, end to end: one
//! [`TelemetrySnapshot`] built from a live 2-replica TCP cluster plus a
//! chaos run covers **every** layer (engine, gossip, TCP, chaos,
//! tracer), the Prometheus exposition survives the vendored strict
//! parser, and the drained trace ring replays the whole request/gossip
//! lifecycle as parseable JSONL.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hdhash_obs::{jsonlite, promparse, SpanKind, TelemetrySnapshot, TraceConfig};
use hdhash_serve::chaos::{ChaosNetwork, FaultPlan, LinkFaults};
use hdhash_serve::gossip::{converged, GossipConfig, GossipNode};
use hdhash_serve::replication::ReplicatedEngine;
use hdhash_serve::tcp::{TcpConfig, TcpNetwork};
use hdhash_serve::telemetry::{
    export_chaos, export_engine, export_gossip, export_tcp, export_tracer,
};
use hdhash_serve::transport::{ReplicaId, Transport};
use hdhash_serve::{GossipMessage, ServeConfig};
use hdhash_table::{RequestKey, ServerId};

fn serve_config(seed: u64) -> ServeConfig {
    ServeConfig {
        shards: 2,
        workers: 2,
        batch_capacity: 16,
        queue_capacity: 512,
        dimension: 1024,
        codebook_size: 32,
        seed,
        scheduler: hdhash_serve::SchedulerKind::default(),
        // Sample every request: this suite asserts on event presence.
        engine: Default::default(),
        trace: TraceConfig::sampled(1),
    }
}

fn tcp_config() -> TcpConfig {
    TcpConfig {
        connect_timeout: Duration::from_millis(500),
        read_timeout: Duration::from_millis(100),
        write_timeout: Duration::from_secs(1),
        reconnect_base: Duration::from_millis(10),
        reconnect_cap: Duration::from_millis(200),
        outbox_capacity: 1024,
    }
}

/// Sends a bit of traffic through a deterministic chaos plan so the
/// chaos counters are non-trivial.
fn run_chaos_traffic() -> hdhash_serve::ChaosStats {
    let plan = FaultPlan::new(0x7E1E).with_default_link(LinkFaults::lossy(250));
    let net = ChaosNetwork::new(plan);
    let a = net.endpoint(ReplicaId::new(0));
    let b = net.endpoint(ReplicaId::new(1));
    for round in 0..40 {
        a.send(
            ReplicaId::new(1),
            GossipMessage::Advert { round, signatures: Vec::new(), ack: None },
        )
        .expect("registered");
    }
    while b.try_recv().is_some() {}
    net.stats()
}

#[test]
fn one_snapshot_covers_every_layer() {
    // --- live 2-replica cluster over loopback TCP, tracing every request.
    let networks: Vec<TcpNetwork> = (0..2)
        .map(|i| {
            TcpNetwork::bind(ReplicaId::new(i), "127.0.0.1:0", tcp_config()).expect("bind")
        })
        .collect();
    let addrs: Vec<_> = networks.iter().map(TcpNetwork::local_addr).collect();
    for (i, network) in networks.iter().enumerate() {
        for (j, &addr) in addrs.iter().enumerate() {
            if i != j {
                network.add_peer(ReplicaId::new(j as u64), addr);
            }
        }
    }
    let peers: Vec<ReplicaId> = (0..2).map(ReplicaId::new).collect();
    let replicas: Vec<Arc<ReplicatedEngine>> = (0..2)
        .map(|i| {
            Arc::new(
                ReplicatedEngine::new(ReplicaId::new(i), serve_config(0x0B5)).expect("valid"),
            )
        })
        .collect();
    let nodes: Vec<GossipNode<_>> = replicas
        .iter()
        .zip(&networks)
        .map(|(replica, network)| {
            // One tracer per replica, shared across engine, gossip, and
            // TCP so the drained ring interleaves all three layers.
            let tracer = replica.engine().tracer();
            network.set_tracer(Arc::clone(&tracer));
            GossipNode::new(
                Arc::clone(replica),
                network.endpoint(),
                peers.clone(),
                GossipConfig { period: Duration::from_millis(10), ..GossipConfig::default() },
            )
            .with_tracer(tracer)
        })
        .collect();

    // Divergent histories force a real sync exchange (SyncStart →
    // SyncComplete), then serve traffic on replica 0.
    for id in 0..10u64 {
        replicas[0].join(ServerId::new(id)).expect("fresh");
    }
    for id in 6..14u64 {
        replicas[1].join(ServerId::new(id)).expect("fresh");
    }
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        for node in &nodes {
            node.tick();
        }
        std::thread::sleep(Duration::from_millis(20));
        for node in &nodes {
            node.pump();
        }
        let views: Vec<&ReplicatedEngine> = replicas.iter().map(Arc::as_ref).collect();
        if converged(&views) {
            break;
        }
        assert!(Instant::now() < deadline, "no convergence over TCP");
    }
    for i in 0..50u64 {
        let ticket = replicas[0].submit(RequestKey::new(i)).expect("accepted");
        assert!(ticket.wait().result.is_ok());
    }
    // `wait()` returns when the ticket fills, but the worker bumps the
    // completed counter after filling the whole batch — give the
    // counter a bounded moment to settle before snapshotting.
    let settle = Instant::now() + Duration::from_secs(10);
    while replicas[0].engine().metrics().completed < 50 {
        assert!(Instant::now() < settle, "completed counter never reached 50");
        std::thread::sleep(Duration::from_millis(5));
    }

    // --- one unified snapshot across all layers.
    let chaos = run_chaos_traffic();
    let mut out = TelemetrySnapshot::new();
    for (i, (replica, network)) in replicas.iter().zip(&networks).enumerate() {
        let idx = i.to_string();
        let labels: [(&str, &str); 1] = [("replica", idx.as_str())];
        export_engine(&mut out, &labels, &replica.engine().metrics());
        export_gossip(&mut out, &labels, &nodes[i].metrics());
        export_tcp(&mut out, &labels, &network.stats());
        export_tracer(&mut out, &labels, &replica.engine().tracer().stats());
    }
    export_chaos(&mut out, &[], &chaos);

    // Engine, gossip, TCP, chaos, and tracer families all present with
    // real traffic behind them.
    assert_eq!(out.total("hdhash_engine_completed_total"), 50.0);
    assert!(out.total("hdhash_gossip_rounds_total") >= 2.0);
    assert!(out.total("hdhash_gossip_syncs_sent_total") >= 1.0);
    assert!(out.total("hdhash_tcp_frames_sent_total") >= 1.0);
    assert_eq!(out.total("hdhash_chaos_offered_total"), 40.0);
    assert!(out.total("hdhash_trace_events_recorded_total") >= 1.0);
    // The satellite counters are part of the unified surface even at 0.
    for name in [
        "hdhash_engine_panics_contained_total",
        "hdhash_gossip_sync_retries_total",
        "hdhash_gossip_sync_abandoned_total",
        "hdhash_tcp_peer_backpressure_drops_total",
    ] {
        assert!(out.get(name).is_some(), "{name} missing from snapshot");
    }

    // --- the Prometheus exposition survives the strict vendored parser.
    let text = out.to_prometheus();
    let parsed = promparse::parse(&text).expect("prometheus output parses");
    promparse::validate(&parsed).expect("prometheus output validates");

    // --- and the JSON form parses too.
    let json = jsonlite::parse(&out.to_json()).expect("snapshot JSON parses");
    assert!(
        !json.get("samples").and_then(|s| s.as_arr()).expect("samples array").is_empty()
    );

    // --- the drained trace ring replays the full lifecycle as JSONL.
    let mut kinds = BTreeSet::new();
    for replica in &replicas {
        let events = replica.engine().tracer().drain();
        let lines = hdhash_obs::jsonl(&events);
        for line in lines.lines() {
            let doc = jsonlite::parse(line).expect("JSONL line parses");
            let kind = doc.get("kind").and_then(|k| k.as_str()).expect("kind field");
            assert!(SpanKind::parse(kind).is_some(), "unknown span kind {kind}");
            kinds.insert(kind.to_string());
        }
    }
    for expected in [
        SpanKind::Submit,
        SpanKind::Pickup,
        SpanKind::BatchExec,
        SpanKind::ResponseFill,
        SpanKind::GossipRound,
        SpanKind::SyncStart,
        SpanKind::SyncComplete,
        SpanKind::TcpConnect,
        SpanKind::TcpAccept,
    ] {
        assert!(
            kinds.contains(expected.name()),
            "missing span kind {} in {kinds:?}",
            expected.name()
        );
    }
}
