//! Gossip over real sockets: the same anti-entropy protocol the
//! in-process suites pin — divergent replicas converging to
//! byte-identical per-shard signatures — run over framed loopback TCP
//! ([`TcpNetwork`]) instead of channel mailboxes. On top of convergence
//! it pins the measured-bytes contract: after the outboxes quiesce, the
//! bytes the kernel actually carried equal the gossip layer's
//! `wire_size` accounting plus exactly [`FRAME_OVERHEAD`] per frame —
//! the computed byte trajectory *is* the wire trajectory.

use std::sync::Arc;
use std::time::{Duration, Instant};

use hdhash_serve::gossip::{converged, GossipConfig, GossipNode};
use hdhash_serve::replication::ReplicatedEngine;
use hdhash_serve::tcp::{TcpConfig, TcpEndpoint, TcpNetwork};
use hdhash_serve::transport::ReplicaId;
use hdhash_serve::wire::FRAME_OVERHEAD;
use hdhash_serve::ServeConfig;
use hdhash_table::ServerId;

fn serve_config(seed: u64) -> ServeConfig {
    ServeConfig {
        shards: 2,
        workers: 1,
        batch_capacity: 16,
        queue_capacity: 256,
        dimension: 1024,
        codebook_size: 32,
        seed,
        scheduler: hdhash_serve::SchedulerKind::default(),
        engine: Default::default(),
        trace: Default::default(),
    }
}

fn tcp_config() -> TcpConfig {
    TcpConfig {
        connect_timeout: Duration::from_millis(500),
        read_timeout: Duration::from_millis(100),
        write_timeout: Duration::from_secs(1),
        reconnect_base: Duration::from_millis(10),
        reconnect_cap: Duration::from_millis(200),
        outbox_capacity: 1024,
    }
}

/// Builds `n` replicas, each on its own [`TcpNetwork`] bound to an
/// OS-assigned loopback port, full-mesh wired.
fn tcp_cluster(
    n: u64,
) -> (Vec<TcpNetwork>, Vec<Arc<ReplicatedEngine>>, Vec<GossipNode<TcpEndpoint>>) {
    let networks: Vec<TcpNetwork> = (0..n)
        .map(|i| {
            TcpNetwork::bind(ReplicaId::new(i), "127.0.0.1:0", tcp_config()).expect("bind loopback")
        })
        .collect();
    let addrs: Vec<_> = networks.iter().map(TcpNetwork::local_addr).collect();
    for (i, network) in networks.iter().enumerate() {
        for (j, &addr) in addrs.iter().enumerate() {
            if i != j {
                network.add_peer(ReplicaId::new(j as u64), addr);
            }
        }
    }
    let peers: Vec<ReplicaId> = (0..n).map(ReplicaId::new).collect();
    let mut replicas = Vec::new();
    let mut nodes = Vec::new();
    for (i, network) in networks.iter().enumerate() {
        let id = ReplicaId::new(i as u64);
        let replica =
            Arc::new(ReplicatedEngine::new(id, serve_config(0x7C9)).expect("valid config"));
        nodes.push(GossipNode::new(
            Arc::clone(&replica),
            network.endpoint(),
            peers.clone(),
            GossipConfig { period: Duration::from_millis(10), ..GossipConfig::default() },
        ));
        replicas.push(replica);
    }
    (networks, replicas, nodes)
}

#[test]
fn divergent_replicas_converge_over_loopback_tcp() {
    let (networks, replicas, nodes) = tcp_cluster(3);
    // Divergent histories: overlapping joins plus a conflicting leave.
    for id in 0..12u64 {
        replicas[0].join(ServerId::new(id)).expect("fresh");
    }
    for id in 8..20u64 {
        replicas[1].join(ServerId::new(id)).expect("fresh");
    }
    for id in 4..6u64 {
        replicas[2].join(ServerId::new(id)).expect("fresh");
    }
    replicas[0].leave(ServerId::new(3)).expect("present");

    // Drive rounds until converged; socket delivery is asynchronous, so
    // each round gives the kernel a moment before pumping.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        for node in &nodes {
            node.tick();
        }
        std::thread::sleep(Duration::from_millis(20));
        for node in &nodes {
            node.pump();
        }
        let views: Vec<&ReplicatedEngine> = replicas.iter().map(Arc::as_ref).collect();
        if converged(&views) {
            break;
        }
        assert!(Instant::now() < deadline, "no convergence over TCP within deadline");
    }

    // Byte-identical signatures, word for word.
    let reference = replicas[0].shard_signatures();
    for replica in &replicas[1..] {
        assert_eq!(replica.member_ids(), replicas[0].member_ids());
        for (ours, theirs) in reference.iter().zip(replica.shard_signatures().iter()) {
            assert_eq!(ours.as_words(), theirs.as_words());
        }
    }

    // Quiesce the outboxes, then hold the accounting to the byte: what
    // the kernel carried == what `wire_size` computed, plus exactly one
    // frame header per frame. Any slack here means the codec and the
    // accounting have diverged.
    let drain_deadline = Instant::now() + Duration::from_secs(30);
    while networks.iter().any(|n| n.pending_frames() > 0) {
        assert!(Instant::now() < drain_deadline, "outboxes never drained");
        std::thread::sleep(Duration::from_millis(10));
    }
    for (i, (network, node)) in networks.iter().zip(&nodes).enumerate() {
        let tcp = network.stats();
        let gossip = node.metrics();
        assert_eq!(tcp.peer_backpressure_drops, 0, "node {i}: unexpected eviction");
        assert!(tcp.frames_sent > 0, "node {i}: gossip never hit the wire");
        assert_eq!(
            tcp.bytes_sent,
            gossip.bytes_sent + FRAME_OVERHEAD as u64 * tcp.frames_sent,
            "node {i}: measured bytes must equal wire_size accounting + frame overhead"
        );
        assert_eq!(tcp.corrupt_frames, 0, "node {i}: self-talk must never corrupt");
        assert_eq!(tcp.partial_frames, 0, "node {i}: self-talk must never stall mid-frame");
    }
    // Every byte sent somewhere arrived somewhere: the cluster-wide
    // ledgers match once the wire is idle.
    let sent: u64 = networks.iter().map(|n| n.stats().bytes_sent).sum();
    let received: u64 = networks.iter().map(|n| n.stats().bytes_received).sum();
    assert_eq!(sent, received, "cluster-wide sent/received ledgers diverged");
}
