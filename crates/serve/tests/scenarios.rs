//! The deterministic scenario regression suite (see `docs/SCENARIOS.md`).
//!
//! Every test prints the seed it ran with, so a failing log always
//! carries its own reproduction. The randomized soak honors
//! `SCENARIO_SEED=<n>` for bit-for-bit replay of a failure.

use hdhash_emulator::{AlgorithmKind, HashTableModule, Trace};
use hdhash_serve::scenario::{self, catalog, PhaseMetrics, Scenario, ScenarioConfig};
use hdhash_serve::{drive_trace, ServeConfig, ServeEngine};

/// Seed used by the deterministic catalog tests (any value works; fixing
/// one keeps CI logs comparable across runs).
const CATALOG_SEED: u64 = 0xD1A6_2022;

/// The deterministic fields of a phase, as one comparable tuple (latency
/// and wall time are measurements and excluded — same rule as
/// [`hdhash_serve::ScenarioReport::fingerprint`]).
fn deterministic_fields(p: &PhaseMetrics) -> [u64; 14] {
    [
        p.phase as u64,
        p.arrivals,
        p.submitted,
        p.shed,
        p.completed,
        p.lookup_failures,
        p.timed_out,
        p.controls,
        p.control_failures,
        p.members,
        p.epoch_max,
        p.epoch_lag,
        p.divergence,
        p.signature_hash,
    ]
}

/// Runs one scenario and checks the catalog-wide invariants.
fn check_invariants(s: &Scenario, seed: u64) -> hdhash_serve::ScenarioReport {
    println!("scenario {} seed={seed} (replay: SCENARIO_SEED={seed})", s.name);
    let report = scenario::run(s, &ScenarioConfig::small(), seed).expect("catalog run");
    assert_eq!(report.hung_tickets, 0, "{}: no ticket may hang", s.name);
    assert_eq!(
        report.epoch_mismatches, 0,
        "{}: every response epoch must match the membership snapshot serving its tick",
        s.name
    );
    assert!(report.converged, "{}: replica set must end converged", s.name);
    assert!(
        report.replica_signatures.windows(2).all(|w| w[0] == w[1]),
        "{}: converged ⇒ identical signature hashes",
        s.name
    );
    for phase in &report.phases {
        assert_eq!(
            phase.submitted + phase.shed,
            phase.arrivals,
            "{} phase {}: every offered lookup is submitted or shed",
            s.name,
            phase.phase
        );
        assert_eq!(
            phase.completed, phase.submitted,
            "{} phase {}: every submitted lookup completes",
            s.name, phase.phase
        );
        assert_eq!(phase.lookup_failures, 0, "{}: pool is never empty", s.name);
        assert_eq!(phase.control_failures, 0, "{}: scripted controls are valid", s.name);
        assert!(phase.members >= 1);
    }
    report
}

#[test]
fn catalog_invariants_hold_for_every_scenario() {
    for s in catalog() {
        check_invariants(&s, CATALOG_SEED);
    }
}

#[test]
fn same_seed_reruns_are_bit_identical() {
    // The churny scenarios are the ones with the most nondeterminism
    // surface (threaded reconfiguration, chaos transport, gossip).
    for name in ["churn-storm", "crash-rejoin"] {
        let s = Scenario::by_name(name).expect("catalog");
        let a = check_invariants(&s, CATALOG_SEED);
        let b = check_invariants(&s, CATALOG_SEED);
        assert_eq!(a.fingerprint(), b.fingerprint(), "{name}: fingerprints diverged");
        assert_eq!(a.phases.len(), b.phases.len());
        for (pa, pb) in a.phases.iter().zip(&b.phases) {
            assert_eq!(
                deterministic_fields(pa),
                deterministic_fields(pb),
                "{name} phase {}: per-phase metrics must replay bit-for-bit",
                pa.phase
            );
        }
        assert_eq!(a.replica_signatures, b.replica_signatures);
        // A different seed must actually change the run.
        let c = scenario::run(&s, &ScenarioConfig::small(), CATALOG_SEED ^ 1)
            .expect("other seed");
        assert_ne!(a.fingerprint(), c.fingerprint(), "{name}: seed must matter");
    }
}

#[test]
fn flash_crowd_sheds_at_peak_then_drains() {
    let s = Scenario::by_name("flash-crowd").expect("catalog");
    let report = check_invariants(&s, CATALOG_SEED);
    // peak ticks 16..24 with phase_ticks 8 ⇒ exactly phase 2 overloads.
    for phase in &report.phases {
        if phase.phase == 2 {
            assert!(phase.shed > 0, "the flash crowd must exceed the window");
        } else {
            assert_eq!(phase.shed, 0, "phase {}: off-peak load fits the window", phase.phase);
        }
        // The open loop never leaves a backlog across a phase: everything
        // submitted in the phase completed in the phase (drained).
        assert_eq!(phase.completed, phase.submitted);
    }
}

#[test]
fn crash_rejoin_diverges_then_reconverges() {
    let s = Scenario::by_name("crash-rejoin").expect("catalog");
    let report = check_invariants(&s, CATALOG_SEED);
    assert!(
        report.phases.iter().any(|p| p.divergence > 0 || p.epoch_lag > 0),
        "the crashed replica must visibly fall behind mid-run"
    );
    let last = report.phases.last().expect("phases");
    assert!(report.converged, "rejoin must reconverge");
    assert!(
        last.divergence == 0 || report.recovery_rounds > 0,
        "either the run ends converged or recovery rounds did the work"
    );
}

#[test]
fn randomized_soak_prints_its_replay_seed() {
    // A fresh seed per run widens coverage; SCENARIO_SEED pins it for
    // bit-for-bit replay of a CI failure.
    let seed = match std::env::var("SCENARIO_SEED") {
        Ok(v) => v.parse::<u64>().expect("SCENARIO_SEED must be a u64"),
        Err(_) => std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock after epoch")
            .subsec_nanos() as u64
            ^ 0x5eed_0bad_c0de,
    };
    println!(
        "soak seed={seed} — replay with: SCENARIO_SEED={seed} \
         cargo test -p hdhash-serve --test scenarios randomized_soak"
    );
    for name in ["steady", "diurnal", "churn-storm"] {
        let s = Scenario::by_name(name).expect("catalog");
        check_invariants(&s, seed);
    }
}

#[test]
fn recorded_trace_replays_identically_through_the_serve_driver() {
    // Record → write → parse → replay: the emulator ↔ serve seam.
    let s = Scenario::by_name("churn-storm").expect("catalog");
    let trace = s.trace(CATALOG_SEED);
    let text = trace.to_text();
    let parsed = Trace::from_text(&text).expect("round-trip parse");
    assert_eq!(parsed.requests(), trace.requests(), "text round-trip is lossless");
    assert_eq!(parsed.name(), trace.name());

    let engine_config = ServeConfig {
        shards: 2,
        workers: 2,
        batch_capacity: 16,
        queue_capacity: 4096,
        dimension: 2048,
        codebook_size: 64,
        seed: 9,
        ..ServeConfig::default()
    };
    let original = {
        let engine = ServeEngine::new(engine_config).expect("engine");
        drive_trace(&engine, &trace, 64).replay_report()
    };
    let reparsed = {
        let engine = ServeEngine::new(engine_config).expect("engine");
        drive_trace(&engine, &parsed, 64).replay_report()
    };
    assert_eq!(
        original.counters, reparsed.counters,
        "the parsed trace must replay to the same deterministic counters"
    );
    assert_eq!(original.counters.shed, 0, "large queue ⇒ nothing shed");
    assert_eq!(original.counters.timed_out, 0);
}

#[test]
fn trace_counters_agree_across_emulator_and_serve_worlds() {
    // The same recorded trace through both substrates: the paper-figure
    // emulator module and the live serving engine must agree on every
    // deterministic counter (assignments differ — the codebook geometries
    // are unrelated — but membership semantics are identical).
    let s = Scenario::by_name("churn-storm").expect("catalog");
    let trace = s.trace(CATALOG_SEED);

    let mut module = HashTableModule::new(AlgorithmKind::Hd.build(64));
    let emulated = trace.replay_report(&mut module);

    let engine = ServeEngine::new(ServeConfig {
        shards: 2,
        workers: 2,
        batch_capacity: 16,
        queue_capacity: 4096,
        dimension: 2048,
        codebook_size: 64,
        ..ServeConfig::default()
    })
    .expect("engine");
    let served = drive_trace(&engine, &trace, 64).replay_report();

    assert_eq!(
        emulated.counters, served.counters,
        "one trace, two worlds, one outcome"
    );
    assert!(served.latency.is_some(), "the serve driver records latency");
    assert!(emulated.latency.is_none(), "the module reports only aggregates");
}
