//! Property suite for anti-entropy delta application: merging
//! [`MemberRecord`] deltas into a [`MembershipLog`] is **idempotent**
//! (applying the same delta twice equals applying it once) and
//! **order-independent** (two deltas in either order reach the same
//! state), and both properties carry through to the per-shard membership
//! *signatures* when the merged log is applied to real engines — the
//! guarantee that lets gossip rounds overlap, retry and reorder freely
//! without ever un-converging a replica set.

use hdhash_serve::replication::{MemberRecord, MembershipLog, ReplicatedEngine};
use hdhash_serve::transport::ReplicaId;
use hdhash_serve::ServeConfig;
use hdhash_table::ServerId;
use proptest::prelude::*;

/// Small id/version spaces force collisions (the interesting cases: same
/// server in both deltas, version ties with conflicting liveness).
fn records() -> impl Strategy<Value = Vec<MemberRecord>> {
    prop::collection::vec(
        (0u8..10, 1u64..6, any::<bool>()).prop_map(|(id, version, alive)| MemberRecord {
            server: ServerId::new(u64::from(id)),
            version,
            alive,
        }),
        0..12,
    )
}

/// A base log built from local decisions over the same id space.
fn base_log() -> impl Strategy<Value = Vec<(u8, bool)>> {
    prop::collection::vec((0u8..10, any::<bool>()), 0..10)
}

fn build_log(script: &[(u8, bool)]) -> MembershipLog {
    let mut log = MembershipLog::new();
    for &(id, alive) in script {
        log.set_local(ServerId::new(u64::from(id)), alive);
    }
    log
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        shards: 2,
        workers: 1,
        batch_capacity: 8,
        queue_capacity: 64,
        dimension: 1024,
        codebook_size: 32,
        seed: 404,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// merge(merge(L, D), D) == merge(L, D): re-delivered deltas (gossip
    /// retries, duplicated messages) change nothing.
    #[test]
    fn merge_is_idempotent(script in base_log(), delta in records()) {
        let mut once = build_log(&script);
        once.merge(&delta);
        let mut twice = build_log(&script);
        twice.merge(&delta);
        let after_first = twice.records();
        let outcome = twice.merge(&delta);
        prop_assert_eq!(outcome.adopted, 0, "second application adopted records");
        prop_assert!(!outcome.changed_membership());
        prop_assert_eq!(twice.records(), once.records());
        prop_assert_eq!(twice.records(), after_first);
    }

    /// merge(merge(L, D1), D2) == merge(merge(L, D2), D1): deltas commute,
    /// so replicas may receive gossip exchanges in any interleaving.
    #[test]
    fn merge_is_order_independent(
        script in base_log(),
        d1 in records(),
        d2 in records(),
    ) {
        let mut forward = build_log(&script);
        forward.merge(&d1);
        forward.merge(&d2);
        let mut backward = build_log(&script);
        backward.merge(&d2);
        backward.merge(&d1);
        prop_assert_eq!(forward.records(), backward.records());
        prop_assert_eq!(forward.alive_ids(), backward.alive_ids());
    }

    /// Merging a log's own records back into it is a fixed point.
    #[test]
    fn self_merge_is_identity(script in base_log()) {
        let mut log = build_log(&script);
        let snapshot = log.records();
        let outcome = log.merge(&snapshot);
        prop_assert_eq!(outcome.adopted, 0);
        prop_assert_eq!(log.records(), snapshot);
    }
}

proptest! {
    // Engine-backed cases are heavier; fewer of them suffice (the pure
    // log properties above carry the combinatorial load).
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The signature-level statement of both properties: two replicas fed
    /// the same deltas twice and in opposite orders end **byte-identical**
    /// per-shard signatures — delta application at the engine level
    /// inherits the log's idempotence and commutativity.
    #[test]
    fn signatures_are_delta_order_and_repeat_invariant(
        d1 in records(),
        d2 in records(),
    ) {
        let a = ReplicatedEngine::new(ReplicaId::new(0), serve_config())
            .expect("valid config");
        let b = ReplicatedEngine::new(ReplicaId::new(1), serve_config())
            .expect("valid config");
        // a: D1, D2 — with D1 re-applied (gossip duplicate).
        a.merge(&d1).expect("capacity fits");
        a.merge(&d1).expect("capacity fits");
        a.merge(&d2).expect("capacity fits");
        // b: D2, D1.
        b.merge(&d2).expect("capacity fits");
        b.merge(&d1).expect("capacity fits");
        prop_assert_eq!(a.member_ids(), b.member_ids());
        let (sig_a, sig_b) = (a.shard_signatures(), b.shard_signatures());
        prop_assert_eq!(sig_a.len(), sig_b.len());
        for (ours, theirs) in sig_a.iter().zip(&sig_b) {
            prop_assert_eq!(ours.as_words(), theirs.as_words());
        }
        // And the engines themselves converged, not just the logs.
        for (snap_a, snap_b) in
            a.engine().snapshots().iter().zip(b.engine().snapshots().iter())
        {
            prop_assert_eq!(snap_a.member_ids(), snap_b.member_ids());
        }
    }
}
