//! Property suite for anti-entropy delta application: merging
//! [`MemberRecord`] deltas into a [`MembershipLog`] is **idempotent**
//! (applying the same delta twice equals applying it once) and
//! **order-independent** (two deltas in either order reach the same
//! state), and both properties carry through to the per-shard membership
//! *signatures* when the merged log is applied to real engines — the
//! guarantee that lets gossip rounds overlap, retry and reorder freely
//! without ever un-converging a replica set.

use hdhash_serve::replication::{MemberRecord, MembershipLog, ReplicatedEngine};
use hdhash_serve::transport::ReplicaId;
use hdhash_serve::ServeConfig;
use hdhash_table::ServerId;
use proptest::prelude::*;

/// Small id/version spaces force collisions (the interesting cases: same
/// server in both deltas, version ties with conflicting liveness).
fn records() -> impl Strategy<Value = Vec<MemberRecord>> {
    prop::collection::vec(
        (0u8..10, 1u64..6, any::<bool>()).prop_map(|(id, version, alive)| MemberRecord {
            server: ServerId::new(u64::from(id)),
            version,
            alive,
        }),
        0..12,
    )
}

/// A base log built from local decisions over the same id space.
fn base_log() -> impl Strategy<Value = Vec<(u8, bool)>> {
    prop::collection::vec((0u8..10, any::<bool>()), 0..10)
}

fn build_log(script: &[(u8, bool)]) -> MembershipLog {
    let mut log = MembershipLog::new();
    for &(id, alive) in script {
        log.set_local(ServerId::new(u64::from(id)), alive);
    }
    log
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        shards: 2,
        workers: 1,
        batch_capacity: 8,
        queue_capacity: 64,
        dimension: 1024,
        codebook_size: 32,
        seed: 404,
        scheduler: hdhash_serve::SchedulerKind::default(),
        engine: Default::default(),
        trace: Default::default(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// merge(merge(L, D), D) == merge(L, D): re-delivered deltas (gossip
    /// retries, duplicated messages) change nothing.
    #[test]
    fn merge_is_idempotent(script in base_log(), delta in records()) {
        let mut once = build_log(&script);
        once.merge(&delta);
        let mut twice = build_log(&script);
        twice.merge(&delta);
        let after_first = twice.records();
        let outcome = twice.merge(&delta);
        prop_assert_eq!(outcome.adopted, 0, "second application adopted records");
        prop_assert!(!outcome.changed_membership());
        prop_assert_eq!(twice.records(), once.records());
        prop_assert_eq!(twice.records(), after_first);
    }

    /// merge(merge(L, D1), D2) == merge(merge(L, D2), D1): deltas commute,
    /// so replicas may receive gossip exchanges in any interleaving.
    #[test]
    fn merge_is_order_independent(
        script in base_log(),
        d1 in records(),
        d2 in records(),
    ) {
        let mut forward = build_log(&script);
        forward.merge(&d1);
        forward.merge(&d2);
        let mut backward = build_log(&script);
        backward.merge(&d2);
        backward.merge(&d1);
        prop_assert_eq!(forward.records(), backward.records());
        prop_assert_eq!(forward.alive_ids(), backward.alive_ids());
    }

    /// Merging a log's own records back into it is a fixed point.
    #[test]
    fn self_merge_is_identity(script in base_log()) {
        let mut log = build_log(&script);
        let snapshot = log.records();
        let outcome = log.merge(&snapshot);
        prop_assert_eq!(outcome.adopted, 0);
        prop_assert_eq!(log.records(), snapshot);
    }
}

/// Replica count of the tombstone-GC simulation. Three matters: the
/// resurrection hazard needs a *third* replica to deliver an
/// old-versioned record after another peer's acknowledgement — a pair
/// structurally cannot exhibit it.
const GC_REPLICAS: usize = 3;

/// One step of the tombstone-GC simulation (see
/// `gc_never_changes_the_converged_membership`).
#[derive(Debug, Clone, Copy)]
enum GcEvent {
    /// `set_local(server, alive)` on one replica.
    Op { replica: u8, server: u8, alive: bool },
    /// A full push–pull sync exchange between an ordered pair, with the
    /// seen-through bookkeeping the gossip layer performs.
    Sync { initiator: u8, responder: u8 },
    /// An advert from one replica to another carrying the piggybacked
    /// ack, followed by a GC attempt on the receiving side (exactly the
    /// gossip `tick`/`handle` order, GC gated on the full peer set).
    AckAndGc { from: u8, to: u8 },
}

fn gc_events() -> impl Strategy<Value = Vec<GcEvent>> {
    let n = GC_REPLICAS as u8;
    prop::collection::vec(
        prop_oneof![
            (0..n, 0u8..6, any::<bool>())
                .prop_map(|(replica, server, alive)| GcEvent::Op { replica, server, alive }),
            (0..n, 0..n).prop_map(|(initiator, responder)| GcEvent::Sync {
                initiator,
                responder
            }),
            (0..n, 0..n).prop_map(|(from, to)| GcEvent::AckAndGc { from, to }),
        ],
        0..40,
    )
}

/// An `GC_REPLICAS`-replica world: the logs plus the watermark
/// bookkeeping the gossip layer maintains (`merged_through[i][j]` =
/// replica `i` has merged `j`'s full capture as of `j`-LSN `s`).
struct GcWorld {
    logs: Vec<MembershipLog>,
    merged_through: [[u64; GC_REPLICAS]; GC_REPLICAS],
    /// When false, expiry events are ignored — the tombstones-forever
    /// reference world.
    gc_enabled: bool,
}

impl GcWorld {
    fn new(gc_enabled: bool) -> Self {
        Self {
            logs: (0..GC_REPLICAS).map(|_| MembershipLog::new()).collect(),
            merged_through: [[0; GC_REPLICAS]; GC_REPLICAS],
            gc_enabled,
        }
    }

    fn peer_id(replica: usize) -> ReplicaId {
        ReplicaId::new(replica as u64)
    }

    /// Every peer id except `of` — the GC gate set.
    fn peers_of(of: usize) -> Vec<ReplicaId> {
        (0..GC_REPLICAS).filter(|&i| i != of).map(Self::peer_id).collect()
    }

    /// Full push–pull between the pair: `initiator` sends its capture,
    /// `responder` merges and replies with the merged set; both sides
    /// note what they saw (in the *sender's* LSN units, as the protocol
    /// does).
    fn sync(&mut self, initiator: usize, responder: usize) {
        if initiator == responder {
            return;
        }
        let (stamp, records) = (self.logs[initiator].lsn(), self.logs[initiator].records());
        self.logs[responder].merge(&records);
        self.merged_through[responder][initiator] =
            self.merged_through[responder][initiator].max(stamp);
        let (stamp, records) = (self.logs[responder].lsn(), self.logs[responder].records());
        self.logs[initiator].merge(&records);
        self.merged_through[initiator][responder] =
            self.merged_through[initiator][responder].max(stamp);
    }

    /// Advert `from → to`: the receiver learns "`from` has seen my
    /// capture through LSN s" and then attempts GC gated on its **full**
    /// peer set (never a subset).
    fn ack_and_gc(&mut self, from: usize, to: usize) {
        if from == to {
            return;
        }
        let seen = self.merged_through[from][to];
        if seen > 0 {
            self.logs[to].record_ack(Self::peer_id(from), seen);
        }
        if self.gc_enabled {
            let _ = self.logs[to].expire_tombstones(&Self::peers_of(to));
        }
    }

    fn apply(&mut self, event: GcEvent) {
        match event {
            GcEvent::Op { replica, server, alive } => {
                let _ = self.logs[replica as usize]
                    .set_local(ServerId::new(u64::from(server)), alive);
            }
            GcEvent::Sync { initiator, responder } => {
                self.sync(initiator as usize, responder as usize);
            }
            GcEvent::AckAndGc { from, to } => self.ack_and_gc(from as usize, to as usize),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// **Expiry never resurrects a removed member.** Two 3-replica worlds
    /// replay an identical random interleaving of local ops, pairwise
    /// push–pull syncs, and ack adverts; one world honors the watermark
    /// GC, the other keeps every tombstone forever. Clocks, LSNs and
    /// version assignment evolve identically, so after both worlds
    /// converge the live memberships must be byte-equal — a stale join
    /// resurrected by a dropped tombstone (the three-replica hazard: an
    /// old-versioned record arriving *after* another peer's ack) would
    /// differ from the tombstones-forever reference.
    #[test]
    fn gc_never_changes_the_converged_membership(events in gc_events()) {
        let mut gc_world = GcWorld::new(true);
        let mut reference = GcWorld::new(false);
        for &event in &events {
            gc_world.apply(event);
            reference.apply(event);
        }
        // Converge both worlds: two rounds of all-pairs exchanges (one
        // round spreads every record everywhere; the second covers
        // chains through a middle replica), with GC still firing in the
        // GC world.
        for world in [&mut gc_world, &mut reference] {
            for _ in 0..2 {
                for a in 0..GC_REPLICAS {
                    for b in (a + 1)..GC_REPLICAS {
                        world.sync(a, b);
                    }
                }
            }
            for from in 0..GC_REPLICAS {
                for to in 0..GC_REPLICAS {
                    world.ack_and_gc(from, to);
                }
            }
        }
        // Within each world the whole set agrees...
        for i in 1..GC_REPLICAS {
            prop_assert_eq!(gc_world.logs[0].alive_ids(), gc_world.logs[i].alive_ids());
            prop_assert_eq!(reference.logs[0].alive_ids(), reference.logs[i].alive_ids());
        }
        // ...and across worlds the live membership is identical: GC
        // changed record retention, never a liveness verdict.
        prop_assert_eq!(gc_world.logs[0].alive_ids(), reference.logs[0].alive_ids());
        // Sanity: the GC world's logs never hold more records.
        for i in 0..GC_REPLICAS {
            prop_assert!(
                gc_world.logs[i].records().len() <= reference.logs[i].records().len()
            );
        }
    }
}

proptest! {
    // Engine-backed cases are heavier; fewer of them suffice (the pure
    // log properties above carry the combinatorial load).
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The signature-level statement of both properties: two replicas fed
    /// the same deltas twice and in opposite orders end **byte-identical**
    /// per-shard signatures — delta application at the engine level
    /// inherits the log's idempotence and commutativity.
    #[test]
    fn signatures_are_delta_order_and_repeat_invariant(
        d1 in records(),
        d2 in records(),
    ) {
        let a = ReplicatedEngine::new(ReplicaId::new(0), serve_config())
            .expect("valid config");
        let b = ReplicatedEngine::new(ReplicaId::new(1), serve_config())
            .expect("valid config");
        // a: D1, D2 — with D1 re-applied (gossip duplicate).
        a.merge(&d1).expect("capacity fits");
        a.merge(&d1).expect("capacity fits");
        a.merge(&d2).expect("capacity fits");
        // b: D2, D1.
        b.merge(&d2).expect("capacity fits");
        b.merge(&d1).expect("capacity fits");
        prop_assert_eq!(a.member_ids(), b.member_ids());
        let (sig_a, sig_b) = (a.shard_signatures(), b.shard_signatures());
        prop_assert_eq!(sig_a.len(), sig_b.len());
        for (ours, theirs) in sig_a.iter().zip(&sig_b) {
            prop_assert_eq!(ours.as_words(), theirs.as_words());
        }
        // And the engines themselves converged, not just the logs.
        for (snap_a, snap_b) in
            a.engine().snapshots().iter().zip(b.engine().snapshots().iter())
        {
            prop_assert_eq!(snap_a.member_ids(), snap_b.member_ids());
        }
    }
}
