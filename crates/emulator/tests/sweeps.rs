//! Integration tests for the emulator's experiment runners and reporting,
//! exercising realistic (if reduced) sweeps end to end.

use hdhash_emulator::report::{format_efficiency, format_mismatches, format_uniformity};
use hdhash_emulator::runner::{
    run_efficiency, run_robustness, run_uniformity, EfficiencyConfig, RobustnessConfig,
    RobustnessNoise, UniformityConfig,
};
use hdhash_emulator::AlgorithmKind;

#[test]
fn efficiency_sweep_produces_report() {
    let config = EfficiencyConfig {
        algorithms: AlgorithmKind::ALL.to_vec(),
        server_counts: vec![4, 16, 64],
        lookups: 400,
        batch: 128,
        seed: 1,
    };
    let samples = run_efficiency(&config);
    assert_eq!(samples.len(), AlgorithmKind::ALL.len() * 3);
    let report = format_efficiency(&samples);
    // One header plus one row per pool size; a column per algorithm.
    assert_eq!(report.lines().count(), 4);
    for kind in AlgorithmKind::ALL {
        assert!(report.contains(kind.name()), "missing column {kind}");
    }
    assert!(!report.contains(",-"), "grid must be complete");
}

#[test]
fn robustness_mcu_mode_full_grid() {
    let config = RobustnessConfig {
        algorithms: vec![AlgorithmKind::Consistent, AlgorithmKind::Hd],
        server_counts: vec![32, 64],
        bit_errors: vec![0, 10],
        lookups: 300,
        trials: 3,
        noise: RobustnessNoise::Mcu,
        seed: 2,
    };
    let samples = run_robustness(&config);
    assert_eq!(samples.len(), 2 * 2 * 2);
    for s in &samples {
        assert!(s.mismatch_fraction >= 0.0 && s.mismatch_fraction <= 1.0);
        assert_eq!(s.trials, 3);
        if s.algorithm == AlgorithmKind::Hd {
            assert_eq!(s.mismatch_fraction, 0.0, "HD must absorb MCU bursts");
        }
        if s.bit_errors == 0 {
            assert_eq!(s.mismatch_fraction, 0.0, "no noise, no mismatch");
        }
    }
    let report = format_mismatches(&samples);
    assert!(report.contains("# servers = 32"));
    assert!(report.contains("# servers = 64"));
}

#[test]
fn uniformity_sweep_over_all_algorithms() {
    let config = UniformityConfig {
        algorithms: vec![
            AlgorithmKind::Consistent,
            AlgorithmKind::Rendezvous,
            AlgorithmKind::Maglev,
            AlgorithmKind::Jump,
            AlgorithmKind::Hd,
        ],
        server_counts: vec![16],
        bit_errors: vec![0],
        lookups: 16_000,
        seed: 3,
    };
    let samples = run_uniformity(&config);
    assert_eq!(samples.len(), 5);
    let chi = |kind: AlgorithmKind| {
        samples.iter().find(|s| s.algorithm == kind).expect("present").chi_squared
    };
    // Pseudo-uniform families sit near the dof; positional families above.
    assert!(chi(AlgorithmKind::Rendezvous) < 60.0);
    assert!(chi(AlgorithmKind::Jump) < 60.0);
    assert!(chi(AlgorithmKind::Maglev) < 120.0);
    assert!(chi(AlgorithmKind::Hd) > chi(AlgorithmKind::Rendezvous));
    assert!(chi(AlgorithmKind::Consistent) > chi(AlgorithmKind::Rendezvous));
    let report = format_uniformity(&samples);
    assert!(report.starts_with("servers,"));
    assert!(report.lines().count() == 2);
}

#[test]
fn robustness_grows_with_error_count_for_rendezvous() {
    // Rendezvous's damage model is clean enough to assert monotonicity
    // of the *averaged* curve.
    let config = RobustnessConfig {
        algorithms: vec![AlgorithmKind::Rendezvous],
        server_counts: vec![64],
        bit_errors: vec![0, 2, 4, 8, 16],
        lookups: 2_000,
        trials: 12,
        noise: RobustnessNoise::Seu,
        seed: 4,
    };
    let samples = run_robustness(&config);
    let series: Vec<f64> = samples.iter().map(|s| s.mismatch_fraction).collect();
    for pair in series.windows(2) {
        assert!(
            pair[1] >= pair[0] * 0.7,
            "rendezvous curve should rise with errors: {series:?}"
        );
    }
    assert!(series.last().expect("non-empty") > &0.1, "16 errors over 64 words must bite");
}
