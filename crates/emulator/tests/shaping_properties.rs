//! Property-based tests for the arrival shapers and the trace round-trip
//! (the guarantees the scenario engine leans on — see `docs/SCENARIOS.md`).

use hdhash_emulator::shaping::{ArrivalProcess, ArrivalShape, BurstProcess, BurstShape};
use hdhash_emulator::{
    AlgorithmKind, Generator, HashTableModule, KeyDistribution, KeySampler, Trace, Workload,
    Zipf,
};
use hdhash_hashfn::{mix64, SplitMix64};
use proptest::prelude::*;

/// Emits `ticks` arrivals and returns the integer total.
fn emitted_total(shape: ArrivalShape, ticks: usize) -> usize {
    let mut process = ArrivalProcess::new(shape);
    (0..ticks).map(|_| process.next_tick()).sum()
}

proptest! {
    /// The fractional-carry accumulator conserves a constant rate: after
    /// `T` ticks the emitted count differs from `rate · T` by < 1.
    #[test]
    fn constant_shape_conserves_total(
        rate in 0.0f64..500.0,
        ticks in 1usize..2_000,
    ) {
        let shape = ArrivalShape::Constant { rate };
        let total = emitted_total(shape, ticks) as f64;
        prop_assert!((total - shape.offered(ticks)).abs() < 1.0,
            "total {total} vs integral {}", shape.offered(ticks));
    }

    /// Over any whole number of periods the diurnal curve's discrete
    /// integral is `mean · ticks` (the sinusoid sums to zero), and the
    /// process emits it to within one request.
    #[test]
    fn diurnal_integral_matches_mean_rate(
        mean in 0.5f64..300.0,
        amplitude in 0.0f64..1.0,
        period in 2usize..64,
        periods in 1usize..16,
    ) {
        let shape = ArrivalShape::Diurnal { mean, amplitude, period };
        let ticks = period * periods;
        let expected = mean * ticks as f64;
        // Discrete sin over equally spaced samples of whole periods sums
        // to zero; allow floating rounding plus the < 1 carry bound.
        prop_assert!((shape.offered(ticks) - expected).abs() < 1e-6 * expected.max(1.0));
        let total = emitted_total(shape, ticks) as f64;
        prop_assert!((total - expected).abs() < 1.5,
            "total {total} vs mean·ticks {expected}");
    }

    /// A flash crowd conserves total request count exactly:
    /// `base · T + (peak − base) · duration` when the crowd fits the run.
    #[test]
    fn flash_crowd_conserves_total(
        base in 0.0f64..200.0,
        extra in 0.0f64..2_000.0,
        start in 0usize..64,
        duration in 1usize..32,
        tail in 0usize..64,
    ) {
        let peak = base + extra;
        let ticks = start + duration + tail;
        let shape = ArrivalShape::FlashCrowd { base, peak, start, duration };
        let expected = base * ticks as f64 + (peak - base) * duration as f64;
        prop_assert!((shape.offered(ticks) - expected).abs() < 1e-6 * expected.max(1.0));
        let total = emitted_total(shape, ticks) as f64;
        prop_assert!((total - expected).abs() < 1.0,
            "total {total} vs conserved {expected}");
    }

    /// The Zipf sampler's empirical hot-key share matches the
    /// distribution's rank-1 probability (6σ binomial bound — astronomically
    /// unlikely to trip on a correct sampler).
    #[test]
    fn zipf_sampler_skew_matches_parameter(
        universe in 10usize..400,
        exponent in 0.6f64..1.6,
        seed in any::<u64>(),
    ) {
        const DRAWS: usize = 8_000;
        let zipf = Zipf::new(universe, exponent);
        let p1 = zipf.probability(1);
        let hot = mix64(1); // rank 1, scrambled the way the sampler emits keys
        let mut sampler =
            KeySampler::new(KeyDistribution::Zipf { universe, exponent }, seed);
        let hits = (0..DRAWS).filter(|_| sampler.next_key().get() == hot).count();
        let share = hits as f64 / DRAWS as f64;
        let sigma = (p1 * (1.0 - p1) / DRAWS as f64).sqrt();
        prop_assert!((share - p1).abs() < 6.0 * sigma + 0.005,
            "rank-1 share {share} vs p1 {p1} (σ {sigma})");
    }

    /// The streaming sampler is bit-identical to the batch generator for
    /// every distribution and seed.
    #[test]
    fn sampler_stream_equals_batch_generator(
        seed in any::<u64>(),
        lookups in 1usize..600,
        keys in prop_oneof![
            Just(KeyDistribution::Uniform),
            Just(KeyDistribution::Sequential),
            (2usize..256, 0.5f64..1.5)
                .prop_map(|(universe, exponent)| KeyDistribution::Zipf { universe, exponent }),
        ],
    ) {
        let workload = Workload { initial_servers: 0, lookups, keys, seed };
        let batch: Vec<_> = Generator::new(workload)
            .lookup_requests()
            .into_iter()
            .filter_map(|r| r.lookup_key())
            .collect();
        let mut sampler = KeySampler::new(keys, seed);
        let streamed: Vec<_> = (0..lookups).map(|_| sampler.next_key()).collect();
        prop_assert_eq!(streamed, batch);
    }

    /// Burst overlays are deterministic per seed and quantized to whole
    /// upsets.
    #[test]
    fn bursts_replay_and_quantize(
        seed in any::<u64>(),
        machines in 1usize..48,
        probes in 1usize..64,
    ) {
        let shape = BurstShape { machines, probes_per_upset: probes, ..BurstShape::default() };
        let run = || {
            let mut p = BurstProcess::new(shape, seed);
            (0..36).map(|_| p.next_tick()).collect::<Vec<_>>()
        };
        let a = run();
        prop_assert_eq!(&a, &run());
        prop_assert!(a.iter().all(|&n| n % probes == 0));
    }

    /// Trace round-trip: record → write → parse → replay. The parsed trace
    /// is request-identical and replays to the same deterministic counters
    /// through the emulator module.
    #[test]
    fn trace_text_round_trip_replays_identically(
        seed in any::<u64>(),
        servers in 1usize..24,
        lookups in 1usize..300,
    ) {
        let requests = Generator::new(Workload {
            initial_servers: servers,
            lookups,
            seed,
            ..Workload::default()
        })
        .requests();
        let trace = Trace::new("roundtrip", requests);
        let parsed = Trace::from_text(&trace.to_text()).expect("parse recorded trace");
        prop_assert_eq!(parsed.requests(), trace.requests());

        let mut module_a = HashTableModule::new(AlgorithmKind::Hd.build(32));
        let mut module_b = HashTableModule::new(AlgorithmKind::Hd.build(32));
        let original = trace.replay_report(&mut module_a);
        let replayed = parsed.replay_report(&mut module_b);
        prop_assert_eq!(original.counters, replayed.counters);
        prop_assert_eq!(original.counters.offered_lookups(), lookups);
    }

    /// A seeded RNG stream is self-consistent: two samplers with the same
    /// seed agree, different seeds disagree somewhere (sanity anchor for
    /// the scenario engine's salted seed streams).
    #[test]
    fn sampler_seed_sensitivity(seed in any::<u64>()) {
        let draw = |s: u64| {
            let mut rng = SplitMix64::new(s);
            (0..16).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        prop_assert_eq!(draw(seed), draw(seed));
        prop_assert_ne!(draw(seed), draw(seed ^ 1));
    }
}
