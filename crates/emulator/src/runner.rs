//! Experiment drivers regenerating the paper's figures.
//!
//! Each runner is a deterministic function of its configuration, built on
//! the generator + hash-table-module emulator:
//!
//! * [`run_efficiency`] — Figure 4 (average request handling duration vs
//!   pool size);
//! * [`run_robustness`] — Figure 5 (% mismatched requests vs bit errors);
//! * [`run_uniformity`] — Figure 6 (χ² against uniform vs pool size and
//!   bit errors).

use hdhash_table::{Assignment, NoisyTable, RequestKey, ServerId};

use crate::algorithms::AlgorithmKind;
use crate::generator::{Generator, KeyDistribution, Workload};
use crate::metrics::{EfficiencySample, MismatchSample, UniformitySample};
use crate::module::HashTableModule;
use crate::noise::NoisePlan;
use crate::request::Request;


/// Configuration of the efficiency experiment (paper §5.2).
#[derive(Debug, Clone, PartialEq)]
pub struct EfficiencyConfig {
    /// Algorithms to measure.
    pub algorithms: Vec<AlgorithmKind>,
    /// Pool sizes to sweep (the paper: powers of two, 2..=2048).
    pub server_counts: Vec<usize>,
    /// Lookups per measurement (the paper: 10 000).
    pub lookups: usize,
    /// Batch size for draining the module buffer (the paper: 256).
    pub batch: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Default for EfficiencyConfig {
    fn default() -> Self {
        Self {
            algorithms: AlgorithmKind::PAPER.to_vec(),
            server_counts: (1..=11).map(|e| 1usize << e).collect(),
            lookups: 10_000,
            batch: 256,
            seed: 0xF16_4,
        }
    }
}

/// Runs the efficiency experiment: for each algorithm and pool size, joins
/// the servers, then measures the average lookup latency over the
/// workload, drained through the module buffer in batches.
#[must_use]
pub fn run_efficiency(config: &EfficiencyConfig) -> Vec<EfficiencySample> {
    let mut samples = Vec::new();
    for &servers in &config.server_counts {
        let workload = Workload {
            initial_servers: servers,
            lookups: config.lookups,
            keys: KeyDistribution::Uniform,
            seed: config.seed,
        };
        let generator = Generator::new(workload);
        for &algorithm in &config.algorithms {
            let mut module = HashTableModule::new(algorithm.build(servers));
            // Join phase (untimed, as in the paper).
            let (_, join_stats) = module.execute(&generator.join_requests());
            debug_assert_eq!(join_stats.failures, 0);
            // Lookup phase through the batched buffer.
            module.enqueue(generator.lookup_requests());
            let mut lookups = 0;
            let mut lookup_time = std::time::Duration::ZERO;
            while module.pending() > 0 {
                let (_, stats) = module.drain_batch(config.batch);
                lookups += stats.lookups;
                lookup_time += stats.lookup_time;
            }
            samples.push(EfficiencySample {
                algorithm,
                servers,
                lookups,
                avg_lookup: if lookups == 0 {
                    std::time::Duration::ZERO
                } else {
                    lookup_time / lookups as u32
                },
            });
        }
    }
    samples
}

/// Which noise pattern the robustness experiment injects per trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RobustnessNoise {
    /// `bit_errors` independent single-bit flips (the Figure 5 x-axis).
    Seu,
    /// One burst of `bit_errors` adjacent bits (the "10-bit MCU" headline).
    Mcu,
}

/// Configuration of the robustness experiment (paper §5.3, Figure 5).
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessConfig {
    /// Algorithms to measure.
    pub algorithms: Vec<AlgorithmKind>,
    /// Pool sizes to test.
    pub server_counts: Vec<usize>,
    /// Bit-error counts to sweep (the paper: 0..=10).
    pub bit_errors: Vec<usize>,
    /// Lookups per trial (the paper: 10 000).
    pub lookups: usize,
    /// Independent noise trials to average per point.
    pub trials: usize,
    /// Noise pattern.
    pub noise: RobustnessNoise,
    /// Workload seed.
    pub seed: u64,
}

impl Default for RobustnessConfig {
    fn default() -> Self {
        Self {
            algorithms: AlgorithmKind::PAPER.to_vec(),
            server_counts: vec![512],
            bit_errors: (0..=10).collect(),
            lookups: 10_000,
            trials: 10,
            noise: RobustnessNoise::Seu,
            seed: 0xF16_5,
        }
    }
}

/// Runs the robustness experiment: the clean assignment of the workload is
/// the ground truth; each trial corrupts the table, re-captures the
/// assignment and counts mismatches, then restores the table.
#[must_use]
pub fn run_robustness(config: &RobustnessConfig) -> Vec<MismatchSample> {
    let mut samples = Vec::new();
    for &servers in &config.server_counts {
        let keys = shared_lookup_keys(servers, config.lookups, config.seed);
        for &algorithm in &config.algorithms {
            let mut table = algorithm.build(servers);
            join_all(&mut *table, servers);
            let reference =
                Assignment::capture(&*table, keys.iter().copied()).expect("pool is non-empty");
            for &bit_errors in &config.bit_errors {
                let mut mismatch_sum = 0.0;
                for trial in 0..config.trials {
                    let plan = match config.noise {
                        RobustnessNoise::Seu => NoisePlan::Seu { count: bit_errors },
                        RobustnessNoise::Mcu => NoisePlan::Mcu { length: bit_errors },
                    };
                    let noise_seed = config
                        .seed
                        .wrapping_add(hdhash_hashfn::mix64(
                            (trial as u64) << 32 | bit_errors as u64,
                        ));
                    plan.apply(&mut *table, noise_seed);
                    let noisy = Assignment::capture(&*table, keys.iter().copied())
                        .expect("pool is non-empty");
                    mismatch_sum += hdhash_table::remap_fraction(&reference, &noisy);
                    table.clear_noise();
                }
                samples.push(MismatchSample {
                    algorithm,
                    servers,
                    bit_errors,
                    trials: config.trials,
                    mismatch_fraction: mismatch_sum / config.trials as f64,
                });
            }
        }
    }
    samples
}

/// Configuration of the uniformity experiment (paper §5.3, Figure 6).
#[derive(Debug, Clone, PartialEq)]
pub struct UniformityConfig {
    /// Algorithms to measure (the paper plots consistent and HD; it omits
    /// rendezvous as perfectly uniform by construction).
    pub algorithms: Vec<AlgorithmKind>,
    /// Pool sizes to sweep.
    pub server_counts: Vec<usize>,
    /// Bit-error counts to sweep.
    pub bit_errors: Vec<usize>,
    /// Lookups to distribute per measurement.
    pub lookups: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Default for UniformityConfig {
    fn default() -> Self {
        Self {
            algorithms: vec![AlgorithmKind::Consistent, AlgorithmKind::Hd],
            server_counts: (1..=11).map(|e| 1usize << e).collect(),
            bit_errors: vec![0, 5, 10],
            lookups: 100_000,
            seed: 0xF16_6,
        }
    }
}

/// Runs the uniformity experiment: distributes the workload, counts
/// requests per *live* server and computes χ² against the uniform
/// expectation `E = |R| / |S|`. Requests mapped to identifiers outside the
/// live pool (possible for corrupted slot-array algorithms) lose their
/// mass, which the statistic correctly penalizes.
#[must_use]
pub fn run_uniformity(config: &UniformityConfig) -> Vec<UniformitySample> {
    let mut samples = Vec::new();
    for &servers in &config.server_counts {
        let keys = shared_lookup_keys(servers, config.lookups, config.seed);
        for &algorithm in &config.algorithms {
            let mut table = algorithm.build(servers);
            join_all(&mut *table, servers);
            for &bit_errors in &config.bit_errors {
                if bit_errors > 0 {
                    let noise_seed =
                        config.seed ^ hdhash_hashfn::mix64(bit_errors as u64 | 0xA5A5_0000);
                    NoisePlan::Seu { count: bit_errors }.apply(&mut *table, noise_seed);
                }
                let mut counts = vec![0usize; servers];
                for &key in &keys {
                    if let Ok(server) = table.lookup(key) {
                        // Count only live servers; corrupted identifiers
                        // fall outside and lose their mass.
                        if (server.get() as usize) < servers {
                            counts[server.get() as usize] += 1;
                        }
                    }
                }
                // The paper's statistic: E = |R| / |S| over all requests,
                // even those whose mass was corrupted away.
                let expected = config.lookups as f64 / servers as f64;
                let chi_squared = if counts.iter().sum::<usize>() == 0 {
                    f64::INFINITY
                } else {
                    counts
                        .iter()
                        .map(|&c| {
                            let d = c as f64 - expected;
                            d * d / expected
                        })
                        .sum()
                };
                samples.push(UniformitySample {
                    algorithm,
                    servers,
                    bit_errors,
                    lookups: config.lookups,
                    chi_squared,
                });
                table.clear_noise();
            }
        }
    }
    samples
}

/// The shared lookup key stream for one pool size.
pub(crate) fn shared_lookup_keys(
    servers: usize,
    lookups: usize,
    seed: u64,
) -> Vec<RequestKey> {
    let workload = Workload {
        initial_servers: servers,
        lookups,
        keys: KeyDistribution::Uniform,
        seed,
    };
    Generator::new(workload)
        .lookup_requests()
        .into_iter()
        .filter_map(|r| match r {
            Request::Lookup(k) => Some(k),
            _ => None,
        })
        .collect()
}

fn join_all(table: &mut (dyn NoisyTable + Send), servers: usize) {
    for i in 0..servers as u64 {
        table.join(ServerId::new(i)).expect("fresh server within capacity");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_produces_full_grid() {
        let config = EfficiencyConfig {
            algorithms: vec![AlgorithmKind::Consistent, AlgorithmKind::Rendezvous],
            server_counts: vec![4, 16],
            lookups: 500,
            batch: 128,
            seed: 1,
        };
        let samples = run_efficiency(&config);
        assert_eq!(samples.len(), 4);
        assert!(samples.iter().all(|s| s.lookups == 500));
    }

    #[test]
    fn efficiency_rendezvous_scales_linearly() {
        let config = EfficiencyConfig {
            algorithms: vec![AlgorithmKind::Rendezvous],
            server_counts: vec![8, 512],
            lookups: 3000,
            batch: 256,
            seed: 2,
        };
        let samples = run_efficiency(&config);
        let small = samples[0].avg_nanos();
        let large = samples[1].avg_nanos();
        // 64× the servers should cost clearly more than 4× the time.
        assert!(large > small * 4.0, "O(n) not visible: {small} vs {large}");
    }

    #[test]
    fn robustness_zero_errors_zero_mismatch() {
        let config = RobustnessConfig {
            algorithms: AlgorithmKind::PAPER.to_vec(),
            server_counts: vec![64],
            bit_errors: vec![0],
            lookups: 500,
            trials: 2,
            noise: RobustnessNoise::Seu,
            seed: 3,
        };
        for s in run_robustness(&config) {
            assert_eq!(s.mismatch_fraction, 0.0, "{}", s.algorithm);
        }
    }

    #[test]
    fn robustness_orders_algorithms_like_the_paper() {
        // The paper's Figure 5 ordering at 512 servers and ten bit errors:
        // consistent (≈12%) > rendezvous (≈4%) > hd (= 0).
        let config = RobustnessConfig {
            algorithms: AlgorithmKind::PAPER.to_vec(),
            server_counts: vec![512],
            bit_errors: vec![10],
            lookups: 2000,
            trials: 5,
            noise: RobustnessNoise::Seu,
            seed: 4,
        };
        let samples = run_robustness(&config);
        let get = |kind: AlgorithmKind| {
            samples
                .iter()
                .find(|s| s.algorithm == kind)
                .expect("present")
                .mismatch_fraction
        };
        let consistent = get(AlgorithmKind::Consistent);
        let rendezvous = get(AlgorithmKind::Rendezvous);
        let hd = get(AlgorithmKind::Hd);
        assert_eq!(hd, 0.0, "HD hashing must be unaffected");
        assert!(rendezvous > 0.0, "rendezvous should degrade mildly");
        assert!(consistent > rendezvous, "consistent should degrade most: {consistent} vs {rendezvous}");
    }

    #[test]
    fn uniformity_hd_beats_consistent_cleanly() {
        let config = UniformityConfig {
            algorithms: vec![AlgorithmKind::Consistent, AlgorithmKind::Hd],
            server_counts: vec![64],
            bit_errors: vec![0],
            lookups: 20_000,
            seed: 5,
        };
        let samples = run_uniformity(&config);
        let chi = |kind: AlgorithmKind| {
            samples.iter().find(|s| s.algorithm == kind).expect("present").chi_squared
        };
        // The paper's Figure 6: HD distributes more uniformly than
        // consistent hashing even without noise.
        assert!(chi(AlgorithmKind::Hd) < chi(AlgorithmKind::Consistent));
    }

    #[test]
    fn uniformity_noise_hurts_consistent_not_hd() {
        let config = UniformityConfig {
            algorithms: vec![AlgorithmKind::Consistent, AlgorithmKind::Hd],
            server_counts: vec![64],
            bit_errors: vec![0, 10],
            lookups: 20_000,
            seed: 6,
        };
        let samples = run_uniformity(&config);
        let chi = |kind: AlgorithmKind, errors: usize| {
            samples
                .iter()
                .find(|s| s.algorithm == kind && s.bit_errors == errors)
                .expect("present")
                .chi_squared
        };
        assert!(
            chi(AlgorithmKind::Consistent, 10) > chi(AlgorithmKind::Consistent, 0),
            "noise should worsen consistent hashing's uniformity"
        );
        let hd_clean = chi(AlgorithmKind::Hd, 0);
        let hd_noisy = chi(AlgorithmKind::Hd, 10);
        assert!(
            (hd_clean - hd_noisy).abs() < 1e-9,
            "HD uniformity must be unaffected by noise: {hd_clean} vs {hd_noisy}"
        );
    }

    #[test]
    fn runners_are_deterministic() {
        let config = RobustnessConfig {
            algorithms: vec![AlgorithmKind::Consistent],
            server_counts: vec![32],
            bit_errors: vec![5],
            lookups: 500,
            trials: 3,
            noise: RobustnessNoise::Seu,
            seed: 7,
        };
        assert_eq!(run_robustness(&config), run_robustness(&config));
    }
}
