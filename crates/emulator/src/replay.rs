//! Shared replay-outcome reporting: the emulator ↔ serve seam.
//!
//! A recorded [`Trace`] can be replayed two ways: through
//! the paper-figure emulator ([`HashTableModule`]) or through the live
//! serving engine (`hdhash-serve`'s `load::drive`). Before this module the
//! two worlds reported results in unrelated shapes — `ExecutionStats`
//! here, `LoadReport` there — so nothing could assert that the *same*
//! trace produces the *same* outcome on both sides. [`ReplayReport`] is
//! the common denominator: deterministic counters (equatable across
//! worlds) plus wall-clock measurements (reported, never compared).

use std::time::Duration;

use crate::metrics::LatencyProfile;
use crate::module::HashTableModule;
use crate::request::{Request, Response};
use crate::trace::Trace;

/// Deterministic outcome counters of a replayed request stream.
///
/// Every field is a pure function of the request stream and the table's
/// membership semantics — no wall-clock influence — so two replays of the
/// same trace through different substrates can be compared with `==`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplayCounters {
    /// Control (join/leave) requests executed.
    pub controls: usize,
    /// Control requests the table rejected (duplicate join, unknown
    /// leave).
    pub control_failures: usize,
    /// Lookup requests that completed with a response.
    pub lookups: usize,
    /// Lookups that completed with an error (e.g. an empty pool).
    pub lookup_failures: usize,
    /// Lookups shed before execution (open-loop backpressure; always zero
    /// for the emulator module, which executes everything).
    pub shed: usize,
    /// Lookups whose response never arrived within the reap timeout
    /// (always zero for the synchronous emulator module).
    pub timed_out: usize,
}

impl ReplayCounters {
    /// Lookups offered to the substrate (completed + shed + timed out).
    #[must_use]
    pub fn offered_lookups(&self) -> usize {
        self.lookups + self.shed + self.timed_out
    }
}

/// The outcome of one trace replay: comparable counters plus wall-clock
/// measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// Deterministic counters (compare these across substrates).
    pub counters: ReplayCounters,
    /// Wall time spent executing lookups.
    pub elapsed: Duration,
    /// Latency percentiles when the substrate records per-request
    /// latencies (the serve driver does; the emulator module reports only
    /// the aggregate and leaves this `None`).
    pub latency: Option<LatencyProfile>,
}

impl ReplayReport {
    /// Builds a report from a request stream and its aligned responses
    /// (one response per request, in order — the emulator module's
    /// contract).
    ///
    /// # Panics
    ///
    /// Panics if `requests` and `responses` differ in length.
    #[must_use]
    pub fn from_responses(
        requests: &[Request],
        responses: &[Response],
        elapsed: Duration,
    ) -> Self {
        assert_eq!(
            requests.len(),
            responses.len(),
            "a module replay answers every request exactly once"
        );
        let mut counters = ReplayCounters::default();
        for (request, response) in requests.iter().zip(responses) {
            let failed = matches!(response, Response::Failed(_));
            if request.is_control() {
                counters.controls += 1;
                counters.control_failures += usize::from(failed);
            } else {
                counters.lookups += 1;
                counters.lookup_failures += usize::from(failed);
            }
        }
        Self { counters, elapsed, latency: None }
    }
}

impl Trace {
    /// Replays the trace on an emulator module and reports the shared
    /// outcome shape (see [`ReplayReport`]).
    pub fn replay_report(&self, module: &mut HashTableModule) -> ReplayReport {
        let (responses, stats) = self.replay(module);
        let report = ReplayReport::from_responses(self.requests(), &responses, stats.lookup_time);
        debug_assert_eq!(report.counters.lookups, stats.lookups);
        debug_assert_eq!(report.counters.controls, stats.controls);
        debug_assert_eq!(
            report.counters.lookup_failures + report.counters.control_failures,
            stats.failures
        );
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::AlgorithmKind;
    use crate::generator::{Generator, Workload};

    fn sample_trace() -> Trace {
        let requests = Generator::new(Workload {
            initial_servers: 8,
            lookups: 120,
            ..Workload::default()
        })
        .requests();
        Trace::new("replay-sample", requests)
    }

    #[test]
    fn module_replay_report_counts() {
        let trace = sample_trace();
        let mut module = HashTableModule::new(AlgorithmKind::Hd.build(8));
        let report = trace.replay_report(&mut module);
        assert_eq!(
            report.counters,
            ReplayCounters { controls: 8, lookups: 120, ..ReplayCounters::default() }
        );
        assert_eq!(report.counters.offered_lookups(), 120);
        assert!(report.latency.is_none());
    }

    #[test]
    fn control_failures_are_separated_from_lookup_failures() {
        use hdhash_table::{RequestKey, ServerId};
        // Lookup on an empty pool fails; the duplicate join fails too.
        let requests = vec![
            Request::Lookup(RequestKey::new(7)),
            Request::Join(ServerId::new(1)),
            Request::Join(ServerId::new(1)),
            Request::Lookup(RequestKey::new(8)),
        ];
        let trace = Trace::new("failures", requests);
        let mut module = HashTableModule::new(AlgorithmKind::Consistent.build(4));
        let report = trace.replay_report(&mut module);
        assert_eq!(report.counters.controls, 2);
        assert_eq!(report.counters.control_failures, 1);
        assert_eq!(report.counters.lookups, 2);
        assert_eq!(report.counters.lookup_failures, 1);
    }

    #[test]
    #[should_panic(expected = "exactly once")]
    fn mismatched_lengths_panic() {
        let _ = ReplayReport::from_responses(
            &[Request::Lookup(hdhash_table::RequestKey::new(1))],
            &[],
            Duration::ZERO,
        );
    }

}
