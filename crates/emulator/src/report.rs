//! Plain-text and CSV rendering of experiment series.
//!
//! The figure binaries in `hdhash-bench` print these tables; the text
//! format pivots each series into one row per x-axis value and one column
//! per algorithm, matching how the paper's figures are read.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::algorithms::AlgorithmKind;
use crate::correlated::TimelineSample;
use crate::metrics::{EfficiencySample, MismatchSample, UniformitySample};

fn algorithms_in<'a, T, F>(samples: &'a [T], f: F) -> Vec<AlgorithmKind>
where
    F: Fn(&T) -> AlgorithmKind + 'a,
{
    let mut seen = Vec::new();
    for s in samples {
        let a = f(s);
        if !seen.contains(&a) {
            seen.push(a);
        }
    }
    seen
}

/// Formats Figure 4 data: average request handling duration (µs) per pool
/// size and algorithm.
#[must_use]
pub fn format_efficiency(samples: &[EfficiencySample]) -> String {
    let algorithms = algorithms_in(samples, |s| s.algorithm);
    let servers: BTreeSet<usize> = samples.iter().map(|s| s.servers).collect();
    let mut out = String::from("servers");
    for a in &algorithms {
        let _ = write!(out, ",{a}_us");
    }
    out.push('\n');
    for &n in &servers {
        let _ = write!(out, "{n}");
        for &a in &algorithms {
            match samples.iter().find(|s| s.servers == n && s.algorithm == a) {
                Some(s) => {
                    let _ = write!(out, ",{:.3}", s.avg_nanos() / 1000.0);
                }
                None => out.push_str(",-"),
            }
        }
        out.push('\n');
    }
    out
}

/// Formats Figure 5 data: mismatch percentage per bit-error count, one
/// block per pool size.
#[must_use]
pub fn format_mismatches(samples: &[MismatchSample]) -> String {
    let algorithms = algorithms_in(samples, |s| s.algorithm);
    let servers: BTreeSet<usize> = samples.iter().map(|s| s.servers).collect();
    let mut out = String::new();
    for &n in &servers {
        let _ = writeln!(out, "# servers = {n}");
        out.push_str("bit_errors");
        for a in &algorithms {
            let _ = write!(out, ",{a}_pct");
        }
        out.push('\n');
        let errors: BTreeSet<usize> =
            samples.iter().filter(|s| s.servers == n).map(|s| s.bit_errors).collect();
        for &e in &errors {
            let _ = write!(out, "{e}");
            for &a in &algorithms {
                match samples
                    .iter()
                    .find(|s| s.servers == n && s.bit_errors == e && s.algorithm == a)
                {
                    Some(s) => {
                        let _ = write!(out, ",{:.3}", s.mismatch_percent());
                    }
                    None => out.push_str(",-"),
                }
            }
            out.push('\n');
        }
    }
    out
}

/// Formats Figure 6 data: χ² per pool size, one column per
/// (algorithm, bit-error) series.
#[must_use]
pub fn format_uniformity(samples: &[UniformitySample]) -> String {
    let algorithms = algorithms_in(samples, |s| s.algorithm);
    let servers: BTreeSet<usize> = samples.iter().map(|s| s.servers).collect();
    let errors: BTreeSet<usize> = samples.iter().map(|s| s.bit_errors).collect();
    let mut out = String::from("servers");
    for &a in &algorithms {
        for &e in &errors {
            let _ = write!(out, ",{a}_e{e}");
        }
    }
    out.push('\n');
    for &n in &servers {
        let _ = write!(out, "{n}");
        for &a in &algorithms {
            for &e in &errors {
                match samples
                    .iter()
                    .find(|s| s.servers == n && s.algorithm == a && s.bit_errors == e)
                {
                    Some(s) => {
                        let _ = write!(out, ",{:.2}", s.chi_squared);
                    }
                    None => out.push_str(",-"),
                }
            }
        }
        out.push('\n');
    }
    out
}

/// Formats Figure 7 data: cumulative mismatch percentage per month, one
/// column per algorithm, with error months marked.
#[must_use]
pub fn format_timeline(samples: &[TimelineSample]) -> String {
    let algorithms = algorithms_in(samples, |s| s.algorithm);
    let months: BTreeSet<usize> = samples.iter().map(|s| s.month).collect();
    let mut out = String::from("month,errored,bits");
    for a in &algorithms {
        let _ = write!(out, ",{a}_pct");
    }
    out.push('\n');
    for &m in &months {
        let row: Vec<&TimelineSample> = samples.iter().filter(|s| s.month == m).collect();
        let errored = row.first().is_some_and(|s| s.errored);
        let bits = row.first().map_or(0, |s| s.cumulative_bits);
        let _ = write!(out, "{m},{},{bits}", u8::from(errored));
        for &a in &algorithms {
            match row.iter().find(|s| s.algorithm == a) {
                Some(s) => {
                    let _ = write!(out, ",{:.3}", s.mismatch_fraction * 100.0);
                }
                None => out.push_str(",-"),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn efficiency_table_shape() {
        let samples = vec![
            EfficiencySample {
                algorithm: AlgorithmKind::Consistent,
                servers: 2,
                lookups: 10,
                avg_lookup: Duration::from_nanos(1500),
            },
            EfficiencySample {
                algorithm: AlgorithmKind::Hd,
                servers: 2,
                lookups: 10,
                avg_lookup: Duration::from_micros(2),
            },
        ];
        let text = format_efficiency(&samples);
        assert!(text.starts_with("servers,consistent_us,hd_us"));
        assert!(text.contains("2,1.500,2.000"));
    }

    #[test]
    fn mismatch_table_blocks_per_pool() {
        let mk = |servers, bit_errors, pct| MismatchSample {
            algorithm: AlgorithmKind::Rendezvous,
            servers,
            bit_errors,
            trials: 1,
            mismatch_fraction: pct,
        };
        let text = format_mismatches(&[mk(128, 0, 0.0), mk(128, 10, 0.04), mk(512, 10, 0.02)]);
        assert!(text.contains("# servers = 128"));
        assert!(text.contains("# servers = 512"));
        assert!(text.contains("10,4.000"));
    }

    #[test]
    fn uniformity_table_columns() {
        let mk = |a, e, chi| UniformitySample {
            algorithm: a,
            servers: 16,
            bit_errors: e,
            lookups: 100,
            chi_squared: chi,
        };
        let text = format_uniformity(&[
            mk(AlgorithmKind::Consistent, 0, 30.0),
            mk(AlgorithmKind::Hd, 0, 12.0),
        ]);
        assert!(text.starts_with("servers,consistent_e0,hd_e0"));
        assert!(text.contains("16,30.00,12.00"));
    }

    #[test]
    fn timeline_table_shape() {
        let mk = |a, month, errored, pct| TimelineSample {
            algorithm: a,
            month,
            errored,
            cumulative_bits: if errored { month } else { 0 },
            mismatch_fraction: pct,
        };
        let text = format_timeline(&[
            mk(AlgorithmKind::Consistent, 1, false, 0.0),
            mk(AlgorithmKind::Hd, 1, false, 0.0),
            mk(AlgorithmKind::Consistent, 2, true, 0.045),
            mk(AlgorithmKind::Hd, 2, true, 0.0),
        ]);
        assert!(text.starts_with("month,errored,bits,consistent_pct,hd_pct"));
        assert!(text.contains("1,0,0,0.000,0.000"));
        assert!(text.contains("2,1,2,4.500,0.000"));
    }

    #[test]
    fn missing_cells_render_dashes() {
        let samples = vec![EfficiencySample {
            algorithm: AlgorithmKind::Modular,
            servers: 4,
            lookups: 1,
            avg_lookup: Duration::ZERO,
        }];
        let mut extended = samples.clone();
        extended.push(EfficiencySample {
            algorithm: AlgorithmKind::Hd,
            servers: 8,
            lookups: 1,
            avg_lookup: Duration::ZERO,
        });
        let text = format_efficiency(&extended);
        assert!(text.contains("4,0.000,-"));
        assert!(text.contains("8,-,0.000"));
    }
}
