//! # hdhash-emulator — the paper's emulation framework
//!
//! "We have created a purpose built emulation framework to empirically
//! verify our results. The emulator consists of two modules, a hash table
//! and a generator. The generator emulates the requests from the outside
//! world being sent to the hash table. The hash table module reads incoming
//! requests from a buffer and uses a hashing algorithm to map them to an
//! available server. Servers are added and removed using two special case
//! requests, a join and leave request […]. This functional emulator can be
//! used to determine the computational efficiency of various hashing
//! algorithms as well as their robustness to memory errors." (paper §5.1)
//!
//! This crate reproduces that framework:
//!
//! * [`request`] — the request vocabulary (join / leave / lookup);
//! * [`generator`] — deterministic workload generators (uniform, Zipf,
//!   churn schedules) feeding the shared buffer;
//! * [`buffer`] / [`concurrent`] — the bounded shared request buffer and
//!   the literal two-thread generator/module architecture;
//! * [`module`] — the buffered hash table module executing requests;
//! * [`algorithms`] — a factory over every [`NoisyTable`] in the workspace
//!   (modular, consistent, rendezvous, HD serial / parallel);
//! * [`noise`] — noise-injection plans (SEU, MCU bursts, the Ibe et al.
//!   22 nm mixture);
//! * [`stats`] — Pearson's χ² goodness-of-fit machinery (Figure 6's
//!   metric), including p-values via the regularized incomplete gamma;
//! * [`metrics`] / [`runner`] — the experiment drivers regenerating the
//!   efficiency (Fig. 4), robustness (Fig. 5) and uniformity (Fig. 6)
//!   series;
//! * [`shaping`] — open-loop arrival curves (constant / diurnal / flash
//!   crowd), streaming key samplers and correlated probe bursts for the
//!   serving layer's scenario engine;
//! * [`replay`] — the shared replay-outcome shape letting one recorded
//!   trace be compared across the emulator module and the live engine;
//! * [`report`] — plain-text and CSV rendering of result series.
//!
//! [`NoisyTable`]: hdhash_table::NoisyTable

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithms;
pub mod buffer;
pub mod concurrent;
pub mod correlated;
pub mod generator;
pub mod metrics;
pub mod module;
pub mod noise;
pub mod replay;
pub mod report;
pub mod request;
pub mod runner;
pub mod shaping;
pub mod stats;
pub mod trace;
pub mod zipf;

pub use algorithms::AlgorithmKind;
pub use buffer::RequestBuffer;
pub use concurrent::{run_concurrent, ConcurrentRunReport};
pub use correlated::{CorrelatedErrorModel, CorrelatedErrorProcess, TimelineConfig};
pub use generator::{Generator, KeyDistribution, Workload};
pub use metrics::{
    EfficiencySample, LatencyProfile, MismatchSample, ThroughputSample, UniformitySample,
};
pub use module::HashTableModule;
pub use noise::NoisePlan;
pub use replay::{ReplayCounters, ReplayReport};
pub use request::Request;
pub use runner::{EfficiencyConfig, RobustnessConfig, UniformityConfig};
pub use shaping::{ArrivalProcess, ArrivalShape, BurstProcess, BurstShape, KeySampler};
pub use trace::Trace;
pub use zipf::Zipf;
