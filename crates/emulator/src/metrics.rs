//! Result-sample types produced by the experiment runners.

use std::time::Duration;

use crate::algorithms::AlgorithmKind;

/// One point of the efficiency experiment (paper Figure 4): the average
/// request handling duration for one algorithm at one pool size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EfficiencySample {
    /// Which algorithm was measured.
    pub algorithm: AlgorithmKind,
    /// Number of servers in the pool.
    pub servers: usize,
    /// Number of lookups measured.
    pub lookups: usize,
    /// Average wall time per lookup.
    pub avg_lookup: Duration,
}

impl EfficiencySample {
    /// Average lookup time in nanoseconds.
    #[must_use]
    pub fn avg_nanos(&self) -> f64 {
        self.avg_lookup.as_nanos() as f64
    }
}

/// One point of the robustness experiment (paper Figure 5): the fraction
/// of requests mapped to the wrong server under injected bit errors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MismatchSample {
    /// Which algorithm was measured.
    pub algorithm: AlgorithmKind,
    /// Number of servers in the pool.
    pub servers: usize,
    /// Number of bit errors injected per trial.
    pub bit_errors: usize,
    /// Number of independent noise trials averaged.
    pub trials: usize,
    /// Mean fraction of mismatched requests over the trials, in `[0, 1]`.
    pub mismatch_fraction: f64,
}

impl MismatchSample {
    /// The mismatch fraction as a percentage.
    #[must_use]
    pub fn mismatch_percent(&self) -> f64 {
        self.mismatch_fraction * 100.0
    }
}

/// One point of the uniformity experiment (paper Figure 6): Pearson's χ²
/// of the observed request distribution against uniform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformitySample {
    /// Which algorithm was measured.
    pub algorithm: AlgorithmKind,
    /// Number of servers in the pool.
    pub servers: usize,
    /// Number of bit errors injected before measuring.
    pub bit_errors: usize,
    /// Number of lookups distributed.
    pub lookups: usize,
    /// The χ² statistic (lower is more uniform).
    pub chi_squared: f64,
}

impl UniformitySample {
    /// The χ² p-value against `servers − 1` degrees of freedom.
    ///
    /// # Panics
    ///
    /// Panics if `servers < 2`.
    #[must_use]
    pub fn p_value(&self) -> f64 {
        crate::stats::chi_squared_p_value(self.chi_squared, self.servers - 1)
    }
}

/// Latency percentiles of a lookup stream.
///
/// Mean lookup time (Figure 4's y-axis) hides tail behaviour, and load
/// balancers live and die by their tails: one slow lookup delays a whole
/// batch. This profile reports nearest-rank percentiles alongside the
/// mean so the efficiency binaries can print both.
///
/// # Examples
///
/// ```
/// use hdhash_emulator::LatencyProfile;
/// use std::time::Duration;
///
/// let samples: Vec<Duration> = (1..=100).map(Duration::from_micros).collect();
/// let profile = LatencyProfile::from_durations(samples).expect("non-empty");
/// assert_eq!(profile.p50, Duration::from_micros(50));
/// assert_eq!(profile.p99, Duration::from_micros(99));
/// assert_eq!(profile.max, Duration::from_micros(100));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyProfile {
    /// Number of samples profiled.
    pub samples: usize,
    /// Median latency (50th percentile, nearest rank).
    pub p50: Duration,
    /// 90th percentile.
    pub p90: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Worst observed latency.
    pub max: Duration,
}

impl LatencyProfile {
    /// Profiles a set of latency samples; `None` if empty.
    #[must_use]
    pub fn from_durations(mut samples: Vec<Duration>) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        samples.sort_unstable();
        let nearest_rank = |q: f64| {
            // Nearest-rank percentile: the ⌈q·n⌉-th smallest sample.
            let rank = (q * samples.len() as f64).ceil() as usize;
            samples[rank.clamp(1, samples.len()) - 1]
        };
        Some(Self {
            samples: samples.len(),
            p50: nearest_rank(0.50),
            p90: nearest_rank(0.90),
            p99: nearest_rank(0.99),
            max: *samples.last().expect("non-empty"),
        })
    }

    /// The p99 / p50 tail ratio (1.0 for perfectly flat latency); `None`
    /// when the median is zero.
    #[must_use]
    pub fn tail_ratio(&self) -> Option<f64> {
        if self.p50.is_zero() {
            None
        } else {
            Some(self.p99.as_secs_f64() / self.p50.as_secs_f64())
        }
    }
}

/// A completed-requests-over-wall-time measurement, the unit the serving
/// layer's throughput benchmarks report.
///
/// # Examples
///
/// ```
/// use hdhash_emulator::metrics::ThroughputSample;
/// use std::time::Duration;
///
/// let s = ThroughputSample { requests: 10_000, elapsed: Duration::from_millis(500) };
/// assert_eq!(s.requests_per_sec(), 20_000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThroughputSample {
    /// Requests completed during the window.
    pub requests: usize,
    /// Wall time of the window.
    pub elapsed: Duration,
}

impl ThroughputSample {
    /// Completed requests per second; zero for an empty window.
    #[must_use]
    pub fn requests_per_sec(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.requests as f64 / self.elapsed.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_sample_rates() {
        let s = ThroughputSample { requests: 300, elapsed: Duration::from_secs(2) };
        assert_eq!(s.requests_per_sec(), 150.0);
        let zero = ThroughputSample { requests: 300, elapsed: Duration::ZERO };
        assert_eq!(zero.requests_per_sec(), 0.0);
    }

    #[test]
    fn efficiency_nanos() {
        let s = EfficiencySample {
            algorithm: AlgorithmKind::Hd,
            servers: 8,
            lookups: 100,
            avg_lookup: Duration::from_micros(3),
        };
        assert_eq!(s.avg_nanos(), 3000.0);
    }

    #[test]
    fn mismatch_percent() {
        let s = MismatchSample {
            algorithm: AlgorithmKind::Consistent,
            servers: 512,
            bit_errors: 10,
            trials: 5,
            mismatch_fraction: 0.12,
        };
        assert!((s.mismatch_percent() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn uniformity_p_value() {
        let s = UniformitySample {
            algorithm: AlgorithmKind::Hd,
            servers: 64,
            bit_errors: 0,
            lookups: 6400,
            chi_squared: 63.0,
        };
        let p = s.p_value();
        assert!(p > 0.2 && p < 0.8, "χ² ≈ dof should be unremarkable: p={p}");
    }

    #[test]
    fn latency_profile_percentiles() {
        let samples: Vec<Duration> = (1..=1000).map(Duration::from_nanos).collect();
        let p = LatencyProfile::from_durations(samples).expect("non-empty");
        assert_eq!(p.samples, 1000);
        assert_eq!(p.p50, Duration::from_nanos(500));
        assert_eq!(p.p90, Duration::from_nanos(900));
        assert_eq!(p.p99, Duration::from_nanos(990));
        assert_eq!(p.max, Duration::from_nanos(1000));
        let ratio = p.tail_ratio().expect("non-zero median");
        assert!((ratio - 1.98).abs() < 0.01, "tail ratio {ratio}");
    }

    #[test]
    fn latency_profile_edge_cases() {
        assert!(LatencyProfile::from_durations(Vec::new()).is_none());
        let single =
            LatencyProfile::from_durations(vec![Duration::from_micros(3)]).expect("non-empty");
        assert_eq!(single.p50, Duration::from_micros(3));
        assert_eq!(single.p99, Duration::from_micros(3));
        assert_eq!(single.max, Duration::from_micros(3));
        // Unsorted input is sorted internally.
        let unsorted = LatencyProfile::from_durations(vec![
            Duration::from_nanos(30),
            Duration::from_nanos(10),
            Duration::from_nanos(20),
        ])
        .expect("non-empty");
        assert_eq!(unsorted.p50, Duration::from_nanos(20));
        // A zero median yields no tail ratio.
        let zeros = LatencyProfile::from_durations(vec![Duration::ZERO; 4]).expect("non-empty");
        assert!(zeros.tail_ratio().is_none());
    }
}
