//! The two-thread emulator: a generator thread feeding the hash table
//! module through the shared buffer.
//!
//! The paper's framework is explicitly two modules — "the generator
//! emulates the requests from the outside world being sent to the hash
//! table; the hash table module reads incoming requests from a buffer".
//! [`run_concurrent`] realizes that architecture literally: a producer
//! thread pushes the workload into a bounded [`RequestBuffer`] while this
//! thread's consumer drains and executes batches until the stream closes.

use crate::buffer::RequestBuffer;
use crate::module::{ExecutionStats, HashTableModule};
use crate::request::{Request, Response};

/// Outcome of a concurrent emulator run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConcurrentRunReport {
    /// Total requests executed.
    pub executed: usize,
    /// Aggregated execution statistics.
    pub stats: ExecutionStats,
    /// Largest backlog the buffer reached (bounded by the buffer
    /// capacity).
    pub peak_backlog: usize,
}

/// Drives `module` with `requests` produced by a separate generator
/// thread through a buffer of `capacity` requests, executing batches of
/// `batch`.
///
/// Returns the aggregate statistics; responses are folded into them
/// (`failures` counts error responses).
///
/// # Panics
///
/// Panics if `batch == 0` (buffer capacity is validated by
/// [`RequestBuffer::new`]).
pub fn run_concurrent(
    module: &mut HashTableModule,
    requests: &[Request],
    batch: usize,
    capacity: usize,
) -> ConcurrentRunReport {
    assert!(batch > 0, "batch size must be positive");
    let buffer = RequestBuffer::new(capacity);

    let mut executed = 0usize;
    let mut stats = ExecutionStats::default();

    crossbeam::thread::scope(|scope| {
        let producer_buffer = &buffer;
        scope.spawn(move |_| {
            // The generator thread: stream the workload in, then hang up.
            for chunk in requests.chunks(batch.max(1)) {
                producer_buffer.push_chunk(chunk);
            }
            producer_buffer.close();
        });

        // The hash table module thread (here: the scope owner).
        while let Some(drained) = buffer.pop_batch(batch) {
            let (responses, batch_stats) = module.execute(&drained);
            executed += responses.len();
            debug_assert_eq!(
                responses.iter().filter(|r| matches!(r, Response::Failed(_))).count(),
                batch_stats.failures
            );
            stats.lookups += batch_stats.lookups;
            stats.controls += batch_stats.controls;
            stats.failures += batch_stats.failures;
            stats.lookup_time += batch_stats.lookup_time;
        }
    })
    .expect("emulator threads do not panic");

    ConcurrentRunReport { executed, stats, peak_backlog: buffer.peak_backlog() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::AlgorithmKind;
    use crate::generator::{Generator, Workload};

    #[test]
    fn concurrent_run_executes_everything() {
        let workload = Workload { initial_servers: 16, lookups: 3_000, ..Workload::default() };
        let requests = Generator::new(workload).requests();
        let mut module = HashTableModule::new(AlgorithmKind::Consistent.build(32));
        let report = run_concurrent(&mut module, &requests, 256, 1024);
        assert_eq!(report.executed, requests.len());
        assert_eq!(report.stats.failures, 0);
        assert_eq!(report.stats.lookups, 3_000);
        assert!(report.peak_backlog <= 1024);
    }

    #[test]
    fn tight_buffer_still_completes() {
        // Backlog bound far below the workload size: producer must block
        // and resume correctly.
        let workload = Workload { initial_servers: 4, lookups: 2_000, ..Workload::default() };
        let requests = Generator::new(workload).requests();
        let mut module = HashTableModule::new(AlgorithmKind::Modular.build(8));
        let report = run_concurrent(&mut module, &requests, 16, 32);
        assert_eq!(report.executed, requests.len());
        assert!(report.peak_backlog <= 32, "bound violated: {}", report.peak_backlog);
    }

    #[test]
    fn concurrent_matches_sequential_state() {
        let workload = Workload { initial_servers: 8, lookups: 500, ..Workload::default() };
        let requests = Generator::new(workload).requests();

        let mut sequential = HashTableModule::new(AlgorithmKind::Hd.build(16));
        let (seq_responses, _) = sequential.execute(&requests);

        let mut concurrent = HashTableModule::new(AlgorithmKind::Hd.build(16));
        let report = run_concurrent(&mut concurrent, &requests, 128, 512);
        assert_eq!(report.executed, seq_responses.len());
        for k in 0..100u64 {
            let key = hdhash_table::RequestKey::new(k);
            assert_eq!(
                sequential.table().lookup(key).expect("non-empty"),
                concurrent.table().lookup(key).expect("non-empty")
            );
        }
    }

    #[test]
    fn all_algorithms_survive_concurrent_churn() {
        let workload = Workload { initial_servers: 12, lookups: 1_000, ..Workload::default() };
        let requests = Generator::new(workload).churn_requests(6);
        for kind in AlgorithmKind::ALL {
            let mut module = HashTableModule::new(kind.build(32));
            let report = run_concurrent(&mut module, &requests, 64, 256);
            assert_eq!(report.stats.failures, 0, "{kind}");
            assert_eq!(report.stats.lookups, 1_000, "{kind}");
        }
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_panics() {
        let mut module = HashTableModule::new(AlgorithmKind::Modular.build(4));
        let _ = run_concurrent(&mut module, &[], 0, 10);
    }
}
