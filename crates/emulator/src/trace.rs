//! Workload traces: record a request stream once, replay it anywhere.
//!
//! The paper's experiments hinge on feeding the *identical* request
//! stream to every algorithm. Inside one process the generator's
//! determinism guarantees that; a trace file extends the guarantee across
//! processes, machines and repository versions — the emulator equivalent
//! of publishing a benchmark's input data. The format is a line-oriented
//! text file (one request per line) so traces diff cleanly and can be
//! written by hand:
//!
//! ```text
//! # hdhash-trace v1 name=my-workload
//! join 0
//! join 1
//! lookup 12345
//! leave 0
//! ```

use hdhash_table::{RequestKey, ServerId};

use crate::module::{ExecutionStats, HashTableModule};
use crate::request::{Request, Response};

/// Magic first-line prefix of the trace text format.
const HEADER_PREFIX: &str = "# hdhash-trace v1";

/// A recorded request stream with a human-readable name.
///
/// # Examples
///
/// ```
/// use hdhash_emulator::{Generator, Trace, Workload};
///
/// let requests = Generator::new(Workload {
///     initial_servers: 4,
///     lookups: 16,
///     ..Workload::default()
/// })
/// .requests();
/// let trace = Trace::new("quick", requests);
/// let text = trace.to_text();
/// let back = Trace::from_text(&text)?;
/// assert_eq!(back, trace);
/// # Ok::<(), hdhash_emulator::trace::TraceParseError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Trace {
    name: String,
    requests: Vec<Request>,
}

impl Trace {
    /// Wraps a request stream under a name.
    ///
    /// # Panics
    ///
    /// Panics if `name` contains whitespace or is empty (names embed in
    /// the single-line header).
    #[must_use]
    pub fn new<S: Into<String>>(name: S, requests: Vec<Request>) -> Self {
        let name = name.into();
        assert!(
            !name.is_empty() && !name.contains(char::is_whitespace),
            "trace names must be non-empty and whitespace-free"
        );
        Self { name, requests }
    }

    /// The trace name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The recorded requests.
    #[must_use]
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Number of recorded requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Renders the trace in the line-oriented text format.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(16 * self.requests.len() + 64);
        out.push_str(HEADER_PREFIX);
        out.push_str(" name=");
        out.push_str(&self.name);
        out.push('\n');
        for request in &self.requests {
            match request {
                Request::Join(s) => {
                    out.push_str("join ");
                    out.push_str(&s.get().to_string());
                }
                Request::Leave(s) => {
                    out.push_str("leave ");
                    out.push_str(&s.get().to_string());
                }
                Request::Lookup(k) => {
                    out.push_str("lookup ");
                    out.push_str(&k.get().to_string());
                }
            }
            out.push('\n');
        }
        out
    }

    /// Parses a trace from the text format.
    ///
    /// Blank lines and `#`-comment lines after the header are skipped.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceParseError`] naming the offending line when the
    /// header is missing or a line is not a valid request.
    pub fn from_text(text: &str) -> Result<Self, TraceParseError> {
        let mut lines = text.lines().enumerate();
        let name = match lines.next() {
            Some((_, first)) if first.starts_with(HEADER_PREFIX) => first
                .split_once("name=")
                .map(|(_, n)| n.trim().to_string())
                .filter(|n| !n.is_empty())
                .ok_or(TraceParseError::MissingName)?,
            _ => return Err(TraceParseError::MissingHeader),
        };
        let mut requests = Vec::new();
        for (index, line) in lines {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (directive, argument) =
                line.split_once(' ').ok_or(TraceParseError::MalformedLine { line: index + 1 })?;
            let value: u64 = argument
                .trim()
                .parse()
                .map_err(|_| TraceParseError::InvalidNumber { line: index + 1 })?;
            requests.push(match directive {
                "join" => Request::Join(ServerId::new(value)),
                "leave" => Request::Leave(ServerId::new(value)),
                "lookup" => Request::Lookup(RequestKey::new(value)),
                _ => return Err(TraceParseError::UnknownDirective { line: index + 1 }),
            });
        }
        Ok(Self { name, requests })
    }

    /// Replays the trace on a hash table module, returning the responses
    /// and execution statistics.
    pub fn replay(&self, module: &mut HashTableModule) -> (Vec<Response>, ExecutionStats) {
        module.execute(&self.requests)
    }
}

/// Errors produced when parsing the trace text format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceParseError {
    /// The first line is not the `# hdhash-trace v1` header.
    MissingHeader,
    /// The header carries no `name=` field.
    MissingName,
    /// A request line has no argument.
    MalformedLine {
        /// 1-based line number.
        line: usize,
    },
    /// A request line's argument is not an unsigned integer.
    InvalidNumber {
        /// 1-based line number.
        line: usize,
    },
    /// A request line starts with an unrecognized directive.
    UnknownDirective {
        /// 1-based line number.
        line: usize,
    },
}

impl core::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TraceParseError::MissingHeader => f.write_str("missing `# hdhash-trace v1` header"),
            TraceParseError::MissingName => f.write_str("header carries no name= field"),
            TraceParseError::MalformedLine { line } => {
                write!(f, "line {line} has no argument")
            }
            TraceParseError::InvalidNumber { line } => {
                write!(f, "line {line} argument is not an unsigned integer")
            }
            TraceParseError::UnknownDirective { line } => {
                write!(f, "line {line} starts with an unknown directive")
            }
        }
    }
}

impl std::error::Error for TraceParseError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::AlgorithmKind;
    use crate::generator::{Generator, Workload};

    fn sample_trace() -> Trace {
        let requests = Generator::new(Workload {
            initial_servers: 8,
            lookups: 50,
            ..Workload::default()
        })
        .requests();
        Trace::new("sample", requests)
    }

    #[test]
    fn text_round_trip_preserves_everything() {
        let trace = sample_trace();
        let parsed = Trace::from_text(&trace.to_text()).expect("own output parses");
        assert_eq!(parsed, trace);
        assert_eq!(parsed.name(), "sample");
        assert_eq!(parsed.len(), 58);
        assert!(!parsed.is_empty());
    }

    #[test]
    fn hand_written_traces_parse() {
        let text = "# hdhash-trace v1 name=hand\n\
                    join 0\n\
                    \n\
                    # a comment\n\
                    lookup 42\n\
                    leave 0\n";
        let trace = Trace::from_text(text).expect("valid trace");
        assert_eq!(
            trace.requests(),
            &[
                Request::Join(ServerId::new(0)),
                Request::Lookup(RequestKey::new(42)),
                Request::Leave(ServerId::new(0)),
            ]
        );
    }

    #[test]
    fn parse_errors_name_the_line() {
        assert_eq!(Trace::from_text("join 0\n"), Err(TraceParseError::MissingHeader));
        assert_eq!(Trace::from_text(""), Err(TraceParseError::MissingHeader));
        assert_eq!(
            Trace::from_text("# hdhash-trace v1\njoin 0\n"),
            Err(TraceParseError::MissingName)
        );
        let headered = |body: &str| format!("# hdhash-trace v1 name=t\n{body}");
        assert_eq!(
            Trace::from_text(&headered("join\n")),
            Err(TraceParseError::MalformedLine { line: 2 })
        );
        assert_eq!(
            Trace::from_text(&headered("join zero\n")),
            Err(TraceParseError::InvalidNumber { line: 2 })
        );
        assert_eq!(
            Trace::from_text(&headered("join 0\nfrobnicate 1\n")),
            Err(TraceParseError::UnknownDirective { line: 3 })
        );
    }

    #[test]
    fn error_display_is_informative() {
        assert!(TraceParseError::MissingHeader.to_string().contains("header"));
        assert!(TraceParseError::UnknownDirective { line: 7 }.to_string().contains("line 7"));
    }

    #[test]
    fn replay_is_deterministic_across_algorithms() {
        let trace = sample_trace();
        for kind in [AlgorithmKind::Consistent, AlgorithmKind::Hd] {
            let run = |t: &Trace| {
                let mut module = HashTableModule::new(kind.build(8));
                let (responses, stats) = t.replay(&mut module);
                assert_eq!(stats.failures, 0, "{kind}");
                responses
            };
            assert_eq!(run(&trace), run(&trace), "{kind}");
        }
    }

    #[test]
    fn replay_of_parsed_trace_matches_original() {
        // The full loop: record -> serialize -> parse -> replay gives the
        // same assignments as replaying the in-memory original.
        let trace = sample_trace();
        let parsed = Trace::from_text(&trace.to_text()).expect("parses");
        let mut a = HashTableModule::new(AlgorithmKind::Hd.build(8));
        let mut b = HashTableModule::new(AlgorithmKind::Hd.build(8));
        assert_eq!(trace.replay(&mut a).0, parsed.replay(&mut b).0);
    }

    #[test]
    #[should_panic(expected = "whitespace-free")]
    fn whitespace_names_are_rejected() {
        let _ = Trace::new("two words", Vec::new());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arbitrary_request() -> impl Strategy<Value = Request> {
            prop_oneof![
                any::<u64>().prop_map(|v| Request::Join(ServerId::new(v))),
                any::<u64>().prop_map(|v| Request::Leave(ServerId::new(v))),
                any::<u64>().prop_map(|v| Request::Lookup(RequestKey::new(v))),
            ]
        }

        proptest! {
            #[test]
            fn any_request_stream_round_trips(
                requests in prop::collection::vec(arbitrary_request(), 0..200)
            ) {
                let trace = Trace::new("prop", requests);
                let parsed = Trace::from_text(&trace.to_text()).expect("own output parses");
                prop_assert_eq!(parsed, trace);
            }

            #[test]
            fn parser_never_panics_on_arbitrary_text(text in "\\PC{0,300}") {
                // Any input is either parsed or rejected with an error —
                // no panic, no UB.
                let _ = Trace::from_text(&text);
            }
        }
    }
}
