//! Statistical machinery: Pearson's χ² goodness-of-fit (paper Figure 6).
//!
//! The paper measures load uniformity with
//! `χ² = Σ_s (R(s) − E)² / E`, `E = |R| / |S|`, and we additionally provide
//! the χ² survival function (p-value) through a from-scratch implementation
//! of the regularized incomplete gamma function (series + continued
//! fraction, as in *Numerical Recipes*).

/// Pearson's χ² statistic of observed counts against the uniform
/// expectation (the paper's Figure 6 metric).
///
/// Servers that received zero requests must be included as zero counts.
///
/// # Panics
///
/// Panics if `counts` is empty or the total count is zero.
///
/// # Examples
///
/// ```
/// use hdhash_emulator::stats::chi_squared_uniform;
///
/// // Perfectly uniform: χ² = 0.
/// assert_eq!(chi_squared_uniform(&[25, 25, 25, 25]), 0.0);
/// ```
#[must_use]
pub fn chi_squared_uniform(counts: &[usize]) -> f64 {
    assert!(!counts.is_empty(), "chi-squared needs at least one category");
    let total: usize = counts.iter().sum();
    assert!(total > 0, "chi-squared needs a positive total count");
    let expected = total as f64 / counts.len() as f64;
    counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum()
}

/// The survival function of the χ² distribution with `dof` degrees of
/// freedom: `P(X ≥ x)`.
///
/// # Panics
///
/// Panics if `dof == 0` or `x < 0`.
#[must_use]
pub fn chi_squared_p_value(x: f64, dof: usize) -> f64 {
    assert!(dof > 0, "degrees of freedom must be positive");
    assert!(x >= 0.0, "chi-squared statistic cannot be negative");
    // P(X >= x) = Q(dof/2, x/2), the regularized upper incomplete gamma.
    regularized_gamma_q(dof as f64 / 2.0, x / 2.0)
}

/// Regularized lower incomplete gamma `P(a, x) = γ(a, x) / Γ(a)`.
#[must_use]
pub fn regularized_gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "invalid incomplete gamma arguments");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_continued_fraction(a, x)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 − P(a, x)`.
#[must_use]
pub fn regularized_gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "invalid incomplete gamma arguments");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_continued_fraction(a, x)
    }
}

/// ln Γ(z) by the Lanczos approximation (g = 7, n = 9 coefficients).
#[must_use]
pub fn ln_gamma(z: f64) -> f64 {
    assert!(z > 0.0, "ln_gamma requires a positive argument");
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    let z = z - 1.0;
    let mut sum = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        sum += c / (z + i as f64);
    }
    let t = z + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (z + 0.5) * t.ln() - t + sum.ln()
}

/// Series expansion for `P(a, x)`, converges fast for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Lentz continued fraction for `Q(a, x)`, converges fast for `x ≥ a + 1`.
fn gamma_q_continued_fraction(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Sample mean.
///
/// # Panics
///
/// Panics if `values` is empty.
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "mean of empty sample");
    values.iter().sum::<f64>() / values.len() as f64
}

/// Sample standard deviation (population, `n` denominator).
///
/// # Panics
///
/// Panics if `values` is empty.
#[must_use]
pub fn std_dev(values: &[f64]) -> f64 {
    let m = mean(values);
    (values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chi_squared_basics() {
        assert_eq!(chi_squared_uniform(&[10, 10, 10, 10]), 0.0);
        // One category takes everything: chi2 = sum over cats.
        // counts [40,0,0,0]: E=10, chi2 = 900/10 + 3*100/10 = 120.
        assert!((chi_squared_uniform(&[40, 0, 0, 0]) - 120.0).abs() < 1e-12);
        // Mild skew.
        let x = chi_squared_uniform(&[12, 8, 10, 10]);
        assert!((x - 0.8).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one category")]
    fn chi_squared_empty_panics() {
        let _ = chi_squared_uniform(&[]);
    }

    #[test]
    #[should_panic(expected = "positive total")]
    fn chi_squared_zero_total_panics() {
        let _ = chi_squared_uniform(&[0, 0]);
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn incomplete_gamma_complementarity() {
        for &(a, x) in &[(0.5, 0.3), (1.0, 1.0), (2.5, 4.0), (10.0, 8.0), (50.0, 60.0)] {
            let p = regularized_gamma_p(a, x);
            let q = regularized_gamma_q(a, x);
            assert!((p + q - 1.0).abs() < 1e-10, "a={a} x={x}");
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn chi_squared_p_value_critical_points() {
        // Classic table values: chi2_{0.05, 1} = 3.841; chi2_{0.05, 10} = 18.307.
        assert!((chi_squared_p_value(3.841, 1) - 0.05).abs() < 0.002);
        assert!((chi_squared_p_value(18.307, 10) - 0.05).abs() < 0.002);
        // Exponential special case (dof = 2): P(X >= x) = exp(-x/2).
        let x = 5.0;
        assert!((chi_squared_p_value(x, 2) - (-x / 2.0f64).exp()).abs() < 1e-10);
        // Extremes.
        assert_eq!(chi_squared_p_value(0.0, 5), 1.0);
        assert!(chi_squared_p_value(1000.0, 5) < 1e-10);
    }

    #[test]
    fn p_value_monotone_in_statistic() {
        let mut last = 1.0;
        for x in [0.0, 1.0, 5.0, 10.0, 50.0] {
            let p = chi_squared_p_value(x, 8);
            assert!(p <= last + 1e-12);
            last = p;
        }
    }

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_counts_pass_significance() {
        // A genuinely uniform assignment should not be rejected at 5%.
        let counts = vec![100usize; 64];
        let chi2 = chi_squared_uniform(&counts);
        assert!(chi_squared_p_value(chi2, 63) > 0.05);
    }
}
