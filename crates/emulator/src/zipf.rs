//! A from-scratch Zipf-distributed key sampler.
//!
//! Web caching and P2P workloads — the paper's motivating applications —
//! are famously Zipfian: a few hot keys receive most of the traffic. The
//! emulator therefore offers Zipf(`s`) key generation next to uniform.
//! Implementation: the normalized cumulative distribution over ranks
//! `1..=n` with `P(rank = k) ∝ k^(−s)`, inverted by binary search.

use hdhash_hashfn::SplitMix64;

/// A Zipf distribution over `n` ranks with exponent `s ≥ 0`.
///
/// # Examples
///
/// ```
/// use hdhash_emulator::Zipf;
/// use hdhash_hashfn::SplitMix64;
///
/// let zipf = Zipf::new(1000, 1.0);
/// let mut rng = SplitMix64::new(7);
/// let rank = zipf.sample(&mut rng);
/// assert!((1..=1000).contains(&rank));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cdf: Vec<f64>,
    exponent: f64,
}

impl Zipf {
    /// Builds the distribution over ranks `1..=n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative or non-finite.
    #[must_use]
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s.is_finite() && s >= 0.0, "exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating point: the last entry must be exactly 1.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Self { cdf, exponent: s }
    }

    /// Number of ranks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is empty (never true once constructed).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The exponent `s`.
    #[must_use]
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Probability of a given rank (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `rank` is 0 or exceeds `n`.
    #[must_use]
    pub fn probability(&self, rank: usize) -> f64 {
        assert!(rank >= 1 && rank <= self.cdf.len(), "rank out of range");
        if rank == 1 {
            self.cdf[0]
        } else {
            self.cdf[rank - 1] - self.cdf[rank - 2]
        }
    }

    /// Draws a rank in `1..=n` (rank 1 is the hottest).
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.next_f64();
        // First index with cdf >= u.
        let idx = self.cdf.partition_point(|&c| c < u);
        idx.min(self.cdf.len() - 1) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_is_normalized_and_monotone() {
        let z = Zipf::new(100, 1.2);
        assert_eq!(z.len(), 100);
        assert!((z.cdf.last().copied().expect("non-empty") - 1.0).abs() < 1e-12);
        for w in z.cdf.windows(2) {
            assert!(w[1] >= w[0]);
        }
        let mass: f64 = (1..=100).map(|k| z.probability(k)).sum();
        assert!((mass - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hot_ranks_dominate() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = SplitMix64::new(3);
        let mut counts = vec![0usize; 1001];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[1] > counts[10], "rank 1 should beat rank 10");
        assert!(counts[1] > counts[100] * 10, "rank 1 should dwarf rank 100");
        // Empirical share of rank 1 ≈ 1/H_1000 ≈ 0.133.
        let share = counts[1] as f64 / 50_000.0;
        assert!((share - 0.133).abs() < 0.02, "rank-1 share {share}");
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for k in 1..=10 {
            assert!((z.probability(k) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn samples_cover_support_and_stay_in_range() {
        let z = Zipf::new(5, 0.5);
        let mut rng = SplitMix64::new(9);
        let mut seen = [false; 6];
        for _ in 0..5000 {
            let r = z.sample(&mut rng);
            assert!((1..=5).contains(&r));
            seen[r] = true;
        }
        assert!(seen[1..].iter().all(|&s| s));
    }

    #[test]
    fn deterministic_given_seed() {
        let z = Zipf::new(50, 1.5);
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(1);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_exponent_panics() {
        let _ = Zipf::new(10, -1.0);
    }

    #[test]
    #[should_panic(expected = "rank out of range")]
    fn probability_out_of_range_panics() {
        let _ = Zipf::new(10, 1.0).probability(11);
    }
}
