//! Arrival shaping: open-loop traffic curves for the scenario engine.
//!
//! The paper's experiments drive closed-loop streams — every request is
//! issued the moment the previous one completes, so the offered load is
//! whatever the table can absorb. Real directory services face *open-loop*
//! traffic: requests arrive on the world's schedule, not the server's.
//! This module provides the deterministic arrival machinery the scenario
//! engine (`hdhash-serve`'s `scenario` module) builds on:
//!
//! * [`ArrivalShape`] / [`ArrivalProcess`] — per-tick request counts under
//!   a constant, diurnal (sinusoidal) or flash-crowd (step spike) curve,
//!   with a fractional-carry accumulator so integer per-tick counts
//!   conserve the shape's discrete integral to within one request;
//! * [`KeySampler`] — a streaming form of
//!   [`Generator::lookup_requests`](crate::Generator::lookup_requests)
//!   drawing one key at a time from a [`KeyDistribution`], bit-identical
//!   to the batch generator for the same seed;
//! * [`BurstShape`] / [`BurstProcess`] — correlated probe bursts layered
//!   on top of the base curve, driven by the two-state Markov fleet model
//!   of [`CorrelatedErrorProcess`] (one scenario tick = one model step):
//!   monitoring probes cluster in time exactly the way the field-study
//!   errors do.
//!
//! Everything here is a pure function of a seed; the property suite in
//! `crates/emulator/tests/shaping_properties.rs` pins conservation, skew
//! and stream-equality guarantees.

use hdhash_hashfn::{mix64, SplitMix64};
use hdhash_table::RequestKey;

use crate::correlated::{CorrelatedErrorModel, CorrelatedErrorProcess};
use crate::generator::KeyDistribution;
use crate::zipf::Zipf;

/// The offered-load curve of a scenario, in requests per virtual tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalShape {
    /// A flat `rate` requests per tick.
    Constant {
        /// Requests per tick.
        rate: f64,
    },
    /// A day/night sinusoid: `mean · (1 + amplitude · sin(2πt / period))`.
    ///
    /// Over any whole number of periods the discrete integral equals
    /// `mean · ticks` (to floating-point rounding), which is the property
    /// the shaper test suite pins.
    Diurnal {
        /// Mean requests per tick.
        mean: f64,
        /// Relative swing in `[0, 1]`; 1 means the trough reaches zero.
        amplitude: f64,
        /// Ticks per full day/night cycle.
        period: usize,
    },
    /// A step spike: `base` everywhere except ticks
    /// `start..start + duration`, which offer `peak`.
    FlashCrowd {
        /// Baseline requests per tick.
        base: f64,
        /// Requests per tick during the crowd.
        peak: f64,
        /// First tick of the crowd.
        start: usize,
        /// Crowd length in ticks.
        duration: usize,
    },
}

impl ArrivalShape {
    /// The instantaneous rate at a tick.
    ///
    /// # Panics
    ///
    /// Panics if the shape is invalid (see [`validate`](Self::validate)).
    #[must_use]
    pub fn rate_at(&self, tick: usize) -> f64 {
        self.validate();
        match *self {
            ArrivalShape::Constant { rate } => rate,
            ArrivalShape::Diurnal { mean, amplitude, period } => {
                let phase = 2.0 * std::f64::consts::PI * (tick % period) as f64 / period as f64;
                mean * (1.0 + amplitude * phase.sin())
            }
            ArrivalShape::FlashCrowd { base, peak, start, duration } => {
                if tick >= start && tick < start + duration {
                    peak
                } else {
                    base
                }
            }
        }
    }

    /// The discrete integral `Σ rate_at(t)` over `0..ticks` — the total
    /// offered load an [`ArrivalProcess`] conserves to within one request.
    #[must_use]
    pub fn offered(&self, ticks: usize) -> f64 {
        (0..ticks).map(|t| self.rate_at(t)).sum()
    }

    /// Checks the shape parameters.
    ///
    /// # Panics
    ///
    /// Panics if any rate is negative or non-finite, a diurnal amplitude
    /// leaves `[0, 1]`, or a diurnal period is zero.
    pub fn validate(&self) {
        let finite_rate = |r: f64, what: &str| {
            assert!(r.is_finite() && r >= 0.0, "{what} must be a finite non-negative rate: {r}");
        };
        match *self {
            ArrivalShape::Constant { rate } => finite_rate(rate, "constant rate"),
            ArrivalShape::Diurnal { mean, amplitude, period } => {
                finite_rate(mean, "diurnal mean");
                assert!(
                    (0.0..=1.0).contains(&amplitude),
                    "diurnal amplitude must be in [0, 1]: {amplitude}"
                );
                assert!(period > 0, "diurnal period must be at least one tick");
            }
            ArrivalShape::FlashCrowd { base, peak, .. } => {
                finite_rate(base, "flash-crowd base");
                finite_rate(peak, "flash-crowd peak");
            }
        }
    }
}

/// Turns an [`ArrivalShape`] into integer per-tick arrival counts.
///
/// A fractional-carry accumulator keeps the remainder of each tick's rate
/// and rolls it into the next, so after `T` ticks the emitted total
/// differs from [`ArrivalShape::offered`]`(T)` by strictly less than one
/// request — fractional rates are neither lost nor invented.
///
/// # Examples
///
/// ```
/// use hdhash_emulator::shaping::{ArrivalProcess, ArrivalShape};
///
/// let mut arrivals = ArrivalProcess::new(ArrivalShape::Constant { rate: 2.5 });
/// let counts: Vec<usize> = (0..4).map(|_| arrivals.next_tick()).collect();
/// assert_eq!(counts, vec![2, 3, 2, 3]);
/// ```
#[derive(Debug, Clone)]
pub struct ArrivalProcess {
    shape: ArrivalShape,
    tick: usize,
    carry: f64,
}

impl ArrivalProcess {
    /// Creates the process at tick zero.
    ///
    /// # Panics
    ///
    /// Panics if the shape is invalid (see [`ArrivalShape::validate`]).
    #[must_use]
    pub fn new(shape: ArrivalShape) -> Self {
        shape.validate();
        Self { shape, tick: 0, carry: 0.0 }
    }

    /// The shape being emitted.
    #[must_use]
    pub fn shape(&self) -> &ArrivalShape {
        &self.shape
    }

    /// Ticks emitted so far.
    #[must_use]
    pub fn tick(&self) -> usize {
        self.tick
    }

    /// The number of requests arriving in the next tick.
    pub fn next_tick(&mut self) -> usize {
        let want = self.shape.rate_at(self.tick) + self.carry;
        // `want` is finite and ≥ 0 (validated rate, carry ∈ [0, 1)).
        let whole = want.floor();
        self.carry = want - whole;
        self.tick += 1;
        whole as usize
    }
}

/// A streaming lookup-key sampler over a [`KeyDistribution`].
///
/// Draws keys one at a time in *exactly* the order
/// [`Generator::lookup_requests`](crate::Generator::lookup_requests)
/// materializes them, so a scenario that samples keys per tick and a batch
/// generator given the same seed produce identical streams (pinned by the
/// shaping property suite).
#[derive(Debug, Clone)]
pub struct KeySampler {
    rng: SplitMix64,
    kind: SamplerKind,
}

#[derive(Debug, Clone)]
enum SamplerKind {
    Uniform,
    Zipf(Zipf),
    Sequential { next: u64 },
}

impl KeySampler {
    /// Creates a sampler for a distribution and seed.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate Zipf distribution (empty universe or a
    /// non-finite/negative exponent), matching [`Zipf::new`].
    #[must_use]
    pub fn new(keys: KeyDistribution, seed: u64) -> Self {
        let kind = match keys {
            KeyDistribution::Uniform => SamplerKind::Uniform,
            KeyDistribution::Zipf { universe, exponent } => {
                SamplerKind::Zipf(Zipf::new(universe, exponent))
            }
            KeyDistribution::Sequential => SamplerKind::Sequential { next: 0 },
        };
        Self { rng: SplitMix64::new(seed), kind }
    }

    /// Draws the next lookup key.
    pub fn next_key(&mut self) -> RequestKey {
        match &mut self.kind {
            SamplerKind::Uniform => RequestKey::new(self.rng.next_u64()),
            SamplerKind::Zipf(zipf) => {
                let rank = zipf.sample(&mut self.rng) as u64;
                // Scramble the rank so hot keys are not numerically
                // adjacent, exactly as the batch generator does.
                RequestKey::new(mix64(rank))
            }
            SamplerKind::Sequential { next } => {
                let key = RequestKey::new(*next);
                *next += 1;
                key
            }
        }
    }
}

/// Parameters of a correlated probe-burst overlay.
///
/// Models a monitoring fleet whose probes cluster in time the way the
/// Schroeder et al. field-study errors do: each of `machines` probers runs
/// the two-state healthy/degraded Markov chain of
/// [`CorrelatedErrorProcess`], and every upset event it emits in a tick
/// contributes `probes_per_upset` extra lookups to that tick's arrivals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstShape {
    /// Probing machines in the fleet.
    pub machines: usize,
    /// Extra lookups per upset event.
    pub probes_per_upset: usize,
    /// The per-machine burst chain (rate + correlation factor).
    pub model: CorrelatedErrorModel,
}

impl Default for BurstShape {
    fn default() -> Self {
        Self { machines: 32, probes_per_upset: 25, model: CorrelatedErrorModel::field_study() }
    }
}

/// Deterministic per-tick extra arrivals from a [`BurstShape`].
///
/// # Examples
///
/// ```
/// use hdhash_emulator::shaping::{BurstProcess, BurstShape};
///
/// let mut bursts = BurstProcess::new(BurstShape::default(), 7);
/// let year: usize = (0..12).map(|_| bursts.next_tick()).sum();
/// assert_eq!(year % 25, 0); // every burst is a whole number of probes
/// ```
#[derive(Debug, Clone)]
pub struct BurstProcess {
    process: CorrelatedErrorProcess,
    probes_per_upset: usize,
}

impl BurstProcess {
    /// Creates the burst process.
    ///
    /// # Panics
    ///
    /// Panics if `shape.machines == 0` or the model rates are invalid,
    /// matching [`CorrelatedErrorProcess::new`].
    #[must_use]
    pub fn new(shape: BurstShape, seed: u64) -> Self {
        Self {
            process: CorrelatedErrorProcess::new(shape.machines, shape.model, seed),
            probes_per_upset: shape.probes_per_upset,
        }
    }

    /// Extra probe lookups arriving in the next tick (a multiple of the
    /// shape's `probes_per_upset`).
    pub fn next_tick(&mut self) -> usize {
        let upsets: usize = self.process.advance_month().iter().map(|e| e.upsets).sum();
        upsets * self.probes_per_upset
    }

    /// Ticks advanced so far.
    #[must_use]
    pub fn tick(&self) -> usize {
        self.process.month()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{Generator, Workload};
    use crate::request::Request;

    #[test]
    fn constant_process_conserves_rate() {
        let shape = ArrivalShape::Constant { rate: 3.75 };
        let mut p = ArrivalProcess::new(shape);
        let total: usize = (0..1000).map(|_| p.next_tick()).sum();
        assert!((total as f64 - shape.offered(1000)).abs() < 1.0, "total {total}");
        assert_eq!(p.tick(), 1000);
        assert_eq!(p.shape(), &shape);
    }

    #[test]
    fn diurnal_rate_swings_about_the_mean() {
        let shape = ArrivalShape::Diurnal { mean: 100.0, amplitude: 0.5, period: 24 };
        let peak = shape.rate_at(6); // sin peaks a quarter period in
        let trough = shape.rate_at(18);
        assert!((peak - 150.0).abs() < 1e-9, "peak {peak}");
        assert!((trough - 50.0).abs() < 1e-9, "trough {trough}");
    }

    #[test]
    fn flash_crowd_window_is_half_open() {
        let shape = ArrivalShape::FlashCrowd { base: 10.0, peak: 90.0, start: 4, duration: 2 };
        let rates: Vec<f64> = (0..8).map(|t| shape.rate_at(t)).collect();
        assert_eq!(rates, vec![10.0, 10.0, 10.0, 10.0, 90.0, 90.0, 10.0, 10.0]);
    }

    #[test]
    fn zero_rate_emits_nothing() {
        let mut p = ArrivalProcess::new(ArrivalShape::Constant { rate: 0.0 });
        assert_eq!((0..100).map(|_| p.next_tick()).sum::<usize>(), 0);
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn excessive_amplitude_is_rejected() {
        let _ = ArrivalProcess::new(ArrivalShape::Diurnal {
            mean: 10.0,
            amplitude: 1.5,
            period: 8,
        });
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn negative_rate_is_rejected() {
        let _ = ArrivalProcess::new(ArrivalShape::Constant { rate: -1.0 });
    }

    #[test]
    fn sampler_matches_batch_generator() {
        for keys in [
            KeyDistribution::Uniform,
            KeyDistribution::Zipf { universe: 100, exponent: 1.1 },
            KeyDistribution::Sequential,
        ] {
            let workload = Workload { initial_servers: 0, lookups: 500, keys, seed: 99 };
            let batch: Vec<_> = Generator::new(workload)
                .lookup_requests()
                .into_iter()
                .filter_map(|r| r.lookup_key())
                .collect();
            let mut sampler = KeySampler::new(keys, 99);
            let streamed: Vec<_> = (0..500).map(|_| sampler.next_key()).collect();
            assert_eq!(streamed, batch, "{keys:?}");
        }
    }

    #[test]
    fn sampler_feeds_requests() {
        let mut sampler = KeySampler::new(KeyDistribution::Sequential, 0);
        let request = Request::Lookup(sampler.next_key());
        assert_eq!(request.lookup_key().map(hdhash_table::RequestKey::get), Some(0));
    }

    #[test]
    fn bursts_are_deterministic_and_quantized() {
        let shape = BurstShape { machines: 16, probes_per_upset: 10, ..BurstShape::default() };
        let run = || {
            let mut p = BurstProcess::new(shape, 42);
            (0..48).map(|_| p.next_tick()).collect::<Vec<_>>()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a.iter().all(|&n| n % 10 == 0));
        assert!(a.iter().any(|&n| n > 0), "a 48-tick fleet should burst at least once");
    }
}
