//! The generator module: deterministic request workloads.
//!
//! "The generator emulates the requests from the outside world being sent
//! to the hash table." (paper §5.1) All workloads here are pure functions
//! of a seed, so every experiment in the repository is reproducible.

use hdhash_hashfn::SplitMix64;
use hdhash_table::ServerId;

use crate::request::Request;

/// How lookup keys are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDistribution {
    /// Uniformly random 64-bit keys (the paper's efficiency/robustness
    /// setup).
    Uniform,
    /// Zipf-distributed keys over a universe of `universe` distinct keys
    /// with exponent `s` (web-cache style traffic).
    Zipf {
        /// Number of distinct keys.
        universe: usize,
        /// Skew exponent.
        exponent: f64,
    },
    /// Sequential keys `0, 1, 2, …` (worst case for weak hash functions).
    Sequential,
}

/// A description of a full experiment workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// Servers joined before any lookups (the paper joins `n` servers
    /// first, then sends lookups).
    pub initial_servers: usize,
    /// Number of lookup requests (the paper uses 10 000).
    pub lookups: usize,
    /// Key distribution of the lookups.
    pub keys: KeyDistribution,
    /// Deterministic seed.
    pub seed: u64,
}

impl Default for Workload {
    fn default() -> Self {
        Self {
            initial_servers: 16,
            lookups: 10_000,
            keys: KeyDistribution::Uniform,
            seed: 0xE11_0D1E,
        }
    }
}

/// The generator: produces request streams from workload descriptions.
///
/// # Examples
///
/// ```
/// use hdhash_emulator::{Generator, Workload};
///
/// let requests = Generator::new(Workload::default()).requests();
/// assert_eq!(requests.len(), 16 + 10_000);
/// assert!(requests[..16].iter().all(|r| r.is_control()));
/// ```
#[derive(Debug, Clone)]
pub struct Generator {
    workload: Workload,
}

impl Generator {
    /// Creates a generator for the given workload.
    #[must_use]
    pub fn new(workload: Workload) -> Self {
        Self { workload }
    }

    /// The workload description.
    #[must_use]
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Materializes the full request stream: joins first, then lookups.
    #[must_use]
    pub fn requests(&self) -> Vec<Request> {
        let mut out = Vec::with_capacity(self.workload.initial_servers + self.workload.lookups);
        out.extend(self.join_requests());
        out.extend(self.lookup_requests());
        out
    }

    /// Only the join phase.
    #[must_use]
    pub fn join_requests(&self) -> Vec<Request> {
        (0..self.workload.initial_servers as u64)
            .map(|i| Request::Join(ServerId::new(i)))
            .collect()
    }

    /// Only the lookup phase.
    ///
    /// Delegates to the streaming [`KeySampler`](crate::shaping::KeySampler)
    /// so batch workloads and open-loop scenarios draw from one key
    /// stream: the same distribution and seed yield the same keys in the
    /// same order on both paths.
    #[must_use]
    pub fn lookup_requests(&self) -> Vec<Request> {
        let mut sampler = crate::shaping::KeySampler::new(self.workload.keys, self.workload.seed);
        (0..self.workload.lookups).map(|_| Request::Lookup(sampler.next_key())).collect()
    }

    /// A churn schedule: after the initial joins, interleaves lookups with
    /// `churn_events` alternating leave/join events at evenly spaced
    /// positions (P2P-style membership flux).
    #[must_use]
    pub fn churn_requests(&self, churn_events: usize) -> Vec<Request> {
        let mut out = self.join_requests();
        let lookups = self.lookup_requests();
        if churn_events == 0 || lookups.is_empty() {
            out.extend(lookups);
            return out;
        }
        let gap = lookups.len() / (churn_events + 1);
        let mut next_new_server = self.workload.initial_servers as u64;
        let mut departed: Vec<u64> = Vec::new();
        let mut rng = SplitMix64::new(self.workload.seed ^ 0xC0FFEE);
        for (i, lookup) in lookups.into_iter().enumerate() {
            out.push(lookup);
            if gap > 0 && (i + 1) % gap == 0 && (i + 1) / gap <= churn_events {
                let event = (i + 1) / gap;
                if event % 2 == 1 && self.workload.initial_servers > 0 {
                    // Leave a pseudo-random live original server.
                    let victim = rng.next_below(self.workload.initial_servers as u64);
                    if !departed.contains(&victim) {
                        departed.push(victim);
                        out.push(Request::Leave(ServerId::new(victim)));
                    }
                } else {
                    out.push(Request::Join(ServerId::new(next_new_server)));
                    next_new_server += 1;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdhash_table::RequestKey;

    #[test]
    fn default_stream_shape() {
        let g = Generator::new(Workload::default());
        let reqs = g.requests();
        assert_eq!(reqs.len(), 16 + 10_000);
        assert!(reqs[..16].iter().all(Request::is_control));
        assert!(reqs[16..].iter().all(|r| !r.is_control()));
    }

    #[test]
    fn deterministic_given_seed() {
        let w = Workload { seed: 42, ..Workload::default() };
        assert_eq!(Generator::new(w).requests(), Generator::new(w).requests());
    }

    #[test]
    fn different_seeds_different_keys() {
        let a = Generator::new(Workload { seed: 1, ..Workload::default() }).lookup_requests();
        let b = Generator::new(Workload { seed: 2, ..Workload::default() }).lookup_requests();
        assert_ne!(a, b);
    }

    #[test]
    fn sequential_keys_are_sequential() {
        let w = Workload {
            keys: KeyDistribution::Sequential,
            lookups: 5,
            ..Workload::default()
        };
        let keys: Vec<u64> = Generator::new(w)
            .lookup_requests()
            .iter()
            .filter_map(Request::lookup_key)
            .map(RequestKey::get)
            .collect();
        assert_eq!(keys, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn zipf_keys_have_hot_spots() {
        let w = Workload {
            keys: KeyDistribution::Zipf { universe: 100, exponent: 1.2 },
            lookups: 20_000,
            ..Workload::default()
        };
        let mut counts = std::collections::HashMap::new();
        for r in Generator::new(w).lookup_requests() {
            *counts.entry(r.lookup_key().expect("lookup")).or_insert(0usize) += 1;
        }
        let max = *counts.values().max().expect("non-empty");
        assert!(counts.len() <= 100);
        assert!(max > 20_000 / 100 * 5, "hottest key should dominate: {max}");
    }

    #[test]
    fn churn_schedule_interleaves_events() {
        let w = Workload { initial_servers: 8, lookups: 1000, ..Workload::default() };
        let reqs = Generator::new(w).churn_requests(6);
        let controls_after_warmup =
            reqs[8..].iter().filter(|r| r.is_control()).count();
        assert!(controls_after_warmup >= 4, "expected churn events, saw {controls_after_warmup}");
        // Total lookups preserved.
        let lookups = reqs.iter().filter(|r| !r.is_control()).count();
        assert_eq!(lookups, 1000);
    }

    #[test]
    fn churn_zero_events_is_plain_stream() {
        let w = Workload { initial_servers: 4, lookups: 100, ..Workload::default() };
        assert_eq!(Generator::new(w).churn_requests(0), Generator::new(w).requests());
    }
}
