//! Factory over every hashing algorithm in the workspace.
//!
//! The emulator (and the figure harnesses) select algorithms by
//! [`AlgorithmKind`] and receive a boxed [`NoisyTable`], so every
//! experiment runs the exact same driver code over all competitors.

use hdhash_core::HdHashTable;
use hdhash_maglev::MaglevTable;
use hdhash_rendezvous::RendezvousTable;
use hdhash_ring::{ConsistentTable, JumpTable};
use hdhash_table::{ModularTable, NoisyTable};

/// The algorithms the paper compares (plus this repo's extras).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum AlgorithmKind {
    /// `h(r) mod n` (paper §1 baseline).
    Modular,
    /// Consistent hashing (paper §2.1).
    Consistent,
    /// Rendezvous / HRW hashing (paper §2.2).
    Rendezvous,
    /// HD hashing with serial inference (paper §3).
    Hd,
    /// HD hashing with the multi-threaded inference path (the paper's GPU
    /// substitute).
    HdParallel,
    /// Maglev lookup-table hashing (paper reference \[3\]; this repo's
    /// extra baseline).
    Maglev,
    /// Jump consistent hash (near-zero state; this repo's extra baseline).
    /// Arbitrary leaves shuffle more keys than ring/HRW (documented trade).
    Jump,
}

impl AlgorithmKind {
    /// All algorithms in presentation order.
    pub const ALL: [AlgorithmKind; 7] = [
        AlgorithmKind::Modular,
        AlgorithmKind::Consistent,
        AlgorithmKind::Rendezvous,
        AlgorithmKind::Hd,
        AlgorithmKind::HdParallel,
        AlgorithmKind::Maglev,
        AlgorithmKind::Jump,
    ];

    /// The three algorithms of the paper's figures.
    pub const PAPER: [AlgorithmKind; 3] =
        [AlgorithmKind::Consistent, AlgorithmKind::Rendezvous, AlgorithmKind::Hd];

    /// Short lowercase name used in reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AlgorithmKind::Modular => "modular",
            AlgorithmKind::Consistent => "consistent",
            AlgorithmKind::Rendezvous => "rendezvous",
            AlgorithmKind::Hd => "hd",
            AlgorithmKind::HdParallel => "hd-parallel",
            AlgorithmKind::Maglev => "maglev",
            AlgorithmKind::Jump => "jump",
        }
    }

    /// Builds an empty table sized so that up to `max_servers` servers can
    /// join (relevant for HD hashing's `n > k` codebook requirement).
    ///
    /// HD tables use a codebook of the next power of two above
    /// `2 · max_servers` and a dimension of at least 10 000 bits (padded to
    /// the quantum grid; see `hdhash_core`).
    ///
    /// # Panics
    ///
    /// Panics if `max_servers == 0`.
    #[must_use]
    pub fn build(self, max_servers: usize) -> Box<dyn NoisyTable + Send> {
        assert!(max_servers > 0, "a table for zero servers is useless");
        match self {
            AlgorithmKind::Modular => Box::new(ModularTable::new()),
            AlgorithmKind::Consistent => Box::new(ConsistentTable::new()),
            AlgorithmKind::Rendezvous => Box::new(RendezvousTable::new()),
            AlgorithmKind::Hd => Box::new(Self::hd_table(max_servers, false)),
            AlgorithmKind::HdParallel => Box::new(Self::hd_table(max_servers, true)),
            AlgorithmKind::Maglev => {
                // M ≫ N: at least ~32 slots per server, prime-rounded.
                Box::new(MaglevTable::with_table_size((32 * max_servers).max(2053)))
            }
            AlgorithmKind::Jump => Box::new(JumpTable::new()),
        }
    }

    fn hd_table(max_servers: usize, parallel: bool) -> HdHashTable {
        // Codebook: the next power of two above 2·k (comfortably n > k).
        // Dimension: at least the paper's 10 000 bits, and at least 24 bits
        // of quantum per circle node so the table provably tolerates the
        // paper's full 0–10 bit-error range (including 10-bit MCU bursts
        // landing on a single stored hypervector).
        let codebook = (2 * max_servers).next_power_of_two().max(8);
        let dimension = (24 * codebook).max(10_000);
        let builder = HdHashTable::builder().dimension(dimension).codebook_size(codebook);
        let builder = if parallel {
            builder.search(hdhash_hdc::SearchStrategy::Parallel { threads: 8 })
        } else {
            builder
        };
        builder.build().expect("factory parameters are valid")
    }
}

impl core::fmt::Display for AlgorithmKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdhash_table::{RequestKey, ServerId};

    #[test]
    fn every_algorithm_builds_and_serves() {
        for kind in AlgorithmKind::ALL {
            let mut table = kind.build(32);
            for i in 0..32 {
                table.join(ServerId::new(i)).expect("fresh server");
            }
            let owner = table.lookup(RequestKey::new(5)).expect("non-empty");
            assert!(table.contains(owner), "{kind}");
            assert_eq!(table.server_count(), 32);
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<_> =
            AlgorithmKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), AlgorithmKind::ALL.len());
        assert_eq!(AlgorithmKind::Hd.to_string(), "hd");
    }

    #[test]
    fn hd_codebook_scales_with_max_servers() {
        let mut table = AlgorithmKind::Hd.build(2048);
        for i in 0..2048 {
            table.join(ServerId::new(i)).expect("codebook sized for 2048 servers");
        }
        assert_eq!(table.server_count(), 2048);
    }

    #[test]
    fn paper_subset_is_consistent_rendezvous_hd() {
        assert_eq!(
            AlgorithmKind::PAPER.map(|k| k.name()),
            ["consistent", "rendezvous", "hd"]
        );
    }

    #[test]
    #[should_panic(expected = "useless")]
    fn zero_capacity_panics() {
        let _ = AlgorithmKind::Hd.build(0);
    }
}
