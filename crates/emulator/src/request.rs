//! The emulator's request vocabulary.
//!
//! The paper's emulator drives its hash table module exclusively through
//! requests: ordinary lookups plus two "special case requests, a join and
//! leave request, respectively, with a unique identifier of the server".

use hdhash_table::{RequestKey, ServerId};

/// A single message sent from the generator to the hash table module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Request {
    /// A server announces itself to the pool.
    Join(ServerId),
    /// A server departs from the pool.
    Leave(ServerId),
    /// An ordinary request that must be mapped to a live server.
    Lookup(RequestKey),
}

impl Request {
    /// Whether this is a control (join/leave) request.
    #[must_use]
    pub fn is_control(&self) -> bool {
        matches!(self, Request::Join(_) | Request::Leave(_))
    }

    /// The lookup key, if this is a lookup request.
    #[must_use]
    pub fn lookup_key(&self) -> Option<RequestKey> {
        match self {
            Request::Lookup(k) => Some(*k),
            _ => None,
        }
    }
}

impl core::fmt::Display for Request {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Request::Join(s) => write!(f, "join({s})"),
            Request::Leave(s) => write!(f, "leave({s})"),
            Request::Lookup(r) => write!(f, "lookup({r})"),
        }
    }
}

/// The module's reply to a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Response {
    /// A join or leave was applied.
    ControlApplied,
    /// A lookup resolved to this server.
    Mapped(ServerId),
    /// The request failed (e.g. lookup on an empty pool).
    Failed(hdhash_table::TableError),
}

impl Response {
    /// The mapped server for successful lookups.
    #[must_use]
    pub fn server(&self) -> Option<ServerId> {
        match self {
            Response::Mapped(s) => Some(*s),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(Request::Join(ServerId::new(1)).is_control());
        assert!(Request::Leave(ServerId::new(1)).is_control());
        assert!(!Request::Lookup(RequestKey::new(1)).is_control());
        assert_eq!(
            Request::Lookup(RequestKey::new(9)).lookup_key(),
            Some(RequestKey::new(9))
        );
        assert_eq!(Request::Join(ServerId::new(9)).lookup_key(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Request::Join(ServerId::new(1)).to_string(), "join(s1)");
        assert_eq!(Request::Leave(ServerId::new(2)).to_string(), "leave(s2)");
        assert_eq!(Request::Lookup(RequestKey::new(3)).to_string(), "lookup(r3)");
    }

    #[test]
    fn response_accessors() {
        assert_eq!(Response::Mapped(ServerId::new(4)).server(), Some(ServerId::new(4)));
        assert_eq!(Response::ControlApplied.server(), None);
        assert_eq!(Response::Failed(hdhash_table::TableError::EmptyPool).server(), None);
    }
}
