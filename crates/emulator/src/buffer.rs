//! The shared request buffer between generator and hash table module.
//!
//! A bounded MPSC-style queue over `parking_lot` primitives: producers
//! block when the backlog bound is reached, the consumer blocks until
//! requests arrive or every producer has hung up. This is the "buffer" of
//! the paper's two-module emulator architecture.

use std::collections::VecDeque;

use parking_lot::{Condvar, Mutex};

use crate::request::Request;

struct State {
    queue: VecDeque<Request>,
    closed: bool,
    peak: usize,
}

/// A bounded, blocking request buffer.
///
/// # Examples
///
/// ```
/// use hdhash_emulator::buffer::RequestBuffer;
/// use hdhash_emulator::Request;
/// use hdhash_table::RequestKey;
///
/// let buffer = RequestBuffer::new(8);
/// buffer.push_chunk(&[Request::Lookup(RequestKey::new(1))]);
/// buffer.close();
/// let batch = buffer.pop_batch(4).expect("one request queued");
/// assert_eq!(batch.len(), 1);
/// assert!(buffer.pop_batch(4).is_none(), "closed and drained");
/// ```
pub struct RequestBuffer {
    state: Mutex<State>,
    capacity: usize,
    readable: Condvar,
    writable: Condvar,
}

impl RequestBuffer {
    /// Creates a buffer holding at most `capacity` requests.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer capacity must be positive");
        Self {
            state: Mutex::new(State { queue: VecDeque::new(), closed: false, peak: 0 }),
            capacity,
            readable: Condvar::new(),
            writable: Condvar::new(),
        }
    }

    /// Pushes requests, blocking while the buffer is at capacity.
    /// Requests pushed after [`close`](RequestBuffer::close) are dropped.
    pub fn push_chunk(&self, requests: &[Request]) {
        let mut remaining = requests;
        while !remaining.is_empty() {
            let mut state = self.state.lock();
            while state.queue.len() >= self.capacity && !state.closed {
                self.writable.wait(&mut state);
            }
            if state.closed {
                return;
            }
            let space = self.capacity - state.queue.len();
            let take = space.min(remaining.len());
            state.queue.extend(remaining[..take].iter().copied());
            let backlog = state.queue.len();
            state.peak = state.peak.max(backlog);
            remaining = &remaining[take..];
            drop(state);
            self.readable.notify_one();
        }
    }

    /// Pops up to `batch` requests, blocking until data arrives. Returns
    /// `None` once the buffer is closed *and* drained.
    #[must_use]
    pub fn pop_batch(&self, batch: usize) -> Option<Vec<Request>> {
        let mut state = self.state.lock();
        while state.queue.is_empty() {
            if state.closed {
                return None;
            }
            self.readable.wait(&mut state);
        }
        let take = batch.max(1).min(state.queue.len());
        let out: Vec<Request> = state.queue.drain(..take).collect();
        drop(state);
        self.writable.notify_all();
        Some(out)
    }

    /// Marks the stream complete; blocked producers and the consumer wake.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.readable.notify_all();
        self.writable.notify_all();
    }

    /// Current backlog.
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.lock().queue.len()
    }

    /// Whether the backlog is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.state.lock().queue.is_empty()
    }

    /// The largest backlog observed so far.
    #[must_use]
    pub fn peak_backlog(&self) -> usize {
        self.state.lock().peak
    }
}

impl core::fmt::Debug for RequestBuffer {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let state = self.state.lock();
        f.debug_struct("RequestBuffer")
            .field("backlog", &state.queue.len())
            .field("capacity", &self.capacity)
            .field("closed", &state.closed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdhash_table::RequestKey;

    fn lookups(n: u64) -> Vec<Request> {
        (0..n).map(|k| Request::Lookup(RequestKey::new(k))).collect()
    }

    #[test]
    fn fifo_order_preserved() {
        let buffer = RequestBuffer::new(100);
        buffer.push_chunk(&lookups(10));
        buffer.close();
        let mut seen = Vec::new();
        while let Some(batch) = buffer.pop_batch(3) {
            seen.extend(batch);
        }
        assert_eq!(seen, lookups(10));
    }

    #[test]
    fn closed_empty_returns_none() {
        let buffer = RequestBuffer::new(4);
        buffer.close();
        assert!(buffer.pop_batch(1).is_none());
        // Pushes after close are dropped.
        buffer.push_chunk(&lookups(3));
        assert!(buffer.is_empty());
    }

    #[test]
    fn bounded_producer_blocks_until_consumer_drains() {
        let buffer = RequestBuffer::new(16);
        let requests = lookups(1000);
        crossbeam::thread::scope(|scope| {
            let b = &buffer;
            let reqs = &requests;
            scope.spawn(move |_| {
                b.push_chunk(reqs);
                b.close();
            });
            let mut total = 0;
            while let Some(batch) = buffer.pop_batch(8) {
                total += batch.len();
            }
            assert_eq!(total, 1000);
        })
        .expect("threads do not panic");
        assert!(buffer.peak_backlog() <= 16, "bound violated: {}", buffer.peak_backlog());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = RequestBuffer::new(0);
    }

    #[test]
    fn debug_format() {
        let buffer = RequestBuffer::new(4);
        assert!(format!("{buffer:?}").contains("capacity: 4"));
    }
}
