//! The hash table module: buffered request execution.
//!
//! "The hash table module reads incoming requests from a buffer and uses a
//! hashing algorithm to map them to an available server." (paper §5.1)
//! The buffer is a [`parking_lot`]-guarded queue so a generator thread can
//! feed the module while it drains — mirroring the paper's two-module
//! architecture — though all experiments can also run single-threaded via
//! [`HashTableModule::execute`].

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use hdhash_table::NoisyTable;

use crate::request::{Request, Response};

/// Execution statistics of a request batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecutionStats {
    /// Number of lookup requests executed.
    pub lookups: usize,
    /// Number of control (join/leave) requests executed.
    pub controls: usize,
    /// Number of failed requests.
    pub failures: usize,
    /// Wall time spent executing lookups only.
    pub lookup_time: Duration,
}

impl ExecutionStats {
    /// Average wall time per lookup; zero if none executed.
    #[must_use]
    pub fn avg_lookup_time(&self) -> Duration {
        if self.lookups == 0 {
            Duration::ZERO
        } else {
            self.lookup_time / self.lookups as u32
        }
    }
}

/// The emulator's hash table module.
///
/// # Examples
///
/// ```
/// use hdhash_emulator::{AlgorithmKind, Generator, HashTableModule, Workload};
///
/// let mut module = HashTableModule::new(AlgorithmKind::Hd.build(16));
/// let requests = Generator::new(Workload { initial_servers: 16, lookups: 100, ..Workload::default() }).requests();
/// let (responses, stats) = module.execute(&requests);
/// assert_eq!(responses.len(), 116);
/// assert_eq!(stats.lookups, 100);
/// assert_eq!(stats.failures, 0);
/// ```
pub struct HashTableModule {
    table: Box<dyn NoisyTable + Send>,
    buffer: Mutex<VecDeque<Request>>,
    /// Reusable scratch for the lookup-run batching in
    /// [`execute`](Self::execute), so steady-state draining allocates no
    /// per-batch key buffer.
    key_scratch: Vec<hdhash_table::RequestKey>,
}

impl HashTableModule {
    /// Wraps a hash table behind the module interface.
    #[must_use]
    pub fn new(table: Box<dyn NoisyTable + Send>) -> Self {
        Self { table, buffer: Mutex::new(VecDeque::new()), key_scratch: Vec::new() }
    }

    /// Access to the underlying table (e.g. for noise injection).
    pub fn table_mut(&mut self) -> &mut (dyn NoisyTable + Send) {
        &mut *self.table
    }

    /// Read access to the underlying table.
    #[must_use]
    pub fn table(&self) -> &(dyn NoisyTable + Send) {
        &*self.table
    }

    /// Queues requests into the module's buffer (generator side).
    pub fn enqueue<I: IntoIterator<Item = Request>>(&self, requests: I) {
        self.buffer.lock().extend(requests);
    }

    /// Number of requests waiting in the buffer.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.buffer.lock().len()
    }

    /// Drains up to `batch` buffered requests and executes them (the
    /// paper batches 256 requests per GPU dispatch).
    pub fn drain_batch(&mut self, batch: usize) -> (Vec<Response>, ExecutionStats) {
        let drained: Vec<Request> = {
            let mut buffer = self.buffer.lock();
            let take = batch.min(buffer.len());
            buffer.drain(..take).collect()
        };
        self.execute(&drained)
    }

    /// Executes a request slice directly, timing the lookup portion.
    ///
    /// Runs of consecutive lookups are dispatched through
    /// [`DynamicHashTable::lookup_batch`](hdhash_table::DynamicHashTable::lookup_batch),
    /// matching the paper's batched GPU dispatch; control requests act as
    /// batch boundaries (membership changes must order with lookups).
    pub fn execute(&mut self, requests: &[Request]) -> (Vec<Response>, ExecutionStats) {
        let mut responses = Vec::with_capacity(requests.len());
        let mut stats = ExecutionStats::default();
        // Reuse the module-owned scratch across calls (taken, not borrowed,
        // so the flush closure can hold it alongside the table).
        let mut pending_keys = std::mem::take(&mut self.key_scratch);
        pending_keys.clear();

        let flush =
            |keys: &mut Vec<hdhash_table::RequestKey>,
             table: &(dyn NoisyTable + Send),
             responses: &mut Vec<Response>,
             stats: &mut ExecutionStats| {
                if keys.is_empty() {
                    return;
                }
                let start = Instant::now();
                let results = table.lookup_batch(keys);
                stats.lookup_time += start.elapsed();
                stats.lookups += keys.len();
                for result in results {
                    match result {
                        Ok(server) => responses.push(Response::Mapped(server)),
                        Err(e) => {
                            stats.failures += 1;
                            responses.push(Response::Failed(e));
                        }
                    }
                }
                keys.clear();
            };

        for request in requests {
            match *request {
                Request::Join(server) => {
                    flush(&mut pending_keys, &*self.table, &mut responses, &mut stats);
                    stats.controls += 1;
                    match self.table.join(server) {
                        Ok(()) => responses.push(Response::ControlApplied),
                        Err(e) => {
                            stats.failures += 1;
                            responses.push(Response::Failed(e));
                        }
                    }
                }
                Request::Leave(server) => {
                    flush(&mut pending_keys, &*self.table, &mut responses, &mut stats);
                    stats.controls += 1;
                    match self.table.leave(server) {
                        Ok(()) => responses.push(Response::ControlApplied),
                        Err(e) => {
                            stats.failures += 1;
                            responses.push(Response::Failed(e));
                        }
                    }
                }
                Request::Lookup(key) => pending_keys.push(key),
            }
        }
        flush(&mut pending_keys, &*self.table, &mut responses, &mut stats);
        self.key_scratch = pending_keys;
        (responses, stats)
    }
}

impl core::fmt::Debug for HashTableModule {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("HashTableModule")
            .field("algorithm", &self.table.algorithm_name())
            .field("servers", &self.table.server_count())
            .field("pending", &self.pending())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::AlgorithmKind;
    use crate::generator::{Generator, Workload};
    use hdhash_table::{RequestKey, ServerId};

    fn module(kind: AlgorithmKind) -> HashTableModule {
        HashTableModule::new(kind.build(64))
    }

    #[test]
    fn executes_mixed_stream_without_failures() {
        for kind in AlgorithmKind::ALL {
            let mut m = module(kind);
            let w = Workload { initial_servers: 8, lookups: 200, ..Workload::default() };
            let (responses, stats) = m.execute(&Generator::new(w).requests());
            assert_eq!(stats.failures, 0, "{kind}");
            assert_eq!(stats.lookups, 200);
            assert_eq!(stats.controls, 8);
            assert_eq!(responses.iter().filter(|r| r.server().is_some()).count(), 200);
        }
    }

    #[test]
    fn lookup_on_empty_pool_fails_gracefully() {
        let mut m = module(AlgorithmKind::Consistent);
        let (responses, stats) = m.execute(&[Request::Lookup(RequestKey::new(1))]);
        assert_eq!(stats.failures, 1);
        assert!(matches!(responses[0], Response::Failed(_)));
    }

    #[test]
    fn buffer_enqueue_and_drain_in_batches() {
        let mut m = module(AlgorithmKind::Modular);
        m.enqueue([Request::Join(ServerId::new(1))]);
        let w = Workload { initial_servers: 0, lookups: 700, ..Workload::default() };
        m.enqueue(Generator::new(w).lookup_requests());
        assert_eq!(m.pending(), 701);

        let mut total = 0;
        while m.pending() > 0 {
            let (responses, _) = m.drain_batch(256);
            assert!(responses.len() <= 256);
            total += responses.len();
        }
        assert_eq!(total, 701);
    }

    #[test]
    fn stats_average() {
        let stats = ExecutionStats {
            lookups: 4,
            controls: 0,
            failures: 0,
            lookup_time: Duration::from_micros(100),
        };
        assert_eq!(stats.avg_lookup_time(), Duration::from_micros(25));
        assert_eq!(ExecutionStats::default().avg_lookup_time(), Duration::ZERO);
    }

    #[test]
    fn duplicate_join_counts_as_failure() {
        let mut m = module(AlgorithmKind::Rendezvous);
        let reqs = [Request::Join(ServerId::new(1)), Request::Join(ServerId::new(1))];
        let (_, stats) = m.execute(&reqs);
        assert_eq!(stats.failures, 1);
    }

    #[test]
    fn debug_output() {
        let m = module(AlgorithmKind::Hd);
        assert!(format!("{m:?}").contains("algorithm"));
    }
}
