//! Time-correlated memory errors and the error-timeline experiment.
//!
//! The paper's noise sweep (Figure 5) injects a fixed number of flips per
//! trial. Its own sources say more: Schroeder et al.'s field study found
//! that *"each year a third of the machines experiences a memory error"*
//! and that a machine which saw an error is **13–228× more likely** to
//! see another within the month. Errors arrive clustered in time, not
//! uniformly — and clustering is exactly what hurts a system that never
//! repairs its state between errors.
//!
//! [`CorrelatedErrorProcess`] models a fleet with a two-state (healthy /
//! degraded) per-machine Markov chain matching those field statistics,
//! and [`run_timeline`] plays the process against every hashing algorithm
//! *without* repairing tables between months (the cloud-operator scenario
//! the paper motivates: fewer memory swaps). The cumulative mismatch
//! series it produces is this repository's Figure 7 — an extension
//! experiment, clearly labelled as such in EXPERIMENTS.md.

use hdhash_hashfn::SplitMix64;
use hdhash_table::Assignment;

use crate::algorithms::AlgorithmKind;
use crate::noise::NoisePlan;
use crate::runner;

/// Parameters of the per-machine error chain.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CorrelatedErrorModel {
    /// Probability a *healthy* machine errors in a given month.
    pub monthly_error_rate: f64,
    /// Multiplier on that probability for a machine that errored the
    /// previous month (Schroeder et al. report 13–228×; capped at 1).
    pub correlation_factor: f64,
    /// Upset events per error month, each drawing its burst length from
    /// the Ibe et al. 22 nm mixture.
    pub events_per_error: usize,
}

impl CorrelatedErrorModel {
    /// The field-study defaults: a monthly rate that compounds to
    /// Schroeder et al.'s one-third-of-machines-per-year, the low end of
    /// the reported 13–228× correlation range (the conservative choice,
    /// which also keeps the degraded-state probability a proper fraction
    /// instead of saturating at 1), and one upset event per error month.
    #[must_use]
    pub fn field_study() -> Self {
        // 1 − (1 − p)¹² = 1/3  ⇒  p ≈ 0.0332.
        Self { monthly_error_rate: 0.0332, correlation_factor: 15.0, events_per_error: 1 }
    }

    /// The probability a machine errors at least once in a year, ignoring
    /// correlation (the quantity Schroeder et al. report as one third).
    #[must_use]
    pub fn annual_error_probability(&self) -> f64 {
        1.0 - (1.0 - self.monthly_error_rate).powi(12)
    }

    /// The degraded-state monthly probability, capped at 1.
    #[must_use]
    pub fn degraded_rate(&self) -> f64 {
        (self.monthly_error_rate * self.correlation_factor).min(1.0)
    }
}

impl Default for CorrelatedErrorModel {
    fn default() -> Self {
        Self::field_study()
    }
}

/// One machine-month error event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ErrorEvent {
    /// Which machine errored (index into the fleet).
    pub machine: usize,
    /// Upset events this month (each one burst from the Ibe mixture).
    pub upsets: usize,
}

/// A deterministic fleet-wide error process.
///
/// # Examples
///
/// ```
/// use hdhash_emulator::correlated::{CorrelatedErrorModel, CorrelatedErrorProcess};
///
/// let mut process = CorrelatedErrorProcess::new(100, CorrelatedErrorModel::field_study(), 7);
/// let year: usize = (0..12).map(|_| process.advance_month().len()).sum();
/// // ~a third of 100 machines error per year, and correlation clusters
/// // repeat errors onto those machines: several dozen machine-months.
/// assert!(year > 5 && year < 150);
/// ```
#[derive(Debug, Clone)]
pub struct CorrelatedErrorProcess {
    model: CorrelatedErrorModel,
    rng: SplitMix64,
    /// Whether each machine errored in the previous month.
    degraded: Vec<bool>,
    month: usize,
}

impl CorrelatedErrorProcess {
    /// Creates a process over `machines` healthy machines.
    ///
    /// # Panics
    ///
    /// Panics if `machines == 0` or the model rates are not in `[0, 1]`
    /// after capping.
    #[must_use]
    pub fn new(machines: usize, model: CorrelatedErrorModel, seed: u64) -> Self {
        assert!(machines > 0, "an error process needs at least one machine");
        assert!(
            (0.0..=1.0).contains(&model.monthly_error_rate),
            "monthly rate must be a probability"
        );
        assert!(model.correlation_factor >= 1.0, "correlation cannot be protective here");
        Self { model, rng: SplitMix64::new(seed), degraded: vec![false; machines], month: 0 }
    }

    /// The number of machines in the fleet.
    #[must_use]
    pub fn machines(&self) -> usize {
        self.degraded.len()
    }

    /// Months simulated so far.
    #[must_use]
    pub fn month(&self) -> usize {
        self.month
    }

    /// Advances the fleet by one month, returning the machines that
    /// errored.
    pub fn advance_month(&mut self) -> Vec<ErrorEvent> {
        let mut events = Vec::new();
        for machine in 0..self.degraded.len() {
            let rate = if self.degraded[machine] {
                self.model.degraded_rate()
            } else {
                self.model.monthly_error_rate
            };
            let errored = self.rng.next_f64() < rate;
            self.degraded[machine] = errored;
            if errored {
                events.push(ErrorEvent { machine, upsets: self.model.events_per_error });
            }
        }
        self.month += 1;
        events
    }
}

/// Configuration of the error-timeline experiment (this repository's
/// Figure 7 extension).
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineConfig {
    /// Algorithms to play the timeline against.
    pub algorithms: Vec<AlgorithmKind>,
    /// Pool size.
    pub servers: usize,
    /// Months to simulate.
    pub months: usize,
    /// Lookups in the reference stream.
    pub lookups: usize,
    /// Machines hosting (shards of) the table's state — a directory
    /// service runs replicated, so several machines' errors reach it.
    /// Each erroring machine-month applies one noise plan.
    pub machines: usize,
    /// The per-machine error chain parameters.
    pub model: CorrelatedErrorModel,
    /// Deterministic seed.
    pub seed: u64,
}

impl Default for TimelineConfig {
    fn default() -> Self {
        Self {
            algorithms: AlgorithmKind::PAPER.to_vec(),
            servers: 512,
            months: 36,
            lookups: 10_000,
            machines: 4,
            model: CorrelatedErrorModel::field_study(),
            seed: 0xF16_7,
        }
    }
}

/// One month of one algorithm's timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineSample {
    /// Which algorithm.
    pub algorithm: AlgorithmKind,
    /// 1-based month index.
    pub month: usize,
    /// Whether any hosting machine errored this month.
    pub errored: bool,
    /// Bits flipped in the table state so far (never repaired).
    pub cumulative_bits: usize,
    /// Fraction of the reference stream now mapped to the wrong server.
    pub mismatch_fraction: f64,
}

/// Plays the correlated error process against each algorithm **without
/// repairing state between months** and tracks the mismatch fraction
/// against the clean assignment.
///
/// Every algorithm sees the *identical* error timeline (same months, same
/// seeds), so the series differ only in how each data structure degrades.
///
/// # Panics
///
/// Panics if `servers == 0` or `machines == 0`.
#[must_use]
pub fn run_timeline(config: &TimelineConfig) -> Vec<TimelineSample> {
    let keys = runner::shared_lookup_keys(config.servers, config.lookups, config.seed);
    // One pre-drawn timeline shared by all algorithms: how many hosting
    // machines errored each month.
    let mut process =
        CorrelatedErrorProcess::new(config.machines, config.model, config.seed ^ 0x717E_11E);
    let timeline: Vec<usize> =
        (0..config.months).map(|_| process.advance_month().len()).collect();

    let mut samples = Vec::new();
    for &algorithm in &config.algorithms {
        let mut table = algorithm.build(config.servers);
        for i in 0..config.servers as u64 {
            table.join(hdhash_table::ServerId::new(i)).expect("fresh server within capacity");
        }
        let reference =
            Assignment::capture(&*table, keys.iter().copied()).expect("pool is non-empty");
        let mut cumulative_bits = 0usize;
        for (index, &errored_machines) in timeline.iter().enumerate() {
            let errored = errored_machines > 0;
            if errored {
                let plan = NoisePlan::IbeMixture {
                    events: config.model.events_per_error * errored_machines,
                };
                let noise_seed = config.seed.wrapping_add(hdhash_hashfn::mix64(index as u64));
                cumulative_bits += plan.apply(&mut *table, noise_seed);
            }
            let current =
                Assignment::capture(&*table, keys.iter().copied()).expect("pool is non-empty");
            samples.push(TimelineSample {
                algorithm,
                month: index + 1,
                errored,
                cumulative_bits,
                mismatch_fraction: hdhash_table::remap_fraction(&reference, &current),
            });
        }
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annual_rate_matches_field_study() {
        let model = CorrelatedErrorModel::field_study();
        let annual = model.annual_error_probability();
        assert!((annual - 1.0 / 3.0).abs() < 0.01, "annual rate {annual:.3}");
        assert!(model.degraded_rate() > model.monthly_error_rate);
        assert!(model.degraded_rate() <= 1.0);
    }

    #[test]
    fn process_is_deterministic() {
        let run = || {
            let mut p = CorrelatedErrorProcess::new(50, CorrelatedErrorModel::field_study(), 3);
            (0..24).map(|_| p.advance_month()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn correlation_clusters_errors() {
        // Conditional error rates measured over a long horizon: a machine
        // that errored last month must error far more often this month.
        let mut p = CorrelatedErrorProcess::new(200, CorrelatedErrorModel::field_study(), 11);
        let mut after_error = [0usize; 2]; // [months observed, errors]
        let mut after_clean = [0usize; 2];
        let mut previous = vec![false; 200];
        for _ in 0..240 {
            let events = p.advance_month();
            let mut current = vec![false; 200];
            for e in &events {
                current[e.machine] = true;
            }
            for m in 0..200 {
                let bucket = if previous[m] { &mut after_error } else { &mut after_clean };
                bucket[0] += 1;
                bucket[1] += usize::from(current[m]);
            }
            previous = current;
        }
        let p_after_error = after_error[1] as f64 / after_error[0] as f64;
        let p_after_clean = after_clean[1] as f64 / after_clean[0] as f64;
        assert!(
            p_after_error > 10.0 * p_after_clean,
            "correlation not visible: {p_after_error:.3} vs {p_after_clean:.4}"
        );
    }

    #[test]
    fn fleet_rate_is_plausible() {
        // Over many machine-years the error incidence should sit near the
        // field-study third (correlation inflates it somewhat).
        let mut p = CorrelatedErrorProcess::new(500, CorrelatedErrorModel::field_study(), 13);
        let mut errored_any = vec![false; 500];
        for _ in 0..12 {
            for e in p.advance_month() {
                errored_any[e.machine] = true;
            }
        }
        let fraction = errored_any.iter().filter(|&&b| b).count() as f64 / 500.0;
        assert!((0.2..0.55).contains(&fraction), "annual fraction {fraction:.3}");
        assert_eq!(p.month(), 12);
        assert_eq!(p.machines(), 500);
    }

    #[test]
    fn timeline_hd_flat_consistent_degrades() {
        // Compressed timeline with an aggressive error rate so the test is
        // fast and the degradation is certain to appear.
        let config = TimelineConfig {
            machines: 1,
            algorithms: vec![AlgorithmKind::Consistent, AlgorithmKind::Hd],
            servers: 128,
            months: 12,
            lookups: 1500,
            model: CorrelatedErrorModel {
                monthly_error_rate: 0.5,
                correlation_factor: 2.0,
                events_per_error: 3,
            },
            seed: 17,
        };
        let samples = run_timeline(&config);
        assert_eq!(samples.len(), 2 * 12);
        let last = |kind: AlgorithmKind| {
            samples
                .iter().rfind(|s| s.algorithm == kind)
                .expect("12 months present")
        };
        let consistent = last(AlgorithmKind::Consistent);
        let hd = last(AlgorithmKind::Hd);
        assert!(consistent.cumulative_bits > 0, "no errors landed in 12 high-rate months");
        assert!(
            consistent.mismatch_fraction > 0.0,
            "consistent hashing should degrade under accumulated errors"
        );
        assert_eq!(hd.mismatch_fraction, 0.0, "HD hashing must stay clean");
        // Mismatch series are monotone within this run only if errors
        // accumulate; at minimum they never report negative fractions.
        assert!(samples.iter().all(|s| (0.0..=1.0).contains(&s.mismatch_fraction)));
    }

    #[test]
    fn timeline_is_deterministic() {
        let config = TimelineConfig {
            machines: 1,
            algorithms: vec![AlgorithmKind::Consistent],
            servers: 32,
            months: 6,
            lookups: 300,
            model: CorrelatedErrorModel::field_study(),
            seed: 19,
        };
        assert_eq!(run_timeline(&config), run_timeline(&config));
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn empty_fleet_panics() {
        let _ = CorrelatedErrorProcess::new(0, CorrelatedErrorModel::field_study(), 0);
    }
}
