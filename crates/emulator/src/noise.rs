//! Noise-injection plans (paper §5.3).
//!
//! The paper injects memory errors as random bit flips, citing field
//! studies: single-event upsets (SEU), multi-cell upsets (MCU, bursts of
//! adjacent bits — 4-bit bursts 10% and 8-bit bursts 1% of the time at
//! 22 nm per Ibe et al.), and strong within-machine error correlation
//! (Schroeder et al.). A [`NoisePlan`] describes one such injection
//! pattern; applying it to a [`NoisyTable`] corrupts the algorithm's
//! declared vulnerable state surface.

use hdhash_hashfn::SplitMix64;
use hdhash_table::NoisyTable;

/// A description of memory errors to inject into a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum NoisePlan {
    /// `count` independent single-bit flips at uniform positions (SEU).
    Seu {
        /// Number of bit flips.
        count: usize,
    },
    /// One burst of `length` adjacent flipped bits (MCU).
    Mcu {
        /// Burst length in bits.
        length: usize,
    },
    /// `events` upset events whose burst lengths follow the Ibe et al.
    /// 22 nm mixture: 1 bit (89%), 4 bits (10%), 8 bits (1%).
    IbeMixture {
        /// Number of upset events.
        events: usize,
    },
}

impl NoisePlan {
    /// Applies the plan to a table, drawing randomness from `seed`.
    /// Returns the total number of bits flipped.
    pub fn apply(self, table: &mut (dyn NoisyTable + Send), seed: u64) -> usize {
        let mut rng = SplitMix64::new(seed);
        match self {
            NoisePlan::Seu { count } => table.inject_bit_flips(count, rng.next_u64()),
            NoisePlan::Mcu { length } => table.inject_burst(length, rng.next_u64()),
            NoisePlan::IbeMixture { events } => {
                let mut flipped = 0;
                for _ in 0..events {
                    let x = rng.next_f64();
                    let length = if x < 0.01 {
                        8
                    } else if x < 0.11 {
                        4
                    } else {
                        1
                    };
                    flipped += table.inject_burst(length, rng.next_u64());
                }
                flipped
            }
        }
    }

    /// The nominal number of bits this plan flips (upper bound for
    /// mixtures).
    #[must_use]
    pub fn nominal_bits(self) -> usize {
        match self {
            NoisePlan::Seu { count } => count,
            NoisePlan::Mcu { length } => length,
            NoisePlan::IbeMixture { events } => events * 8,
        }
    }
}

impl core::fmt::Display for NoisePlan {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            NoisePlan::Seu { count } => write!(f, "seu({count})"),
            NoisePlan::Mcu { length } => write!(f, "mcu({length})"),
            NoisePlan::IbeMixture { events } => write!(f, "ibe({events})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::AlgorithmKind;
    use hdhash_table::ServerId;

    fn table_with_servers(kind: AlgorithmKind, n: u64) -> Box<dyn NoisyTable + Send> {
        let mut t = kind.build(n as usize);
        for i in 0..n {
            t.join(ServerId::new(i)).expect("fresh server");
        }
        t
    }

    #[test]
    fn seu_flips_exact_count() {
        let mut t = table_with_servers(AlgorithmKind::Consistent, 32);
        assert_eq!(NoisePlan::Seu { count: 7 }.apply(&mut *t, 1), 7);
    }

    #[test]
    fn mcu_burst_is_bounded() {
        let mut t = table_with_servers(AlgorithmKind::Rendezvous, 32);
        let flipped = NoisePlan::Mcu { length: 10 }.apply(&mut *t, 2);
        assert!((1..=10).contains(&flipped));
    }

    #[test]
    fn ibe_mixture_flips_reasonable_total() {
        let mut t = table_with_servers(AlgorithmKind::Hd, 32);
        let flipped = NoisePlan::IbeMixture { events: 100 }.apply(&mut *t, 3);
        // Expected ≈ 100 · (0.89·1 + 0.10·4 + 0.01·8) ≈ 137.
        assert!((100..=250).contains(&flipped), "flipped {flipped}");
        assert_eq!(NoisePlan::IbeMixture { events: 100 }.nominal_bits(), 800);
    }

    #[test]
    fn plans_are_deterministic() {
        let mut a = table_with_servers(AlgorithmKind::Consistent, 16);
        let mut b = table_with_servers(AlgorithmKind::Consistent, 16);
        NoisePlan::Seu { count: 5 }.apply(&mut *a, 9);
        NoisePlan::Seu { count: 5 }.apply(&mut *b, 9);
        for k in 0..500u64 {
            let key = hdhash_table::RequestKey::new(k);
            assert_eq!(a.lookup(key).expect("non-empty"), b.lookup(key).expect("non-empty"));
        }
    }

    #[test]
    fn display_and_nominal() {
        assert_eq!(NoisePlan::Seu { count: 3 }.to_string(), "seu(3)");
        assert_eq!(NoisePlan::Mcu { length: 10 }.to_string(), "mcu(10)");
        assert_eq!(NoisePlan::IbeMixture { events: 2 }.to_string(), "ibe(2)");
        assert_eq!(NoisePlan::Seu { count: 3 }.nominal_bits(), 3);
        assert_eq!(NoisePlan::Mcu { length: 10 }.nominal_bits(), 10);
    }
}
