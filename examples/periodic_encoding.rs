//! Future work (paper §6): circular-hypervectors for periodic data.
//!
//! "Circular-hypervectors provide a way to represent periodic information
//! that has not been available in the HDC literature thus far. Consider,
//! for example, the seasons of the year […] hours of a day or days of a
//! week, as well as other angular data such as directions."
//!
//! This example encodes the 24 hours of a day as circular-hypervectors and
//! shows (1) the wrap-around similarity structure (23:00 is close to
//! 00:00), and (2) a tiny HDC classifier: bundling "business-hours"
//! observations into a prototype and classifying unseen hours by
//! similarity — the kind of machine-learning use the paper anticipates.
//!
//! Run with `cargo run --release --example periodic_encoding`.

use hdhash::hdc::basis::CircularBasis;
use hdhash::hdc::ops::bundle;
use hdhash::hdc::similarity::cosine;
use hdhash::hdc::{Hypervector, Rng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = Rng::new(24);
    let d = 10_008;
    let hours = CircularBasis::generate(24, d, &mut rng)?;

    println!("# Circular-hypervector encoding of the 24 hours of a day (d = {d})\n");

    // 1. Wrap-around similarity: midnight's nearest neighbours.
    println!("similarity of 00:00 to selected hours:");
    for h in [1usize, 6, 12, 18, 23] {
        println!("  00:00 vs {h:02}:00 -> {:+.2}", cosine(&hours[0], &hours[h]));
    }
    let wrap = cosine(&hours[0], &hours[23]);
    let step = cosine(&hours[0], &hours[1]);
    assert!((wrap - step).abs() < 0.05, "circular encoding must wrap");
    println!("  (23:00 is as close to midnight as 01:00 — no discontinuity)\n");

    // 2. A prototype classifier: bundle observations from business hours.
    let business: Vec<&Hypervector> = (9..17).map(|h| &hours[h]).collect();
    let prototype = bundle(&business, &mut rng)?;

    println!("business-hours prototype (bundle of 09:00..16:00), similarity by hour:");
    let mut classified_busy = Vec::new();
    for h in 0..24 {
        let sim = cosine(&prototype, &hours[h]);
        let busy = sim > 0.35;
        if busy {
            classified_busy.push(h);
        }
        println!(
            "  {h:02}:00 {}{}",
            "#".repeat(((sim.max(0.0)) * 40.0) as usize),
            if busy { "  <- business hours" } else { "" }
        );
    }
    // The classifier must recover the trained window (allow ±1 hour bleed).
    assert!(classified_busy.contains(&12));
    assert!(!classified_busy.contains(&3));
    println!("\nclassified as business hours: {classified_busy:?}");

    Ok(())
}
