//! Weighted cluster: heterogeneous server capacities with HD hashing.
//!
//! A realistic pool mixes instance sizes — say small, medium and large
//! machines that should carry traffic 1 : 2 : 4. This example builds a
//! weighted HD hash table where each server holds as many codebook
//! replicas as its capacity class, verifies the observed load tracks the
//! weights, and shows the robustness guarantee carries over unchanged.
//!
//! Run with `cargo run --release --example weighted_cluster`.

use std::collections::BTreeMap;

use hdhash::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut table = WeightedHdTable::with_config(
        WeightedHdTable::builder().dimension(10_000).codebook_size(512).build_config()?,
    );

    // Four small (w=1), four medium (w=2) and four large (w=4) servers.
    let mut class_of = BTreeMap::new();
    for id in 0..12u64 {
        let weight = match id / 4 {
            0 => 1,
            1 => 2,
            _ => 4,
        };
        table.join_weighted(ServerId::new(id), weight)?;
        class_of.insert(ServerId::new(id), weight);
    }
    println!(
        "pool: {} servers holding {} replicas on a {}-slot circle",
        table.server_count(),
        table.replica_count(),
        table.config().codebook_size()
    );

    // Route a large workload and aggregate load per capacity class.
    let workload: Vec<RequestKey> = (0..60_000).map(RequestKey::new).collect();
    let assignment = Assignment::capture(&table, workload.iter().copied())?;
    let loads = assignment.load_by_server();
    let mut per_class: BTreeMap<u32, usize> = BTreeMap::new();
    for (server, &load) in &loads {
        *per_class.entry(class_of[server]).or_default() += load;
    }
    let total: usize = per_class.values().sum();
    println!("\nload by capacity class (weights 1:2:4, 4 servers each):");
    for (weight, load) in &per_class {
        println!(
            "  weight {}: {:>6} requests ({:>5.1}% of traffic, fair share {:.1}%)",
            weight,
            load,
            100.0 * *load as f64 / total as f64,
            100.0 * (4 * weight) as f64 / 28.0,
        );
    }
    // Heavier classes must carry more traffic.
    assert!(per_class[&4] > per_class[&2]);
    assert!(per_class[&2] > per_class[&1]);

    // The robustness guarantee is replica-count independent.
    let flipped = table.inject_bit_flips(10, 99);
    let noisy = Assignment::capture(&table, workload.iter().copied())?;
    println!(
        "\n{} bit errors across {} replica hypervectors: {:.3}% of requests moved",
        flipped,
        table.replica_count(),
        100.0 * remap_fraction(&assignment, &noisy)
    );
    assert_eq!(remap_fraction(&assignment, &noisy), 0.0);

    // Scaling down a large server moves only its own traffic.
    table.clear_noise();
    let victim = ServerId::new(11);
    table.leave(victim)?;
    let after = Assignment::capture(&table, workload.iter().copied())?;
    let moved = workload
        .iter()
        .filter(|&&r| assignment.server_of(r) != after.server_of(r))
        .count();
    let victim_load = loads.get(&victim).copied().unwrap_or(0);
    println!(
        "removing a weight-4 server moved {moved} requests (it carried {victim_load}); \
         nobody else's traffic moved"
    );
    for &r in &workload {
        if assignment.server_of(r) != Some(victim) {
            assert_eq!(assignment.server_of(r), after.server_of(r));
        }
    }

    Ok(())
}
