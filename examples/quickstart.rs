//! Quickstart: build an HD hash table, route requests, scale the pool.
//!
//! Run with `cargo run --release --example quickstart`.

use hdhash::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An HD hash table with the paper's defaults: ~10k-bit hypervectors,
    // a 512-slot circular codebook (room for 511 servers).
    let mut table = HdHashTable::new();

    // Eight servers announce themselves (join requests).
    for id in 0..8 {
        table.join(ServerId::new(id))?;
    }
    println!("pool: {} servers", table.server_count());

    // Route a handful of requests.
    let requests: Vec<RequestKey> = (0..10).map(|k| RequestKey::new(k * 1_000_003)).collect();
    for &r in &requests {
        println!("  {r} -> {}", table.lookup(r)?);
    }

    // Capture the full assignment of a workload, then scale up.
    let workload: Vec<RequestKey> = (0..10_000).map(RequestKey::new).collect();
    let before = Assignment::capture(&table, workload.iter().copied())?;
    table.join(ServerId::new(100))?;
    let after = Assignment::capture(&table, workload.iter().copied())?;
    println!(
        "adding one server remapped {:.2}% of requests (modular hashing would remap ~89%)",
        100.0 * remap_fraction(&before, &after)
    );

    // The robustness headline: corrupt stored memory, nothing moves.
    let reference = table.lookup(requests[0])?;
    let flipped = table.inject_bit_flips(10, 42);
    assert_eq!(table.lookup(requests[0])?, reference);
    println!("{flipped} bit errors injected into stored hypervectors: assignments unchanged");

    // Scale down: only the departing server's requests move.
    let before = Assignment::capture(&table, workload.iter().copied())?;
    table.leave(ServerId::new(3))?;
    let after = Assignment::capture(&table, workload.iter().copied())?;
    println!(
        "removing one server remapped {:.2}% of requests",
        100.0 * remap_fraction(&before, &after)
    );

    Ok(())
}
