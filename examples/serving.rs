//! A closed-loop serving demo: the emulator's generator feeds the sharded
//! serving engine while membership churns through the epoch path.
//!
//! ```text
//! cargo run --release --example serving
//! cargo run --release --example serving -- work-stealing
//! cargo run --release --example serving -- shared-queue trace.jsonl metrics.prom
//! ```
//!
//! The optional second and third arguments turn the unified telemetry
//! layer on: the drained trace ring is written as JSONL to the second
//! argument and a Prometheus exposition covering every layer (engine,
//! gossip, TCP, tracer) is written to the third. CI's observability job
//! runs the example this way and validates both files offline (see
//! `docs/OBSERVABILITY.md`).
//!
//! Architecture exercised (see README "Serving layer"):
//!
//! ```text
//! generator ──► scheduler core ──► coalescing workers ──► shards ──► metrics
//!               (shared queue or
//!                work-stealing deques)
//! ```
//!
//! The churn phase drives lookups through the **async front end**: each
//! `Ticket` is awaited as a future on the vendored block-on executor, a
//! window of them in flight at a time.

use std::sync::Arc;
use std::time::{Duration, Instant};

use hdhash::emulator::{Generator, KeyDistribution, Workload};
use hdhash::obs::{TraceConfig, TraceEvent, TelemetrySnapshot};
use hdhash::serve::gossip::{converged, GossipConfig, GossipNode};
use hdhash::serve::replication::ReplicatedEngine;
use hdhash::serve::tcp::{TcpConfig, TcpNetwork};
use hdhash::serve::telemetry::{export_engine, export_gossip, export_tcp, export_tracer};
use hdhash::serve::transport::ReplicaId;
use hdhash::serve::{drive, executor, SchedulerKind, ServeConfig, ServeEngine};
use hdhash::table::{RequestKey, ServerId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let scheduler = match args.next().as_deref() {
        Some(name) => SchedulerKind::parse(name)
            .ok_or_else(|| format!("unknown scheduler `{name}`"))?,
        None => SchedulerKind::SharedQueue,
    };
    let trace_out = args.next();
    let metrics_out = args.next();
    let telemetry_on = trace_out.is_some() || metrics_out.is_some();
    let trace =
        if telemetry_on { TraceConfig::sampled(64) } else { TraceConfig::disabled() };
    let config = ServeConfig {
        shards: 4,
        workers: 2,
        batch_capacity: 64,
        queue_capacity: 4096,
        dimension: 4096,
        codebook_size: 256,
        seed: 2022,
        scheduler,
        engine: Default::default(),
        trace,
    };
    println!(
        "engine: {} shards × {} workers, batch capacity {}, queue capacity {}, \
         scheduler {}",
        config.shards,
        config.workers,
        config.batch_capacity,
        config.queue_capacity,
        config.scheduler.name()
    );
    let mut engine = ServeEngine::new(config)?;

    // A fleet of 48 servers joins; every join publishes one epoch per shard.
    for id in 0..48u64 {
        engine.join(ServerId::new(id))?;
    }
    println!("joined 48 servers; shard epochs: {:?}", {
        let snapshots = engine.snapshots();
        snapshots.iter().map(|s| s.epoch).collect::<Vec<_>>()
    });

    // Phase 1: a Zipf-skewed closed-loop burst (web-style traffic).
    let workload = Workload {
        initial_servers: 0,
        lookups: 30_000,
        keys: KeyDistribution::Zipf { universe: 10_000, exponent: 1.1 },
        seed: 7,
    };
    let stream = Generator::new(workload).lookup_requests();
    let report = drive(&engine, &stream, 512);
    println!(
        "\nphase 1 — steady state: {} lookups in {:?} ({:.0} req/s, {} rejected)",
        report.completed,
        report.elapsed,
        report.throughput().requests_per_sec(),
        report.rejected,
    );
    if let Some(latency) = report.latency {
        println!(
            "  latency p50 {:?} / p90 {:?} / p99 {:?} / max {:?}",
            latency.p50, latency.p90, latency.p99, latency.max
        );
    }

    // Phase 2: churn — requests race membership changes through the epoch
    // path. Readers never block on the reconfigurations; responses carry
    // the epoch they were served at. The client side is **async**: a
    // window of tickets is awaited as futures on the block-on executor.
    let verdicts = std::thread::scope(|scope| {
        let engine = &engine;
        let churner = scope.spawn(move || {
            for id in 0..12u64 {
                engine.leave(ServerId::new(id)).expect("member");
                engine.join(ServerId::new(100 + id)).expect("fresh");
            }
        });
        let (served, epochs) = executor::block_on(async {
            let mut epochs_seen = std::collections::BTreeSet::new();
            let mut served = 0usize;
            let mut window = std::collections::VecDeque::new();
            for k in 0..10_000u64 {
                if window.len() >= 64 {
                    let ticket: hdhash::serve::Ticket =
                        window.pop_front().expect("non-empty window");
                    let response = ticket.await;
                    assert!(response.result.is_ok(), "pool never empties during churn");
                    epochs_seen.insert((response.shard, response.epoch));
                    served += 1;
                }
                window.push_back(
                    engine
                        .submit(RequestKey::new(k.wrapping_mul(0x9E37_79B9)))
                        .expect("queue sized for the load"),
                );
            }
            for ticket in window {
                let response = ticket.await;
                assert!(response.result.is_ok(), "pool never empties during churn");
                epochs_seen.insert((response.shard, response.epoch));
                served += 1;
            }
            (served, epochs_seen.len())
        });
        churner.join().expect("churner");
        (served, epochs)
    });
    println!(
        "\nphase 2 — churn race (async front end): {} lookups awaited across {} \
         distinct (shard, epoch) snapshots, zero failures",
        verdicts.0, verdicts.1
    );

    // The anti-entropy self-check: shadow and published signatures agree.
    let divergence = engine.shard_divergence(0);
    println!(
        "anti-entropy: max shadow↔published signature distance = {}",
        divergence.iter().map(|d| d.distance).max().unwrap_or(0)
    );

    engine.shutdown();
    let metrics = engine.metrics();
    println!("\nper-shard totals:");
    for shard in &metrics.shards {
        println!(
            "  shard {}: epoch {:>3}, {:>2} members, {:>6} served, {:>5} batches, mean fill {:.1}",
            shard.shard, shard.epoch, shard.members, shard.served, shard.batches,
            shard.mean_batch_fill
        );
    }
    println!(
        "engine totals: {} submitted, {} completed, {} rejected",
        metrics.submitted, metrics.completed, metrics.rejected
    );

    // Phase 3: a 2-replica cluster gossips divergent membership over
    // loopback TCP until anti-entropy converges it. With telemetry on,
    // every layer shares one tracer per replica, so the drained ring
    // interleaves request, gossip, and transport lifecycles.
    let (events, snapshot) = replicated_phase(trace, &engine)?;
    println!(
        "\nphase 3 — replicated anti-entropy over TCP: converged; \
         {} trace events captured across all layers",
        events.len()
    );

    if let Some(path) = trace_out.as_deref() {
        std::fs::write(path, hdhash::obs::jsonl(&events))?;
        println!("trace JSONL written to {path} ({} events)", events.len());
    }
    if let Some(path) = metrics_out.as_deref() {
        std::fs::write(path, snapshot.to_prometheus())?;
        println!("telemetry exposition written to {path}");
    }
    Ok(())
}

/// Runs the 2-replica gossip-over-TCP phase and folds the whole
/// process — the phase-1/2 engine plus both replicas — into one
/// [`TelemetrySnapshot`] and one drained event list.
fn replicated_phase(
    trace: TraceConfig,
    front: &ServeEngine,
) -> Result<(Vec<TraceEvent>, TelemetrySnapshot), Box<dyn std::error::Error>> {
    let tcp = TcpConfig {
        connect_timeout: Duration::from_millis(500),
        read_timeout: Duration::from_millis(100),
        write_timeout: Duration::from_secs(1),
        reconnect_base: Duration::from_millis(10),
        reconnect_cap: Duration::from_millis(200),
        outbox_capacity: 1024,
    };
    let networks: Vec<TcpNetwork> = (0..2)
        .map(|i| TcpNetwork::bind(ReplicaId::new(i), "127.0.0.1:0", tcp))
        .collect::<Result<_, _>>()?;
    let addrs: Vec<_> = networks.iter().map(TcpNetwork::local_addr).collect();
    for (i, network) in networks.iter().enumerate() {
        for (j, &addr) in addrs.iter().enumerate() {
            if i != j {
                network.add_peer(ReplicaId::new(j as u64), addr);
            }
        }
    }
    let config = ServeConfig {
        shards: 2,
        workers: 2,
        dimension: 1024,
        codebook_size: 32,
        trace,
        ..ServeConfig::default()
    };
    let peers: Vec<ReplicaId> = (0..2).map(ReplicaId::new).collect();
    let replicas: Vec<Arc<ReplicatedEngine>> = (0..2)
        .map(|i| Ok(Arc::new(ReplicatedEngine::new(ReplicaId::new(i), config)?)))
        .collect::<Result<_, hdhash::serve::ServeError>>()?;
    let nodes: Vec<GossipNode<_>> = replicas
        .iter()
        .zip(&networks)
        .map(|(replica, network)| {
            let tracer = replica.engine().tracer();
            network.set_tracer(Arc::clone(&tracer));
            GossipNode::new(
                Arc::clone(replica),
                network.endpoint(),
                peers.clone(),
                GossipConfig { period: Duration::from_millis(10), ..GossipConfig::default() },
            )
            .with_tracer(tracer)
        })
        .collect();

    // Divergent joins force a real sync exchange, not just adverts.
    for id in 0..10u64 {
        replicas[0].join(ServerId::new(id))?;
    }
    for id in 6..14u64 {
        replicas[1].join(ServerId::new(id))?;
    }
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        for node in &nodes {
            node.tick();
        }
        std::thread::sleep(Duration::from_millis(20));
        for node in &nodes {
            node.pump();
        }
        let views: Vec<&ReplicatedEngine> = replicas.iter().map(Arc::as_ref).collect();
        if converged(&views) {
            break;
        }
        if Instant::now() >= deadline {
            return Err("replicas did not converge over TCP".into());
        }
    }
    // A short lookup burst per replica so the per-replica engine metrics
    // in the exposition carry real traffic.
    for replica in &replicas {
        for k in 0..32u64 {
            let ticket = replica.submit(RequestKey::new(k))?;
            let _ = ticket.wait();
        }
    }

    let mut snapshot = TelemetrySnapshot::new();
    export_engine(&mut snapshot, &[("stage", "front")], &front.metrics());
    export_tracer(&mut snapshot, &[("stage", "front")], &front.tracer().stats());
    let mut events = front.tracer().drain();
    for (i, (replica, network)) in replicas.iter().zip(&networks).enumerate() {
        let idx = i.to_string();
        let labels: [(&str, &str); 1] = [("replica", idx.as_str())];
        export_engine(&mut snapshot, &labels, &replica.engine().metrics());
        export_gossip(&mut snapshot, &labels, &nodes[i].metrics());
        export_tcp(&mut snapshot, &labels, &network.stats());
        export_tracer(&mut snapshot, &labels, &replica.engine().tracer().stats());
        events.extend(replica.engine().tracer().drain());
    }
    Ok((events, snapshot))
}
