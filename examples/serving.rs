//! A closed-loop serving demo: the emulator's generator feeds the sharded
//! serving engine while membership churns through the epoch path.
//!
//! ```text
//! cargo run --release --example serving
//! cargo run --release --example serving -- work-stealing
//! ```
//!
//! Architecture exercised (see README "Serving layer"):
//!
//! ```text
//! generator ──► scheduler core ──► coalescing workers ──► shards ──► metrics
//!               (shared queue or
//!                work-stealing deques)
//! ```
//!
//! The churn phase drives lookups through the **async front end**: each
//! `Ticket` is awaited as a future on the vendored block-on executor, a
//! window of them in flight at a time.

use hdhash::emulator::{Generator, KeyDistribution, Workload};
use hdhash::serve::{drive, executor, SchedulerKind, ServeConfig, ServeEngine};
use hdhash::table::{RequestKey, ServerId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scheduler = match std::env::args().nth(1).as_deref() {
        Some(name) => SchedulerKind::parse(name)
            .ok_or_else(|| format!("unknown scheduler `{name}`"))?,
        None => SchedulerKind::SharedQueue,
    };
    let config = ServeConfig {
        shards: 4,
        workers: 2,
        batch_capacity: 64,
        queue_capacity: 4096,
        dimension: 4096,
        codebook_size: 256,
        seed: 2022,
        scheduler,
    };
    println!(
        "engine: {} shards × {} workers, batch capacity {}, queue capacity {}, \
         scheduler {}",
        config.shards,
        config.workers,
        config.batch_capacity,
        config.queue_capacity,
        config.scheduler.name()
    );
    let mut engine = ServeEngine::new(config)?;

    // A fleet of 48 servers joins; every join publishes one epoch per shard.
    for id in 0..48u64 {
        engine.join(ServerId::new(id))?;
    }
    println!("joined 48 servers; shard epochs: {:?}", {
        let snapshots = engine.snapshots();
        snapshots.iter().map(|s| s.epoch).collect::<Vec<_>>()
    });

    // Phase 1: a Zipf-skewed closed-loop burst (web-style traffic).
    let workload = Workload {
        initial_servers: 0,
        lookups: 30_000,
        keys: KeyDistribution::Zipf { universe: 10_000, exponent: 1.1 },
        seed: 7,
    };
    let stream = Generator::new(workload).lookup_requests();
    let report = drive(&engine, &stream, 512);
    println!(
        "\nphase 1 — steady state: {} lookups in {:?} ({:.0} req/s, {} rejected)",
        report.completed,
        report.elapsed,
        report.throughput().requests_per_sec(),
        report.rejected,
    );
    if let Some(latency) = report.latency {
        println!(
            "  latency p50 {:?} / p90 {:?} / p99 {:?} / max {:?}",
            latency.p50, latency.p90, latency.p99, latency.max
        );
    }

    // Phase 2: churn — requests race membership changes through the epoch
    // path. Readers never block on the reconfigurations; responses carry
    // the epoch they were served at. The client side is **async**: a
    // window of tickets is awaited as futures on the block-on executor.
    let verdicts = std::thread::scope(|scope| {
        let engine = &engine;
        let churner = scope.spawn(move || {
            for id in 0..12u64 {
                engine.leave(ServerId::new(id)).expect("member");
                engine.join(ServerId::new(100 + id)).expect("fresh");
            }
        });
        let (served, epochs) = executor::block_on(async {
            let mut epochs_seen = std::collections::BTreeSet::new();
            let mut served = 0usize;
            let mut window = std::collections::VecDeque::new();
            for k in 0..10_000u64 {
                if window.len() >= 64 {
                    let ticket: hdhash::serve::Ticket =
                        window.pop_front().expect("non-empty window");
                    let response = ticket.await;
                    assert!(response.result.is_ok(), "pool never empties during churn");
                    epochs_seen.insert((response.shard, response.epoch));
                    served += 1;
                }
                window.push_back(
                    engine
                        .submit(RequestKey::new(k.wrapping_mul(0x9E37_79B9)))
                        .expect("queue sized for the load"),
                );
            }
            for ticket in window {
                let response = ticket.await;
                assert!(response.result.is_ok(), "pool never empties during churn");
                epochs_seen.insert((response.shard, response.epoch));
                served += 1;
            }
            (served, epochs_seen.len())
        });
        churner.join().expect("churner");
        (served, epochs)
    });
    println!(
        "\nphase 2 — churn race (async front end): {} lookups awaited across {} \
         distinct (shard, epoch) snapshots, zero failures",
        verdicts.0, verdicts.1
    );

    // The anti-entropy self-check: shadow and published signatures agree.
    let divergence = engine.shard_divergence(0);
    println!(
        "anti-entropy: max shadow↔published signature distance = {}",
        divergence.iter().map(|d| d.distance).max().unwrap_or(0)
    );

    engine.shutdown();
    let metrics = engine.metrics();
    println!("\nper-shard totals:");
    for shard in &metrics.shards {
        println!(
            "  shard {}: epoch {:>3}, {:>2} members, {:>6} served, {:>5} batches, mean fill {:.1}",
            shard.shard, shard.epoch, shard.members, shard.served, shard.batches,
            shard.mean_batch_fill
        );
    }
    println!(
        "engine totals: {} submitted, {} completed, {} rejected",
        metrics.submitted, metrics.completed, metrics.rejected
    );
    Ok(())
}
