//! Cloud load balancer under autoscaling churn.
//!
//! The paper's motivating scenario: a load balancer maps requests to a
//! dynamically scaling pool (cloud elasticity). This example drives every
//! algorithm through the same autoscaling schedule and reports, per scale
//! event, how many in-flight session mappings were disturbed, plus the
//! final load balance.
//!
//! Run with `cargo run --release --example load_balancer`.

use hdhash::prelude::*;

const SESSIONS: u64 = 20_000;

fn keys() -> Vec<RequestKey> {
    (0..SESSIONS).map(|k| RequestKey::new(hdhash::hashfn::mix64(k))).collect()
}

fn drive(kind: AlgorithmKind) -> Result<(), Box<dyn std::error::Error>> {
    let mut table = kind.build(64);
    // Start with 16 instances.
    for id in 0..16 {
        table.join(ServerId::new(id))?;
    }
    let sessions = keys();
    println!("## {kind}");

    // Scale-out: traffic spike adds 16 instances, four at a time.
    let mut previous = Assignment::capture(&*table, sessions.iter().copied())?;
    for step in 0..4 {
        for id in 0..4 {
            table.join(ServerId::new(16 + step * 4 + id))?;
        }
        let current = Assignment::capture(&*table, sessions.iter().copied())?;
        println!(
            "  scale-out step {}: {:>6.2}% of sessions moved ({} servers)",
            step + 1,
            100.0 * remap_fraction(&previous, &current),
            table.server_count()
        );
        previous = current;
    }

    // Scale-in: traffic subsides, remove 8 instances.
    for id in 0..8 {
        table.leave(ServerId::new(id))?;
    }
    let current = Assignment::capture(&*table, sessions.iter().copied())?;
    println!(
        "  scale-in (8 leave):  {:>6.2}% of sessions moved ({} servers)",
        100.0 * remap_fraction(&previous, &current),
        table.server_count()
    );

    // Final balance.
    let loads = current.load_by_server();
    let max = loads.values().max().copied().unwrap_or(0);
    let min = loads.values().min().copied().unwrap_or(0);
    let mean = SESSIONS as f64 / table.server_count() as f64;
    println!(
        "  final balance: min {min} / mean {mean:.0} / max {max} sessions per server"
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("# Autoscaling load balancer: session disturbance per scale event\n");
    for kind in [
        AlgorithmKind::Modular,
        AlgorithmKind::Consistent,
        AlgorithmKind::Rendezvous,
        AlgorithmKind::Hd,
    ] {
        drive(kind)?;
        println!();
    }
    println!("Reading guide: modular hashing disturbs almost every session on every");
    println!("event; consistent, rendezvous and HD hashing move only the necessary share.");
    Ok(())
}
