//! Season classifier: the paper's future-work claim, quantified.
//!
//! Section 6 proposes circular-hypervectors for "periodic information
//! […] seasons of the year" and asks whether they improve HDC machine
//! learning. This example answers it end to end: a centroid classifier
//! learns the season from the day of the year, encoded once with a
//! *level* basis (the prior art, linear similarity) and once with a
//! *circular* basis (the paper's contribution). Winter wraps across New
//! Year, so the level encoding tears it apart at the boundary while the
//! circular encoding classifies straight through.
//!
//! Run with `cargo run --release --example season_classifier`.

use hdhash::hdc::basis::{CircularBasis, LevelBasis};
use hdhash::prelude::*;

const D: usize = 10_248; // divisible by 2·366: exact circular quanta
const DAYS: usize = 366;

fn season(day: usize) -> &'static str {
    match day {
        0..=58 | 334..=365 => "winter", // wraps: Dec..Feb
        59..=150 => "spring",
        151..=242 => "summer",
        _ => "autumn",
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = Rng::new(366);
    let circular = CircularBasis::generate(DAYS, D, &mut rng)?;
    let level = LevelBasis::generate(DAYS, D, &mut rng)?;

    // Train on every 4th day, test on the days exactly between them.
    let train: Vec<usize> = (0..DAYS).step_by(4).collect();
    let test: Vec<usize> = (0..DAYS).filter(|d| d % 4 == 2).collect();

    let mut circular_clf = CentroidClassifier::new(D);
    let mut level_clf = CentroidClassifier::new(D);
    for &day in &train {
        circular_clf.observe(season(day), &circular[day])?;
        level_clf.observe(season(day), &level[day])?;
    }

    let mut circular_hits = 0;
    let mut level_hits = 0;
    let mut boundary_misses = Vec::new();
    for &day in &test {
        if circular_clf.predict(&circular[day]) == Some(season(day)) {
            circular_hits += 1;
        }
        if level_clf.predict(&level[day]) == Some(season(day)) {
            level_hits += 1;
        } else {
            boundary_misses.push(day);
        }
    }

    println!("# Season-from-day-of-year, {} train / {} test days", train.len(), test.len());
    println!(
        "circular basis: {:>5.1}% accuracy",
        100.0 * circular_hits as f64 / test.len() as f64
    );
    println!(
        "level basis:    {:>5.1}% accuracy, misses on days {:?}",
        100.0 * level_hits as f64 / test.len() as f64,
        boundary_misses
    );
    assert!(circular_hits > level_hits, "the paper's future-work claim failed");

    // Show the failure mode directly: similarity of day 365 to day 0.
    println!("\nwhy: similarity(day 365, day 0) — the New Year wrap");
    println!(
        "  circular: {:+.2} (adjacent, as the calendar says)",
        hdhash::hdc::similarity::cosine(&circular[365], &circular[0])
    );
    println!(
        "  level:    {:+.2} (maximally dissimilar — the discontinuity of Figure 2)",
        hdhash::hdc::similarity::cosine(&level[365], &level[0])
    );

    Ok(())
}
