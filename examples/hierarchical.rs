//! Hierarchical HD hashing: the paper's scaling note (§5.1).
//!
//! "Like the other methods HD hashing can scale to much larger clusters,
//! and even be used hierarchically (standard way to scale such hashing
//! systems) to handle extremely high numbers of servers."
//!
//! This example builds a 4 096-server cluster two ways — one flat HD
//! table, and a 16-group two-level hierarchy — and compares lookup cost
//! (associative-memory scan work) and routing agreement properties.
//!
//! Run with `cargo run --release --example hierarchical`.

use std::time::Instant;

use hdhash::core::{HdConfig, HierarchicalHdTable};
use hdhash::prelude::*;

const SERVERS: u64 = 4096;
const LOOKUPS: u64 = 2_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("# Hierarchical vs flat HD hashing at {SERVERS} servers\n");

    // Flat: one codebook over all servers.
    let mut flat = HdHashTable::builder()
        .dimension(10_000)
        .codebook_size((2 * SERVERS as usize).next_power_of_two())
        .build()?;
    // Hierarchy: 16 groups of ~256; each level needs a much smaller
    // codebook, and lookups scan two small memories instead of one huge one.
    let config = HdConfig::builder()
        .dimension(10_000)
        .codebook_size(1024)
        .build_config()?;
    let mut hierarchical = HierarchicalHdTable::new(config, 16);

    for id in 0..SERVERS {
        flat.join(ServerId::new(id))?;
        hierarchical.join(ServerId::new(id))?;
    }
    println!("flat:          {} servers in one table", flat.server_count());
    println!(
        "hierarchical:  {} servers over {} groups\n",
        hierarchical.server_count(),
        hierarchical.group_count()
    );

    // Lookup cost: wall time over the same key stream.
    let keys: Vec<RequestKey> = (0..LOOKUPS).map(RequestKey::new).collect();
    let start = Instant::now();
    for &k in &keys {
        let _ = flat.lookup(k)?;
    }
    let flat_time = start.elapsed();
    let start = Instant::now();
    for &k in &keys {
        let _ = hierarchical.lookup(k)?;
    }
    let hier_time = start.elapsed();
    println!(
        "lookup wall time over {LOOKUPS} requests: flat {:.1?} vs hierarchical {:.1?} ({:.1}x)",
        flat_time,
        hier_time,
        flat_time.as_secs_f64() / hier_time.as_secs_f64().max(1e-9)
    );

    // Both structures must keep every lookup inside the live pool and
    // distribute broadly.
    let loads = Assignment::capture(&hierarchical, keys.iter().copied())?.load_by_server();
    println!(
        "hierarchical routing spread: {} distinct servers answered {LOOKUPS} requests",
        loads.len()
    );

    // Group-local containment: a request is always answered by its routed
    // group (deterministic rack/zone affinity — the operational win).
    let sample = RequestKey::new(77);
    let owner = hierarchical.lookup(sample)?;
    println!(
        "request {sample} routes to group {} and is answered by {} (group {})",
        hierarchical.group_of_request(sample)?,
        owner,
        hierarchical.group_of_server(owner)
    );

    Ok(())
}
