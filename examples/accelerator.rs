//! Accelerator: the hardware behind the paper's O(1) lookup claim.
//!
//! HD hashing's lookup is an HDC *inference* — the operation Schmuck et
//! al. (the paper's reference [18]) execute in a single clock cycle on
//! dedicated hardware. This example drives the gate-level model of that
//! hardware: it checks the modelled datapath returns bit-identical
//! winners to the software table, then prints the timing, area and
//! storage story for the paper's 512-server configuration.
//!
//! Run with `cargo run --release --example accelerator`.

use hdhash::accel::datapath::CombinationalAm;
use hdhash::accel::{ca90, ExecutionModel, LookupSchedule, Rematerializer, TechnologyParams};
use hdhash::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A software HD hash table and the modelled hardware, sharing state.
    let mut table = HdHashTable::builder().dimension(10_000).codebook_size(512).build()?;
    for id in 0..64 {
        table.join(ServerId::new(id))?;
    }

    // Mirror the stored server hypervectors into the combinational AM.
    let servers = table.servers();
    let stored: Vec<Hypervector> = servers
        .iter()
        .map(|&s| {
            let slot = table.slot_of_server(s).expect("joined above");
            table.codebook().hypervector(slot).clone()
        })
        .collect();
    let am = CombinationalAm::new(table.config().dimension(), stored)?;

    // Functional check: hardware dataflow == software arg-max, request by
    // request. (The quantized tie-break only matters on exact slot
    // collisions, absent here.)
    let mut agreements = 0;
    for k in 0..1000u64 {
        let request = RequestKey::new(k);
        let software = table.lookup(request)?;
        let probe = table.codebook().hypervector(table.slot_of_request(request));
        let hw = am.infer(probe).expect("memory is non-empty");
        if servers[hw.index] == software {
            agreements += 1;
        }
    }
    println!("functional equivalence: {agreements}/1000 lookups agree with software");
    assert_eq!(agreements, 1000);

    // The hardware story for the paper's full configuration.
    println!("\n# 512 servers, d = 10_000 — one lookup, one clock cycle");
    for tech in TechnologyParams::presets() {
        let timing = CombinationalAm::timing_for(512, 10_000, &tech);
        let schedule = LookupSchedule::plan(ExecutionModel::Combinational, 512, 10_000, &tech);
        println!(
            "{:>10}: critical path {:>7.1} ns -> {:>6.1} MHz single-cycle, {:.0} ns/lookup",
            tech.name,
            timing.critical_path_ps() / 1000.0,
            timing.max_frequency_hz() / 1.0e6,
            schedule.time_per_lookup_ps() / 1000.0,
        );
    }

    let area = CombinationalAm::area_for(512, 10_000);
    println!(
        "\narea: {} XOR gates, {} FA equivalents, {} comparators",
        area.xor_gates, area.fa_equivalents, area.comparator_nodes
    );
    println!(
        "storage: {} bits as a codebook ROM, {} bits with CA90 rematerialization ({}x saving)",
        area.storage_bits,
        area.rematerialized_storage_bits,
        area.storage_bits / area.rematerialized_storage_bits
    );

    // Rematerialization in action: regenerate basis vectors from a seed.
    let seed = Hypervector::random(10_000, &mut Rng::new(2026));
    let remat = Rematerializer::new(seed);
    let c5 = remat.materialize(5);
    let again = ca90::evolve(remat.seed(), 5);
    assert_eq!(c5, again);
    println!(
        "\nrematerialized state 5 from the seed twice: identical, distance to seed = {}",
        c5.hamming_distance(remat.seed())
    );

    Ok(())
}
