//! P2P swarm: high membership churn plus memory errors.
//!
//! Peer-to-peer services (BitTorrent-style DHTs) see constant joins and
//! leaves, and commodity peers are exactly where memory errors go
//! unnoticed. This example runs a churn schedule through the emulator's
//! module interface and then injects a year's worth of upsets (the Ibe
//! et al. 22 nm burst mixture) to compare post-noise mismatch rates.
//!
//! Run with `cargo run --release --example p2p_churn`.

use hdhash::emulator::{Generator, HashTableModule, Workload};
use hdhash::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("# P2P swarm: churn correctness, then memory-error robustness\n");

    let workload = Workload { initial_servers: 64, lookups: 30_000, ..Workload::default() };
    let churn_stream = Generator::new(workload).churn_requests(20);

    for kind in [AlgorithmKind::Consistent, AlgorithmKind::Rendezvous, AlgorithmKind::Hd] {
        let mut module = HashTableModule::new(kind.build(128));

        // Phase 1: the full churn schedule must execute without failures.
        module.enqueue(churn_stream.iter().copied());
        let mut failures = 0;
        let mut lookups = 0;
        while module.pending() > 0 {
            let (_, stats) = module.drain_batch(256);
            failures += stats.failures;
            lookups += stats.lookups;
        }
        // Phase 2: the swarm state accumulates memory errors. 100 upset
        // events with the Ibe 22 nm burst-length mixture.
        let keys: Vec<RequestKey> = (0..10_000).map(RequestKey::new).collect();
        let reference = Assignment::capture(module.table(), keys.iter().copied())?;
        let flipped =
            NoisePlan::IbeMixture { events: 100 }.apply(module.table_mut(), 0xBEEF);
        let noisy = Assignment::capture(module.table(), keys.iter().copied())?;
        let mismatch = 100.0 * remap_fraction(&reference, &noisy);

        println!("## {kind}");
        println!("  churn phase: {lookups} lookups, {failures} failures");
        println!(
            "  noise phase: {flipped} bits flipped across {} upset events -> {mismatch:.2}% of lookups now reach the wrong peer",
            100
        );
        println!();
    }

    println!("Reading guide: HD hashing's stored state is hypervectors, so even");
    println!("hundreds of flipped bits leave every routing decision intact; the");
    println!("pointer-based consistent-hashing ring degrades the most.");
    Ok(())
}
